//! Expression evaluation with SQL three-valued logic and correlated
//! subquery support.

use crate::engine::Database;
use crate::error::DbError;
use crate::schema::TableSchema;
use crate::table::Row;
use crate::value::Value;
use msql_lang::{BinaryOp, ColumnRef, Expr, Literal, UnaryOp};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Statement-scoped cache for *uncorrelated* scalar subqueries.
///
/// The reservation pattern of §3.4 (`WHERE snu = (SELECT MIN(snu) ...)`)
/// re-evaluates the same subquery for every candidate row; when the subquery
/// does not reference the outer row, one evaluation serves them all. Keys
/// are the printed subquery text.
#[derive(Debug, Default)]
pub struct SubqueryCache {
    entries: RefCell<HashMap<String, Value>>,
}

impl SubqueryCache {
    /// An empty cache.
    pub fn new() -> Self {
        SubqueryCache::default()
    }

    fn get(&self, key: &str) -> Option<Value> {
        self.entries.borrow().get(key).cloned()
    }

    fn put(&self, key: String, value: Value) {
        self.entries.borrow_mut().insert(key, value);
    }

    /// Number of cached subquery results (for tests).
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }
}

/// One FROM binding visible to expressions: a named row of a known schema.
#[derive(Debug)]
pub struct Binding<'a> {
    /// Binding name: the table alias if given, else the table name.
    pub name: String,
    /// The row's schema.
    pub schema: &'a TableSchema,
    /// The current row.
    pub row: &'a Row,
}

/// One scope of bindings (one query block's FROM clause).
#[derive(Debug, Default)]
pub struct Env<'a> {
    /// The bindings of this scope.
    pub bindings: Vec<Binding<'a>>,
}

impl<'a> Env<'a> {
    /// Looks a column up in this scope. `Ok(None)` means "not bound here";
    /// ambiguity within one scope is an error.
    fn lookup(&self, table: Option<&str>, column: &str) -> Result<Option<Value>, DbError> {
        if let Some(t) = table {
            for b in &self.bindings {
                if b.name == t || b.schema.name == t {
                    return match b.schema.column_index(column) {
                        Some(i) => Ok(Some(b.row[i].clone())),
                        None => Ok(None),
                    };
                }
            }
            return Ok(None);
        }
        let mut found: Option<Value> = None;
        for b in &self.bindings {
            if let Some(i) = b.schema.column_index(column) {
                if found.is_some() {
                    return Err(DbError::AmbiguousColumn(column.to_string()));
                }
                found = Some(b.row[i].clone());
            }
        }
        Ok(found)
    }
}

/// Expression evaluator: a database for subqueries plus a stack of binding
/// scopes, innermost last (correlated subqueries search outward).
pub struct Evaluator<'a> {
    /// Database used to execute nested subqueries.
    pub db: &'a Database,
    /// Scope stack; the last element is the innermost query block.
    pub scopes: Vec<&'a Env<'a>>,
    /// Optional statement-scoped cache for uncorrelated scalar subqueries.
    pub cache: Option<&'a SubqueryCache>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with a single scope.
    pub fn new(db: &'a Database, env: &'a Env<'a>) -> Self {
        Evaluator { db, scopes: vec![env], cache: None }
    }

    /// Creates an evaluator with no row bindings (constant expressions,
    /// VALUES lists).
    pub fn constant(db: &'a Database) -> Self {
        Evaluator { db, scopes: Vec::new(), cache: None }
    }

    /// Attaches a statement-scoped subquery cache.
    pub fn with_cache(mut self, cache: &'a SubqueryCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Evaluates an expression to a value.
    pub fn eval(&self, e: &Expr) -> Result<Value, DbError> {
        match e {
            Expr::Literal(l) => Ok(literal_value(l)),
            Expr::Column(c) => self.eval_column(c),
            Expr::Unary { op, expr } => {
                let v = self.eval(expr)?;
                match op {
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::Not => match v.as_truth()? {
                        Some(b) => Ok(Value::Bool(!b)),
                        None => Ok(Value::Null),
                    },
                }
            }
            Expr::Binary { left, op, right } => self.eval_binary(left, *op, right),
            Expr::Aggregate { .. } => Err(DbError::Internal(
                "aggregate reached the row evaluator; the select executor must substitute it"
                    .into(),
            )),
            Expr::Function { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                eval_function(name, &vals)
            }
            Expr::Subquery(sel) => {
                // Uncorrelated subqueries are evaluated once per statement:
                // try it with no outer scopes; an unknown/ambiguous column
                // means it is correlated and must see the current row.
                if let Some(cache) = self.cache {
                    let key = msql_lang::printer::print_select(sel);
                    if let Some(v) = cache.get(&key) {
                        return Ok(v);
                    }
                    match crate::exec::select::execute_select(self.db, sel, &[]) {
                        Ok(rs) => {
                            let v = scalar_result(rs)?;
                            cache.put(key, v.clone());
                            return Ok(v);
                        }
                        Err(DbError::UnknownColumn(_)) | Err(DbError::AmbiguousColumn(_)) => {
                            // Correlated (or genuinely wrong — the normal
                            // path will report that).
                        }
                        Err(e) => return Err(e),
                    }
                }
                let rs = crate::exec::select::execute_select(self.db, sel, &self.scopes)?;
                scalar_result(rs)
            }
            Expr::Exists { subquery, negated } => {
                let rs = crate::exec::select::execute_select(self.db, subquery, &self.scopes)?;
                let exists = !rs.rows.is_empty();
                Ok(Value::Bool(exists != *negated))
            }
            Expr::InList { expr, list, negated } => {
                let probe = self.eval(expr)?;
                let mut candidates = Vec::with_capacity(list.len());
                for item in list {
                    candidates.push(self.eval(item)?);
                }
                in_semantics(&probe, &candidates, *negated)
            }
            Expr::InSubquery { expr, subquery, negated } => {
                let probe = self.eval(expr)?;
                let rs = crate::exec::select::execute_select(self.db, subquery, &self.scopes)?;
                if rs.columns.len() != 1 {
                    return Err(DbError::TypeError("IN subquery must return one column".into()));
                }
                let candidates: Vec<Value> = rs.rows.into_iter().map(|mut r| r.remove(0)).collect();
                in_semantics(&probe, &candidates, *negated)
            }
            Expr::Between { expr, low, high, negated } => {
                let v = self.eval(expr)?;
                let lo = self.eval(low)?;
                let hi = self.eval(high)?;
                let ge = cmp_to_bool(v.sql_cmp(&lo), |o| o != Ordering::Less);
                let le = cmp_to_bool(v.sql_cmp(&hi), |o| o != Ordering::Greater);
                let both = three_and(ge, le);
                Ok(truth_value(negate_if(both, *negated)))
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Like { expr, pattern, negated } => {
                let v = self.eval(expr)?;
                let p = self.eval(pattern)?;
                match v.sql_like(&p)? {
                    Value::Bool(b) => Ok(Value::Bool(b != *negated)),
                    other => Ok(other),
                }
            }
        }
    }

    fn eval_column(&self, c: &ColumnRef) -> Result<Value, DbError> {
        if c.is_multiple() {
            return Err(DbError::NotLocalSql(format!(
                "column reference `{}` still contains a wildcard",
                c.column
            )));
        }
        if let Some(db) = &c.database {
            if db.as_str() != self.db.name {
                return Err(DbError::NotLocalSql(format!(
                    "reference to remote database `{db}` inside local SQL"
                )));
            }
        }
        let table = c.table.as_ref().map(|t| t.as_str());
        let column = c.column.as_str();
        for env in self.scopes.iter().rev() {
            if let Some(v) = env.lookup(table, column)? {
                return Ok(v);
            }
        }
        Err(DbError::UnknownColumn(match table {
            Some(t) => format!("{t}.{column}"),
            None => column.to_string(),
        }))
    }

    fn eval_binary(&self, left: &Expr, op: BinaryOp, right: &Expr) -> Result<Value, DbError> {
        // AND/OR get SQL three-valued logic with short-circuiting.
        if op == BinaryOp::And || op == BinaryOp::Or {
            let l = self.eval(left)?.as_truth()?;
            match (op, l) {
                (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
                (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                _ => {}
            }
            let r = self.eval(right)?.as_truth()?;
            let out = match op {
                BinaryOp::And => three_and(l, r),
                _ => three_or(l, r),
            };
            return Ok(truth_value(out));
        }
        let l = self.eval(left)?;
        let r = self.eval(right)?;
        match op {
            BinaryOp::Add => l.add(&r),
            BinaryOp::Sub => l.sub(&r),
            BinaryOp::Mul => l.mul(&r),
            BinaryOp::Div => l.div(&r),
            BinaryOp::Concat => l.concat(&r),
            BinaryOp::Eq => Ok(truth_value(cmp_to_bool(l.sql_cmp(&r), |o| o == Ordering::Equal))),
            BinaryOp::NotEq => {
                Ok(truth_value(cmp_to_bool(l.sql_cmp(&r), |o| o != Ordering::Equal)))
            }
            BinaryOp::Lt => Ok(truth_value(cmp_to_bool(l.sql_cmp(&r), |o| o == Ordering::Less))),
            BinaryOp::LtEq => {
                Ok(truth_value(cmp_to_bool(l.sql_cmp(&r), |o| o != Ordering::Greater)))
            }
            BinaryOp::Gt => Ok(truth_value(cmp_to_bool(l.sql_cmp(&r), |o| o == Ordering::Greater))),
            BinaryOp::GtEq => Ok(truth_value(cmp_to_bool(l.sql_cmp(&r), |o| o != Ordering::Less))),
            BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
        }
    }
}

/// Extracts the single value of a scalar subquery result.
fn scalar_result(rs: crate::engine::ResultSet) -> Result<Value, DbError> {
    if rs.columns.len() != 1 {
        return Err(DbError::TypeError(format!(
            "scalar subquery must return one column, returned {}",
            rs.columns.len()
        )));
    }
    match rs.rows.len() {
        0 => Ok(Value::Null),
        1 => Ok(rs.rows.into_iter().next().unwrap().into_iter().next().unwrap()),
        _ => Err(DbError::SubqueryCardinality),
    }
}

/// Converts a parsed literal to a runtime value.
pub fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// Converts a runtime value back to a literal (used when the select executor
/// substitutes computed aggregates into expressions).
pub fn value_literal(v: &Value) -> Literal {
    match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(*i),
        Value::Float(f) => Literal::Float(*f),
        Value::Str(s) => Literal::Str(s.clone()),
        Value::Bool(b) => Literal::Bool(*b),
    }
}

fn cmp_to_bool(cmp: Option<Ordering>, f: impl Fn(Ordering) -> bool) -> Option<bool> {
    cmp.map(f)
}

fn three_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn three_or(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn negate_if(v: Option<bool>, negate: bool) -> Option<bool> {
    if negate {
        v.map(|b| !b)
    } else {
        v
    }
}

fn truth_value(v: Option<bool>) -> Value {
    match v {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

/// SQL IN semantics: TRUE if any candidate equals the probe; otherwise
/// UNKNOWN if the probe or any candidate is NULL; otherwise FALSE.
fn in_semantics(probe: &Value, candidates: &[Value], negated: bool) -> Result<Value, DbError> {
    if probe.is_null() {
        return Ok(Value::Null);
    }
    let mut saw_null = false;
    for c in candidates {
        if c.is_null() {
            saw_null = true;
            continue;
        }
        if probe.sql_cmp(c) == Some(Ordering::Equal) {
            return Ok(Value::Bool(!negated));
        }
    }
    if saw_null {
        Ok(Value::Null)
    } else {
        Ok(Value::Bool(negated))
    }
}

/// Built-in scalar functions.
fn eval_function(name: &str, args: &[Value]) -> Result<Value, DbError> {
    let arity = |n: usize| -> Result<(), DbError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(DbError::TypeError(format!("{name} expects {n} argument(s), got {}", args.len())))
        }
    };
    match name {
        "upper" | "lower" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Str(if name == "upper" {
                    s.to_uppercase()
                } else {
                    s.to_lowercase()
                })),
                other => Err(DbError::TypeError(format!("{name} requires a string, got {other}"))),
            }
        }
        "length" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(DbError::TypeError(format!("length requires a string, got {other}"))),
            }
        }
        "abs" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(v) => Ok(Value::Int(v.abs())),
                Value::Float(v) => Ok(Value::Float(v.abs())),
                other => Err(DbError::TypeError(format!("abs requires a number, got {other}"))),
            }
        }
        "round" => {
            if args.is_empty() || args.len() > 2 {
                return Err(DbError::TypeError("round expects 1 or 2 arguments".into()));
            }
            let digits = match args.get(1) {
                None => 0i64,
                Some(Value::Int(d)) => *d,
                Some(other) => {
                    return Err(DbError::TypeError(format!(
                        "round digits must be an integer, got {other}"
                    )));
                }
            };
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(v) => Ok(Value::Int(*v)),
                Value::Float(v) => {
                    let scale = 10f64.powi(digits as i32);
                    Ok(Value::Float((v * scale).round() / scale))
                }
                other => Err(DbError::TypeError(format!("round requires a number, got {other}"))),
            }
        }
        "coalesce" => {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        }
        "substr" | "substring" => {
            if args.len() < 2 || args.len() > 3 {
                return Err(DbError::TypeError("substr expects 2 or 3 arguments".into()));
            }
            let (s, start) = match (&args[0], &args[1]) {
                (Value::Null, _) | (_, Value::Null) => return Ok(Value::Null),
                (Value::Str(s), Value::Int(i)) => (s, *i),
                _ => return Err(DbError::TypeError("substr(string, int[, int])".into())),
            };
            let chars: Vec<char> = s.chars().collect();
            let start_idx = (start.max(1) - 1) as usize;
            let len = match args.get(2) {
                None => chars.len().saturating_sub(start_idx),
                Some(Value::Int(l)) => (*l).max(0) as usize,
                Some(Value::Null) => return Ok(Value::Null),
                Some(_) => return Err(DbError::TypeError("substr length must be int".into())),
            };
            Ok(Value::Str(chars.iter().skip(start_idx).take(len).collect()))
        }
        "trim" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Str(s.trim().to_string())),
                other => Err(DbError::TypeError(format!("trim requires a string, got {other}"))),
            }
        }
        other => Err(DbError::TypeError(format!("unknown function `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;
    use msql_lang::parse_expr;

    fn eval_const(src: &str) -> Result<Value, DbError> {
        let db = Database::new("testdb");
        let e = parse_expr(src).unwrap();
        Evaluator::constant(&db).eval(&e)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_const("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval_const("(1 + 2) * 3").unwrap(), Value::Int(9));
        assert_eq!(eval_const("10 / 4").unwrap(), Value::Float(2.5));
        assert_eq!(eval_const("-(2 + 3)").unwrap(), Value::Int(-5));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_const("NULL AND FALSE").unwrap(), Value::Bool(false));
        assert_eq!(eval_const("NULL AND TRUE").unwrap(), Value::Null);
        assert_eq!(eval_const("NULL OR TRUE").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("NULL OR FALSE").unwrap(), Value::Null);
        assert_eq!(eval_const("NOT NULL IS NULL").unwrap(), Value::Bool(false));
        assert_eq!(eval_const("NULL = NULL").unwrap(), Value::Null);
        assert_eq!(eval_const("NULL IS NULL").unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_null_semantics() {
        assert_eq!(eval_const("1 IN (1, 2)").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("3 IN (1, 2)").unwrap(), Value::Bool(false));
        assert_eq!(eval_const("3 IN (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_const("1 IN (1, NULL)").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("1 NOT IN (2, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_const("NULL IN (1)").unwrap(), Value::Null);
    }

    #[test]
    fn between_and_like() {
        assert_eq!(eval_const("5 BETWEEN 1 AND 10").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("5 NOT BETWEEN 1 AND 10").unwrap(), Value::Bool(false));
        assert_eq!(eval_const("NULL BETWEEN 1 AND 10").unwrap(), Value::Null);
        assert_eq!(eval_const("'Houston' LIKE 'Hou%'").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("'Houston' NOT LIKE '%x%'").unwrap(), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval_const("UPPER('abc')").unwrap(), Value::Str("ABC".into()));
        assert_eq!(eval_const("length('héllo')").unwrap(), Value::Int(5));
        assert_eq!(eval_const("abs(-(3))").unwrap(), Value::Int(3));
        assert_eq!(eval_const("round(2.567, 1)").unwrap(), Value::Float(2.6));
        assert_eq!(eval_const("coalesce(NULL, NULL, 7)").unwrap(), Value::Int(7));
        assert_eq!(eval_const("substr('Houston', 1, 3)").unwrap(), Value::Str("Hou".into()));
        assert_eq!(eval_const("substr('Houston', 4)").unwrap(), Value::Str("ston".into()));
        assert_eq!(eval_const("trim('  hi ')").unwrap(), Value::Str("hi".into()));
        assert!(eval_const("frobnicate(1)").is_err());
    }

    #[test]
    fn concat_operator() {
        assert_eq!(eval_const("'a' || 'b' || 'c'").unwrap(), Value::Str("abc".into()));
        assert_eq!(eval_const("'a' || NULL").unwrap(), Value::Null);
    }

    #[test]
    fn column_against_env() {
        use crate::schema::{ColumnSchema, TableSchema};
        let db = Database::new("avis");
        let schema = TableSchema::new(
            "cars",
            vec![
                ColumnSchema::new("code", crate::value::DataType::Int),
                ColumnSchema::new("rate", crate::value::DataType::Float),
            ],
        );
        let row = vec![Value::Int(7), Value::Float(39.5)];
        let env =
            Env { bindings: vec![Binding { name: "cars".into(), schema: &schema, row: &row }] };
        let ev = Evaluator::new(&db, &env);
        assert_eq!(ev.eval(&parse_expr("code").unwrap()).unwrap(), Value::Int(7));
        assert_eq!(ev.eval(&parse_expr("cars.rate").unwrap()).unwrap(), Value::Float(39.5));
        assert_eq!(ev.eval(&parse_expr("rate * 1.1").unwrap()).unwrap(), Value::Float(39.5 * 1.1));
        assert!(matches!(ev.eval(&parse_expr("missing").unwrap()), Err(DbError::UnknownColumn(_))));
        // Remote qualifier is rejected.
        assert!(matches!(
            ev.eval(&parse_expr("national.cars.rate").unwrap()),
            Err(DbError::NotLocalSql(_))
        ));
        // Same-database qualifier is accepted.
        assert_eq!(ev.eval(&parse_expr("avis.cars.code").unwrap()).unwrap(), Value::Int(7));
    }

    #[test]
    fn ambiguous_column_is_error() {
        use crate::schema::{ColumnSchema, TableSchema};
        let db = Database::new("d");
        let s1 = TableSchema::new("a", vec![ColumnSchema::new("x", crate::value::DataType::Int)]);
        let s2 = TableSchema::new("b", vec![ColumnSchema::new("x", crate::value::DataType::Int)]);
        let r1 = vec![Value::Int(1)];
        let r2 = vec![Value::Int(2)];
        let env = Env {
            bindings: vec![
                Binding { name: "a".into(), schema: &s1, row: &r1 },
                Binding { name: "b".into(), schema: &s2, row: &r2 },
            ],
        };
        let ev = Evaluator::new(&db, &env);
        assert!(matches!(ev.eval(&parse_expr("x").unwrap()), Err(DbError::AmbiguousColumn(_))));
        assert_eq!(ev.eval(&parse_expr("a.x").unwrap()).unwrap(), Value::Int(1));
        assert_eq!(ev.eval(&parse_expr("b.x").unwrap()).unwrap(), Value::Int(2));
    }

    #[test]
    fn wildcard_column_is_rejected_locally() {
        let db = Database::new("d");
        let e = parse_expr("rate%").unwrap();
        assert!(matches!(Evaluator::constant(&db).eval(&e), Err(DbError::NotLocalSql(_))));
    }
}
