//! ANALYZE execution: optimizer statistics collection.
//!
//! Like the DDL executors, whether the undo log receives an entry is decided
//! by the caller from the [`crate::profile::DbmsProfile`]: on Ingres-like
//! (DDL-rollbackable) systems a rolled-back `ANALYZE` restores the previous
//! statistics snapshot; on Oracle-like systems it survives the rollback.

use crate::engine::Database;
use crate::error::DbError;
use crate::txn::UndoOp;
use msql_lang::TableRef;

/// Resolves an `ANALYZE` target to concrete table names: the named table
/// (rejecting wildcards and remote qualifiers), or — without a target —
/// every table of the database, in sorted order for determinism.
pub fn resolve_targets(db: &Database, target: Option<&TableRef>) -> Result<Vec<String>, DbError> {
    match target {
        Some(t) => {
            if t.table.is_multiple() {
                return Err(DbError::NotLocalSql(format!(
                    "table name `{}` contains a wildcard",
                    t.table
                )));
            }
            if let Some(d) = &t.database {
                if d.as_str() != db.name {
                    return Err(DbError::NotLocalSql(format!("remote database `{d}` in ANALYZE")));
                }
            }
            let name = t.table.as_str().to_ascii_lowercase();
            db.table(&name)?;
            Ok(vec![name])
        }
        None => Ok(db.table_names()),
    }
}

/// Collects fresh statistics for one table. When `undo` is `Some`, the
/// previous snapshot and staleness counter are recorded so rollback can
/// restore them.
pub fn execute_analyze_table(
    db: &mut Database,
    table: &str,
    undo: Option<&mut Vec<UndoOp>>,
) -> Result<(), DbError> {
    let database = db.name.clone();
    let t = db.table_mut(table)?;
    let (prev, prev_staleness) = t.analyze();
    if let Some(undo) = undo {
        undo.push(UndoOp::Analyze {
            database,
            table: table.to_string(),
            prev: prev.map(Box::new),
            prev_staleness,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use msql_lang::parse_statement;

    fn db_with_tables() -> Database {
        use crate::schema::{ColumnSchema, TableSchema};
        use crate::table::Table;
        use crate::value::DataType;
        let mut db = Database::new("avis");
        for name in ["cars", "vans"] {
            db.insert_table(Table::new(TableSchema::new(
                name,
                vec![ColumnSchema::new("code", DataType::Int)],
            )));
        }
        db
    }

    fn analyze_target(sql: &str) -> Option<TableRef> {
        match parse_statement(sql).unwrap() {
            msql_lang::Statement::Analyze(t) => t,
            other => panic!("not ANALYZE: {other:?}"),
        }
    }

    #[test]
    fn bare_analyze_targets_every_table_sorted() {
        let db = db_with_tables();
        let t = analyze_target("ANALYZE");
        assert_eq!(resolve_targets(&db, t.as_ref()).unwrap(), vec!["cars", "vans"]);
    }

    #[test]
    fn named_target_resolves_and_missing_errors() {
        let db = db_with_tables();
        let t = analyze_target("ANALYZE TABLE vans");
        assert_eq!(resolve_targets(&db, t.as_ref()).unwrap(), vec!["vans"]);
        let t = analyze_target("ANALYZE trucks");
        assert!(matches!(resolve_targets(&db, t.as_ref()), Err(DbError::UnknownTable(_))));
    }

    #[test]
    fn remote_qualifier_is_rejected_local_accepted() {
        let db = db_with_tables();
        let t = analyze_target("ANALYZE hertz.cars");
        assert!(matches!(resolve_targets(&db, t.as_ref()), Err(DbError::NotLocalSql(_))));
        let t = analyze_target("ANALYZE avis.cars");
        assert_eq!(resolve_targets(&db, t.as_ref()).unwrap(), vec!["cars"]);
    }

    #[test]
    fn execute_records_undo_when_asked() {
        let mut db = db_with_tables();
        let mut undo = Vec::new();
        execute_analyze_table(&mut db, "cars", Some(&mut undo)).unwrap();
        assert!(db.table("cars").unwrap().table_stats().is_some());
        match &undo[..] {
            [UndoOp::Analyze { database, table, prev: None, prev_staleness: 0 }] => {
                assert_eq!(database, "avis");
                assert_eq!(table, "cars");
            }
            other => panic!("unexpected undo: {other:?}"),
        }
        // Without an undo sink nothing is recorded.
        execute_analyze_table(&mut db, "vans", None).unwrap();
    }
}
