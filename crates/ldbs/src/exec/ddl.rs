//! CREATE / DROP TABLE execution.
//!
//! Whether the undo log receives an entry is decided by the caller (the
//! engine) from the [`crate::profile::DbmsProfile`]: Ingres-like systems log
//! DDL (rollbackable), Oracle-like systems do not (DDL autocommits).

use crate::engine::Database;
use crate::error::DbError;
use crate::schema::{ColumnSchema, IndexDef, IndexKind, TableSchema};
use crate::table::Table;
use crate::txn::UndoOp;
use crate::value::DataType;
use msql_lang::{CreateIndex, CreateTable, DropIndex, DropTable, IndexMethod, TableRef};

/// Creates a table. When `undo` is `Some`, the creation is recorded so
/// rollback can drop it again.
pub fn execute_create_table(
    db: &mut Database,
    ct: &CreateTable,
    undo: Option<&mut Vec<UndoOp>>,
) -> Result<(), DbError> {
    if ct.table.table.is_multiple() {
        return Err(DbError::NotLocalSql(format!(
            "table name `{}` contains a wildcard",
            ct.table.table
        )));
    }
    if let Some(d) = &ct.table.database {
        if d.as_str() != db.name {
            return Err(DbError::NotLocalSql(format!("remote database `{d}` in CREATE TABLE")));
        }
    }
    let name = ct.table.table.as_str().to_string();
    if db.table(&name).is_ok() {
        return Err(DbError::AlreadyExists(name));
    }
    if ct.columns.is_empty() {
        return Err(DbError::TypeError("a table needs at least one column".into()));
    }
    let mut cols = Vec::with_capacity(ct.columns.len());
    for c in &ct.columns {
        let mut col = ColumnSchema::new(c.name.clone(), DataType::from_type_name(c.type_name));
        col.not_null = c.not_null;
        if cols.iter().any(|existing: &ColumnSchema| existing.name == col.name) {
            return Err(DbError::AlreadyExists(format!("column `{}`", col.name)));
        }
        cols.push(col);
    }
    let schema = TableSchema::new(name.clone(), cols);
    db.insert_table(Table::new(schema));
    if let Some(undo) = undo {
        undo.push(UndoOp::CreateTable { database: db.name.clone(), table: name });
    }
    Ok(())
}

/// Drops a table. When `undo` is `Some`, the full table (schema and rows) is
/// retained so rollback can restore it.
pub fn execute_drop_table(
    db: &mut Database,
    dt: &DropTable,
    undo: Option<&mut Vec<UndoOp>>,
) -> Result<(), DbError> {
    if dt.table.table.is_multiple() {
        return Err(DbError::NotLocalSql(format!(
            "table name `{}` contains a wildcard",
            dt.table.table
        )));
    }
    if let Some(d) = &dt.table.database {
        if d.as_str() != db.name {
            return Err(DbError::NotLocalSql(format!("remote database `{d}` in DROP TABLE")));
        }
    }
    let name = dt.table.table.as_str();
    let table = db.remove_table(name)?;
    if let Some(undo) = undo {
        undo.push(UndoOp::DropTable { database: db.name.clone(), table: Box::new(table) });
    }
    Ok(())
}

/// Rejects wildcards and remote qualifiers on an index DDL target.
fn check_local_table(db: &Database, t: &TableRef, what: &str) -> Result<String, DbError> {
    if t.table.is_multiple() {
        return Err(DbError::NotLocalSql(format!("table name `{}` contains a wildcard", t.table)));
    }
    if let Some(d) = &t.database {
        if d.as_str() != db.name {
            return Err(DbError::NotLocalSql(format!("remote database `{d}` in {what}")));
        }
    }
    Ok(t.table.as_str().to_string())
}

/// Builds a secondary index. When `undo` is `Some`, the creation is recorded
/// so rollback can drop it again.
pub fn execute_create_index(
    db: &mut Database,
    ci: &CreateIndex,
    undo: Option<&mut Vec<UndoOp>>,
) -> Result<(), DbError> {
    let table_name = check_local_table(db, &ci.table, "CREATE INDEX")?;
    let kind = match ci.method {
        IndexMethod::Hash => IndexKind::Hash,
        IndexMethod::Btree => IndexKind::BTree,
    };
    let def = IndexDef::new(ci.name.clone(), ci.column.clone(), kind);
    let name = def.name.clone();
    db.table_mut(&table_name)?.create_index(def)?;
    if let Some(undo) = undo {
        undo.push(UndoOp::CreateIndex { database: db.name.clone(), table: table_name, name });
    }
    Ok(())
}

/// Drops a secondary index. When `undo` is `Some`, the definition is
/// retained so rollback can rebuild it from the table contents.
pub fn execute_drop_index(
    db: &mut Database,
    di: &DropIndex,
    undo: Option<&mut Vec<UndoOp>>,
) -> Result<(), DbError> {
    let table_name = check_local_table(db, &di.table, "DROP INDEX")?;
    let def = db.table_mut(&table_name)?.drop_index(&di.name)?;
    if let Some(undo) = undo {
        undo.push(UndoOp::DropIndex { database: db.name.clone(), table: table_name, def });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use msql_lang::{parse_statement, Statement};

    fn as_create(sql: &str) -> CreateTable {
        let Statement::CreateTable(ct) = parse_statement(sql).unwrap() else { panic!() };
        ct
    }

    fn as_drop(sql: &str) -> DropTable {
        let Statement::DropTable(dt) = parse_statement(sql).unwrap() else { panic!() };
        dt
    }

    #[test]
    fn create_and_drop_roundtrip() {
        let mut db = Database::new("avis");
        let ct = as_create("CREATE TABLE cars (code INT NOT NULL, rate FLOAT)");
        execute_create_table(&mut db, &ct, None).unwrap();
        let schema = &db.table("cars").unwrap().schema;
        assert_eq!(schema.arity(), 2);
        assert!(schema.columns[0].not_null);

        let dt = as_drop("DROP TABLE cars");
        execute_drop_table(&mut db, &dt, None).unwrap();
        assert!(db.table("cars").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new("avis");
        let ct = as_create("CREATE TABLE cars (code INT)");
        execute_create_table(&mut db, &ct, None).unwrap();
        assert!(matches!(execute_create_table(&mut db, &ct, None), Err(DbError::AlreadyExists(_))));
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut db = Database::new("avis");
        let ct = as_create("CREATE TABLE t (x INT, x FLOAT)");
        assert!(matches!(execute_create_table(&mut db, &ct, None), Err(DbError::AlreadyExists(_))));
    }

    #[test]
    fn drop_unknown_table_errors() {
        let mut db = Database::new("avis");
        let dt = as_drop("DROP TABLE ghost");
        assert!(matches!(execute_drop_table(&mut db, &dt, None), Err(DbError::UnknownTable(_))));
    }

    #[test]
    fn undo_entries_capture_enough_to_restore() {
        let mut db = Database::new("avis");
        let ct = as_create("CREATE TABLE cars (code INT)");
        let mut undo = Vec::new();
        execute_create_table(&mut db, &ct, Some(&mut undo)).unwrap();
        assert!(matches!(&undo[0], UndoOp::CreateTable { table, .. } if table == "cars"));

        let dt = as_drop("DROP TABLE cars");
        execute_drop_table(&mut db, &dt, Some(&mut undo)).unwrap();
        assert!(matches!(&undo[1], UndoOp::DropTable { table, .. } if table.schema.name == "cars"));
    }

    #[test]
    fn remote_qualifier_rejected() {
        let mut db = Database::new("avis");
        let ct = as_create("CREATE TABLE national.vehicle (x INT)");
        assert!(matches!(execute_create_table(&mut db, &ct, None), Err(DbError::NotLocalSql(_))));
    }

    fn as_create_index(sql: &str) -> CreateIndex {
        let Statement::CreateIndex(ci) = parse_statement(sql).unwrap() else { panic!() };
        ci
    }

    fn as_drop_index(sql: &str) -> DropIndex {
        let Statement::DropIndex(di) = parse_statement(sql).unwrap() else { panic!() };
        di
    }

    #[test]
    fn index_create_and_drop_roundtrip() {
        let mut db = Database::new("avis");
        let ct = as_create("CREATE TABLE cars (code INT, rate FLOAT)");
        execute_create_table(&mut db, &ct, None).unwrap();

        let mut undo = Vec::new();
        let ci = as_create_index("CREATE INDEX cars_code ON cars (code) USING HASH");
        execute_create_index(&mut db, &ci, Some(&mut undo)).unwrap();
        assert!(db.table("cars").unwrap().index_by_name("cars_code").is_some());
        assert!(matches!(&undo[0], UndoOp::CreateIndex { name, .. } if name == "cars_code"));
        // Same name again is a duplicate.
        assert!(matches!(
            execute_create_index(&mut db, &ci, None),
            Err(DbError::DuplicateIndex(_))
        ));

        let di = as_drop_index("DROP INDEX cars_code ON cars");
        execute_drop_index(&mut db, &di, Some(&mut undo)).unwrap();
        assert!(db.table("cars").unwrap().index_by_name("cars_code").is_none());
        assert!(matches!(&undo[1], UndoOp::DropIndex { def, .. } if def.name == "cars_code"));
        assert!(matches!(execute_drop_index(&mut db, &di, None), Err(DbError::UnknownIndex(_))));
    }

    #[test]
    fn index_ddl_rejects_remote_and_unknown_targets() {
        let mut db = Database::new("avis");
        let ct = as_create("CREATE TABLE cars (code INT)");
        execute_create_table(&mut db, &ct, None).unwrap();
        let remote = as_create_index("CREATE INDEX i ON national.vehicle (vcode)");
        assert!(matches!(
            execute_create_index(&mut db, &remote, None),
            Err(DbError::NotLocalSql(_))
        ));
        let ghost = as_create_index("CREATE INDEX i ON ghost (x)");
        assert!(matches!(
            execute_create_index(&mut db, &ghost, None),
            Err(DbError::UnknownTable(_))
        ));
        let badcol = as_create_index("CREATE INDEX i ON cars (missing)");
        assert!(matches!(
            execute_create_index(&mut db, &badcol, None),
            Err(DbError::UnknownColumn(_))
        ));
    }
}
