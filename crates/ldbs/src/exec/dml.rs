//! INSERT / UPDATE / DELETE execution with undo logging.
//!
//! Each statement is planned against an immutable view of the database
//! (predicates and new values are fully computed first) and then applied,
//! so a failing expression never leaves a half-applied statement behind.

use crate::engine::Database;
use crate::error::DbError;
use crate::eval::{Binding, Env, Evaluator, SubqueryCache};
use crate::table::{Row, RowId};
use crate::txn::UndoOp;
use crate::value::Value;
use msql_lang::{Delete, Insert, InsertSource, Update};

fn check_local_table(t: &msql_lang::TableRef, db: &Database) -> Result<String, DbError> {
    if t.table.is_multiple() {
        return Err(DbError::NotLocalSql(format!("table `{}` still contains a wildcard", t.table)));
    }
    if let Some(d) = &t.database {
        if d.as_str() != db.name {
            return Err(DbError::NotLocalSql(format!(
                "reference to remote database `{d}` inside local SQL"
            )));
        }
    }
    Ok(t.table.as_str().to_string())
}

/// Executes an INSERT; returns the number of rows inserted.
pub fn execute_insert(
    db: &mut Database,
    ins: &Insert,
    undo: &mut Vec<UndoOp>,
) -> Result<usize, DbError> {
    let table_name = check_local_table(&ins.table, db)?;

    // Plan: compute the concrete rows first (immutable phase).
    let planned: Vec<Row> = {
        let dbr: &Database = db;
        let table = dbr.table(&table_name)?;
        let schema = &table.schema;
        // Map the optional column list to schema positions.
        let positions: Vec<usize> = if ins.columns.is_empty() {
            (0..schema.arity()).collect()
        } else {
            let mut pos = Vec::with_capacity(ins.columns.len());
            for c in &ins.columns {
                let name = c
                    .as_concrete()
                    .ok_or_else(|| DbError::NotLocalSql(format!("wildcard column `{c}`")))?;
                pos.push(
                    schema
                        .column_index(name)
                        .ok_or_else(|| DbError::UnknownColumn(name.to_string()))?,
                );
            }
            pos
        };
        let source_rows: Vec<Row> = match &ins.source {
            InsertSource::Values(rows) => {
                let ev = Evaluator::constant(dbr);
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        vals.push(ev.eval(e)?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Select(sel) => crate::exec::select::execute_select(dbr, sel, &[])?.rows,
        };
        let mut planned = Vec::with_capacity(source_rows.len());
        for vals in source_rows {
            if vals.len() != positions.len() {
                return Err(DbError::TypeError(format!(
                    "INSERT provides {} values for {} columns",
                    vals.len(),
                    positions.len()
                )));
            }
            let mut full = vec![Value::Null; schema.arity()];
            for (p, v) in positions.iter().zip(vals) {
                full[*p] = v;
            }
            planned.push(full);
        }
        planned
    };

    // Apply.
    let dbname = db.name.clone();
    let table = db.table_mut(&table_name)?;
    let mut inserted = 0usize;
    for row in planned {
        let id = table.insert(row)?;
        undo.push(UndoOp::Insert { database: dbname.clone(), table: table_name.clone(), id });
        inserted += 1;
    }
    Ok(inserted)
}

/// Executes an UPDATE; returns the number of rows changed.
pub fn execute_update(
    db: &mut Database,
    up: &Update,
    undo: &mut Vec<UndoOp>,
) -> Result<usize, DbError> {
    let table_name = check_local_table(&up.table, db)?;
    let binding_name = up.table.binding_name().to_ascii_lowercase();

    // Plan.
    let planned: Vec<(RowId, Row)> = {
        let dbr: &Database = db;
        let table = dbr.table(&table_name)?;
        let schema = &table.schema;
        let mut targets: Vec<usize> = Vec::with_capacity(up.assignments.len());
        for a in &up.assignments {
            let name = a
                .column
                .as_concrete()
                .ok_or_else(|| DbError::NotLocalSql(format!("wildcard column `{}`", a.column)))?;
            targets.push(
                schema
                    .column_index(name)
                    .ok_or_else(|| DbError::UnknownColumn(name.to_string()))?,
            );
        }
        let cache = SubqueryCache::new();
        let mut planned = Vec::new();
        for (id, row) in table.iter() {
            let env = Env { bindings: vec![Binding { name: binding_name.clone(), schema, row }] };
            let ev = Evaluator::new(dbr, &env).with_cache(&cache);
            let hit = match &up.where_clause {
                None => true,
                Some(pred) => ev.eval(pred)?.as_truth()? == Some(true),
            };
            if !hit {
                continue;
            }
            let mut new_row = row.clone();
            for (pos, a) in targets.iter().zip(&up.assignments) {
                new_row[*pos] = ev.eval(&a.value)?;
            }
            planned.push((id, new_row));
        }
        planned
    };

    // Apply.
    let dbname = db.name.clone();
    let table = db.table_mut(&table_name)?;
    let mut changed = 0usize;
    for (id, new_row) in planned {
        let old = table.replace(id, new_row)?;
        undo.push(UndoOp::Update { database: dbname.clone(), table: table_name.clone(), id, old });
        changed += 1;
    }
    Ok(changed)
}

/// Executes a DELETE; returns the number of rows removed.
pub fn execute_delete(
    db: &mut Database,
    del: &Delete,
    undo: &mut Vec<UndoOp>,
) -> Result<usize, DbError> {
    let table_name = check_local_table(&del.table, db)?;
    let binding_name = del.table.binding_name().to_ascii_lowercase();

    let victims: Vec<RowId> = {
        let dbr: &Database = db;
        let table = dbr.table(&table_name)?;
        let schema = &table.schema;
        let cache = SubqueryCache::new();
        let mut victims = Vec::new();
        for (id, row) in table.iter() {
            let env = Env { bindings: vec![Binding { name: binding_name.clone(), schema, row }] };
            let ev = Evaluator::new(dbr, &env).with_cache(&cache);
            let hit = match &del.where_clause {
                None => true,
                Some(pred) => ev.eval(pred)?.as_truth()? == Some(true),
            };
            if hit {
                victims.push(id);
            }
        }
        victims
    };

    let dbname = db.name.clone();
    let table = db.table_mut(&table_name)?;
    let mut removed = 0usize;
    for id in victims {
        if let Some(row) = table.remove(id) {
            undo.push(UndoOp::Delete {
                database: dbname.clone(),
                table: table_name.clone(),
                id,
                row,
            });
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnSchema, TableSchema};
    use crate::table::Table;
    use crate::value::DataType;
    use msql_lang::{parse_statement, QueryBody, Statement};

    fn flights_db() -> Database {
        let mut db = Database::new("continental");
        let mut t = Table::new(TableSchema::new(
            "flights",
            vec![
                ColumnSchema::new("flnu", DataType::Int),
                ColumnSchema::new("source", DataType::Char(20)),
                ColumnSchema::new("destination", DataType::Char(20)),
                ColumnSchema::new("rate", DataType::Float),
            ],
        ));
        for (n, s, d, r) in [
            (1, "Houston", "San Antonio", 100.0),
            (2, "Houston", "Dallas", 80.0),
            (3, "Austin", "San Antonio", 60.0),
        ] {
            t.insert(vec![
                Value::Int(n),
                Value::Str(s.into()),
                Value::Str(d.into()),
                Value::Float(r),
            ])
            .unwrap();
        }
        db.insert_table(t);
        db
    }

    fn as_update(sql: &str) -> Update {
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        let QueryBody::Update(u) = q.body else { panic!() };
        u
    }

    fn as_insert(sql: &str) -> Insert {
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        let QueryBody::Insert(i) = q.body else { panic!() };
        i
    }

    fn as_delete(sql: &str) -> Delete {
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        let QueryBody::Delete(d) = q.body else { panic!() };
        d
    }

    #[test]
    fn paper_update_raises_rates() {
        let mut db = flights_db();
        let mut undo = Vec::new();
        let up = as_update(
            "UPDATE flights SET rate = rate * 1.1
             WHERE source = 'Houston' AND destination = 'San Antonio'",
        );
        let n = execute_update(&mut db, &up, &mut undo).unwrap();
        assert_eq!(n, 1);
        assert_eq!(undo.len(), 1);
        let rows: Vec<&Row> = db.table("flights").unwrap().iter().map(|(_, r)| r).collect();
        assert_eq!(rows[0][3], Value::Float(100.0 * 1.1));
        assert_eq!(rows[1][3], Value::Float(80.0));
    }

    #[test]
    fn update_without_where_hits_all() {
        let mut db = flights_db();
        let mut undo = Vec::new();
        let up = as_update("UPDATE flights SET rate = 0");
        assert_eq!(execute_update(&mut db, &up, &mut undo).unwrap(), 3);
    }

    #[test]
    fn update_undo_restores_old_image() {
        let mut db = flights_db();
        let mut undo = Vec::new();
        let up = as_update("UPDATE flights SET rate = rate * 2 WHERE flnu = 1");
        execute_update(&mut db, &up, &mut undo).unwrap();
        let UndoOp::Update { old, .. } = &undo[0] else { panic!() };
        assert_eq!(old[3], Value::Float(100.0));
    }

    #[test]
    fn insert_values_with_column_list() {
        let mut db = flights_db();
        let mut undo = Vec::new();
        let ins = as_insert("INSERT INTO flights (flnu, rate) VALUES (9, 55.0)");
        assert_eq!(execute_insert(&mut db, &ins, &mut undo).unwrap(), 1);
        let rows: Vec<&Row> = db.table("flights").unwrap().iter().map(|(_, r)| r).collect();
        let last = rows.last().unwrap();
        assert_eq!(last[0], Value::Int(9));
        assert_eq!(last[1], Value::Null); // unlisted column defaults to NULL
        assert_eq!(last[3], Value::Float(55.0));
    }

    #[test]
    fn insert_select_copies_rows() {
        let mut db = flights_db();
        let mut t = Table::new(TableSchema::new(
            "archive",
            vec![
                ColumnSchema::new("flnu", DataType::Int),
                ColumnSchema::new("source", DataType::Char(20)),
                ColumnSchema::new("destination", DataType::Char(20)),
                ColumnSchema::new("rate", DataType::Float),
            ],
        ));
        t.insert(vec![Value::Int(0), Value::Null, Value::Null, Value::Null]).unwrap();
        db.insert_table(t);
        let mut undo = Vec::new();
        let ins = as_insert("INSERT INTO archive SELECT * FROM flights WHERE source = 'Houston'");
        assert_eq!(execute_insert(&mut db, &ins, &mut undo).unwrap(), 2);
        assert_eq!(db.table("archive").unwrap().len(), 3);
    }

    #[test]
    fn insert_arity_mismatch_is_atomic() {
        let mut db = flights_db();
        let mut undo = Vec::new();
        let ins = as_insert("INSERT INTO flights (flnu, rate) VALUES (9, 55.0, 1)");
        assert!(execute_insert(&mut db, &ins, &mut undo).is_err());
        assert!(undo.is_empty());
        assert_eq!(db.table("flights").unwrap().len(), 3);
    }

    #[test]
    fn delete_with_predicate() {
        let mut db = flights_db();
        let mut undo = Vec::new();
        let del = as_delete("DELETE FROM flights WHERE source = 'Houston'");
        assert_eq!(execute_delete(&mut db, &del, &mut undo).unwrap(), 2);
        assert_eq!(db.table("flights").unwrap().len(), 1);
        assert_eq!(undo.len(), 2);
    }

    #[test]
    fn update_with_scalar_subquery_reservation() {
        // §3.4 pattern: mark the lowest FREE seat TAKEN.
        let mut db = Database::new("continental");
        let mut t = Table::new(TableSchema::new(
            "f838",
            vec![
                ColumnSchema::new("seatnu", DataType::Int),
                ColumnSchema::new("seatstatus", DataType::Char(8)),
                ColumnSchema::new("clientname", DataType::Char(20)),
            ],
        ));
        for (n, st) in [(1, "TAKEN"), (2, "FREE"), (3, "FREE")] {
            t.insert(vec![Value::Int(n), Value::Str(st.into()), Value::Null]).unwrap();
        }
        db.insert_table(t);
        let mut undo = Vec::new();
        let up = as_update(
            "UPDATE f838 SET seatstatus = 'TAKEN', clientname = 'wenders'
             WHERE seatnu = (SELECT MIN(seatnu) FROM f838 WHERE seatstatus = 'FREE')",
        );
        assert_eq!(execute_update(&mut db, &up, &mut undo).unwrap(), 1);
        let rows: Vec<&Row> = db.table("f838").unwrap().iter().map(|(_, r)| r).collect();
        assert_eq!(rows[1][1], Value::Str("TAKEN".into()));
        assert_eq!(rows[1][2], Value::Str("wenders".into()));
        assert_eq!(rows[2][1], Value::Str("FREE".into()));
    }

    #[test]
    fn remote_table_is_rejected() {
        let mut db = flights_db();
        let mut undo = Vec::new();
        let up = as_update("UPDATE delta.flight SET rate = 1");
        assert!(matches!(execute_update(&mut db, &up, &mut undo), Err(DbError::NotLocalSql(_))));
    }

    #[test]
    fn wildcard_assignment_is_rejected() {
        let mut db = flights_db();
        let mut undo = Vec::new();
        let up = as_update("UPDATE flights SET rate% = 1");
        assert!(matches!(execute_update(&mut db, &up, &mut undo), Err(DbError::NotLocalSql(_))));
    }
}
