//! Statement execution: retrieval ([`select`]), modification ([`dml`]) and
//! schema changes ([`ddl`]).

pub mod ddl;
pub mod dml;
pub mod select;
