//! Statement execution: retrieval ([`select`]), modification ([`dml`]),
//! schema changes ([`ddl`]) and statistics collection ([`analyze`]).

pub mod analyze;
pub mod ddl;
pub mod dml;
pub mod select;
