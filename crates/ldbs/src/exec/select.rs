//! SELECT execution: access paths, joins, filtering, aggregation, sorting,
//! projection.
//!
//! The executor is an iterate-and-filter engine (SQL-89 style implicit
//! joins, as in all of the paper's examples). Aggregates are computed per
//! group and *substituted* into the projection/HAVING/ORDER BY expressions
//! as literals, after which the ordinary row evaluator finishes the job —
//! this keeps a single evaluator implementation.
//!
//! Before enumeration each FROM source picks an **access path**: when the
//! WHERE tree carries a sargable conjunct (`col = lit`, `col IN (lits)`,
//! `col < lit`, `col BETWEEN lit AND lit`, …) on an indexed column, the
//! source materialises only the index probe's candidates instead of the
//! whole table. Probes are deliberately *superset-safe*: canonical keys can
//! fold distinct values together and strict bounds are widened to inclusive,
//! but every surviving combination is still re-checked against the original,
//! unmodified WHERE, so index-on and index-off runs return identical rows.
//!
//! Two-table queries whose WHERE contains an equality conjunct between the
//! two FROM bindings skip the cross product: a hash table is built on the
//! smaller side and probed with the larger, so only key-matched pairs reach
//! the (unchanged) full-WHERE filter. When one side already has an index on
//! its join key, that index *is* the build side — no hash table is built at
//! all. The paper's coordinator evaluates the modified global query Q' over
//! shipped partials exactly this way, turning its cost from O(|R|·|S|) into
//! O(|R|+|S|+matches).

use crate::engine::{ColumnMeta, Database, ResultSet};
use crate::error::DbError;
use crate::eval::{literal_value, value_literal, Binding, Env, Evaluator, SubqueryCache};
use crate::index::KeyBound;
use crate::schema::TableSchema;
use crate::table::{Row, RowId, Table};
use crate::value::{CanonicalKey, DataType, Value};
use msql_lang::printer::print_expr;
use msql_lang::{
    AggregateKind, BinaryOp, Expr, OrderByItem, Select, SelectItem, SortOrder, TableRef,
};
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Per-statement access-path counters, shared by reference so the engine can
/// aggregate them without threading mutable state through the recursion.
#[derive(Debug, Default)]
pub struct AccessStats {
    /// Rows materialised from base tables (after any index reduction).
    pub rows_scanned: Cell<u64>,
    /// Candidate row ids produced by index probes.
    pub index_hits: Cell<u64>,
    /// True when at least one source or join was served by an index.
    pub probed: Cell<bool>,
}

impl AccessStats {
    fn add_scanned(&self, n: u64) {
        self.rows_scanned.set(self.rows_scanned.get() + n);
    }

    fn add_hits(&self, n: u64) {
        self.index_hits.set(self.index_hits.get() + n);
        self.probed.set(true);
    }
}

/// One resolved FROM entry: the table, its (possibly index-reduced) visible
/// rows, and the ids those rows live under — `rows[i]` is always row
/// `ids[i]`, in ascending id order, so enumeration stays deterministic.
struct Source<'a> {
    table: &'a Table,
    schema: &'a TableSchema,
    rows: Vec<&'a Row>,
    ids: Vec<RowId>,
    binding: String,
}

/// Executes a SELECT against `db`. `outer` carries the binding scopes of
/// enclosing query blocks (for correlated subqueries); top-level queries pass
/// an empty slice.
pub fn execute_select(
    db: &Database,
    sel: &Select,
    outer: &[&Env<'_>],
) -> Result<ResultSet, DbError> {
    execute_select_with(db, sel, outer, true)
}

/// [`execute_select`] with the index and hash-join fast paths toggleable.
/// `fast = false` forces full scans and the naive cross-product enumeration —
/// the reference semantics the property tests compare the fast paths against.
pub fn execute_select_with(
    db: &Database,
    sel: &Select,
    outer: &[&Env<'_>],
    fast: bool,
) -> Result<ResultSet, DbError> {
    let stats = AccessStats::default();
    execute_select_impl(db, sel, outer, fast, &stats)
}

/// [`execute_select`] with access-path accounting: index probe candidates and
/// materialised rows are added to `stats`. Subqueries run through the plain
/// entry point and are intentionally not counted.
pub fn execute_select_stats(
    db: &Database,
    sel: &Select,
    outer: &[&Env<'_>],
    stats: &AccessStats,
) -> Result<ResultSet, DbError> {
    execute_select_impl(db, sel, outer, true, stats)
}

fn execute_select_impl(
    db: &Database,
    sel: &Select,
    outer: &[&Env<'_>],
    fast: bool,
    stats: &AccessStats,
) -> Result<ResultSet, DbError> {
    // Statement-scoped cache for uncorrelated scalar subqueries.
    let subq_cache = SubqueryCache::new();
    // Resolve FROM tables. Rows are borrowed straight out of the table — no
    // per-statement clone of the stored data.
    let mut sources: Vec<Source> = Vec::with_capacity(sel.from.len());
    for tref in &sel.from {
        let table = resolve_table(db, tref)?;
        let binding = tref.binding_name().to_ascii_lowercase();
        if sources.iter().any(|s| s.binding == binding) {
            return Err(DbError::AmbiguousColumn(format!("duplicate FROM binding `{binding}`")));
        }
        let (ids, rows) = table.iter().unzip();
        sources.push(Source { table, schema: &table.schema, rows, ids, binding });
    }

    // Access-path selection: route sargable WHERE conjuncts to index probes,
    // shrinking each source to the candidate rows before enumeration.
    if fast {
        if let Some(w) = &sel.where_clause {
            let mut sargs = Vec::new();
            collect_sargs(w, &sources, &mut sargs);
            for (si, source) in sources.iter_mut().enumerate() {
                let Some(candidates) = choose_probe(source, si, &sargs) else { continue };
                stats.add_hits(candidates.len() as u64);
                source.rows = candidates.iter().filter_map(|id| source.table.get(*id)).collect();
                source.ids = candidates;
            }
        }
    }
    for s in &sources {
        stats.add_scanned(s.rows.len() as u64);
    }

    // Enumerate the cross product, filter by WHERE. An empty FROM clause
    // (e.g. `SELECT 1`) contributes exactly one empty combination; an empty
    // table anywhere makes the product empty.
    let mut combos: Vec<Vec<&Row>> = Vec::new();
    let keep_combo = |combo: &Vec<&Row>| -> Result<bool, DbError> {
        match &sel.where_clause {
            None => Ok(true),
            Some(pred) => {
                let env = make_env(&sources, combo);
                let ev = evaluator(db, outer, &env, &subq_cache);
                Ok(ev.eval(pred)?.as_truth()? == Some(true))
            }
        }
    };
    if sources.is_empty() {
        let combo = Vec::new();
        if keep_combo(&combo)? {
            combos.push(combo);
        }
    } else if sources.iter().all(|s| !s.rows.is_empty()) {
        let equi =
            if fast && sources.len() == 2 { equi_key_columns(sel, &sources) } else { vec![] };
        if !equi.is_empty() {
            // Equi-join: pair only key-matched rows, then apply the full
            // WHERE unchanged, so the result is exactly the filtered cross
            // product (any pair the key-match pruned had an unequal or NULL
            // key, which already falsifies an AND-ed equality; any pair it
            // over-returned is rejected by the re-check).
            let matches = index_join_matches(&sources, &equi, stats)
                .unwrap_or_else(|| hash_join_matches(&sources[0].rows, &sources[1].rows, &equi));
            for (li, ri) in matches {
                let combo = vec![sources[0].rows[li], sources[1].rows[ri]];
                if keep_combo(&combo)? {
                    combos.push(combo);
                }
            }
        } else {
            let mut idx = vec![0usize; sources.len()];
            'product: loop {
                let combo: Vec<&Row> = sources.iter().zip(&idx).map(|(s, i)| s.rows[*i]).collect();
                if keep_combo(&combo)? {
                    combos.push(combo);
                }
                // Advance the odometer, rightmost position fastest.
                let mut k = sources.len() - 1;
                loop {
                    idx[k] += 1;
                    if idx[k] < sources[k].rows.len() {
                        break;
                    }
                    idx[k] = 0;
                    if k == 0 {
                        break 'product;
                    }
                    k -= 1;
                }
            }
        }
    }

    let aggregate_mode = !sel.group_by.is_empty()
        || sel.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || sel.having.as_ref().map(Expr::contains_aggregate).unwrap_or(false);

    let (mut names, mut rows, order_keys) = if aggregate_mode {
        run_aggregate(db, sel, outer, &sources, combos, &subq_cache)?
    } else {
        run_rowwise(db, sel, outer, &sources, combos, &subq_cache)?
    };

    // ORDER BY: keys were computed alongside each output row.
    if !sel.order_by.is_empty() {
        let mut perm: Vec<usize> = (0..rows.len()).collect();
        perm.sort_by(|&a, &b| compare_keys(&order_keys[a], &order_keys[b], &sel.order_by));
        rows = perm.iter().map(|&i| rows[i].clone()).collect();
    }

    // DISTINCT: stable dedup via sorted view.
    if sel.distinct {
        let mut seen: Vec<Row> = Vec::new();
        rows.retain(|r| {
            if seen.iter().any(|s| rows_equal(s, r)) {
                false
            } else {
                seen.push(r.clone());
                true
            }
        });
    }

    // LIMIT: applied last, after ORDER BY and DISTINCT (SQL evaluation order).
    if let Some(n) = sel.limit {
        rows.truncate(n as usize);
    }

    // Column metadata: static inference refined by the first non-null value.
    let columns = build_column_meta(&mut names, &sources, sel, &rows);
    Ok(ResultSet { columns, rows })
}

fn resolve_table<'a>(
    db: &'a Database,
    tref: &TableRef,
) -> Result<&'a crate::table::Table, DbError> {
    if tref.table.is_multiple() || tref.database.as_ref().map(|d| d.is_multiple()).unwrap_or(false)
    {
        return Err(DbError::NotLocalSql(format!(
            "table reference `{}` still contains a wildcard",
            tref.table
        )));
    }
    if let Some(d) = &tref.database {
        if d.as_str() != db.name {
            return Err(DbError::NotLocalSql(format!(
                "reference to remote database `{d}` inside local SQL"
            )));
        }
    }
    db.table(tref.table.as_str())
}

fn make_env<'a>(sources: &'a [Source<'a>], combo: &[&'a Row]) -> Env<'a> {
    Env {
        bindings: sources
            .iter()
            .zip(combo)
            .map(|(s, row)| Binding { name: s.binding.clone(), schema: s.schema, row })
            .collect(),
    }
}

fn evaluator<'a>(
    db: &'a Database,
    outer: &[&'a Env<'a>],
    env: &'a Env<'a>,
    cache: &'a SubqueryCache,
) -> Evaluator<'a> {
    let mut scopes: Vec<&Env> = outer.to_vec();
    scopes.push(env);
    Evaluator { db, scopes, cache: Some(cache) }
}

/// One sargable WHERE conjunct: a predicate on a single source column whose
/// other side is a literal, so an index can answer it (modulo the residual
/// re-check).
enum Sarg {
    /// `col = literal` (either orientation).
    Eq(Value),
    /// `col IN (literal, …)`, non-negated.
    In(Vec<Value>),
    /// `col <|<=|>|>= literal`, normalised to column-on-the-left.
    Cmp { op: BinaryOp, value: Value },
    /// `col BETWEEN literal AND literal`, non-negated.
    Between { low: Value, high: Value },
}

/// Walks the AND-spine of a WHERE tree collecting sargable conjuncts as
/// `(source index, column index, sarg)`. Branches under OR/NOT are skipped:
/// a disjunct cannot be enforced by shrinking one source.
fn collect_sargs(e: &Expr, sources: &[Source], out: &mut Vec<(usize, usize, Sarg)>) {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            collect_sargs(left, sources, out);
            collect_sargs(right, sources, out);
        }
        Expr::Binary { left, op, right }
            if matches!(
                op,
                BinaryOp::Eq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq
            ) =>
        {
            let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(l)) => (c, l, *op),
                (Expr::Literal(l), Expr::Column(c)) => (c, l, flip_cmp(*op)),
                _ => return,
            };
            let Some((si, ci)) = resolve_key_column(col, sources) else { return };
            let value = literal_value(lit);
            let sarg = match op {
                BinaryOp::Eq => Sarg::Eq(value),
                other => Sarg::Cmp { op: other, value },
            };
            out.push((si, ci, sarg));
        }
        Expr::InList { expr, list, negated: false } => {
            let Expr::Column(c) = expr.as_ref() else { return };
            let values: Option<Vec<Value>> = list
                .iter()
                .map(|e| match e {
                    Expr::Literal(l) => Some(literal_value(l)),
                    _ => None,
                })
                .collect();
            if let (Some((si, ci)), Some(values)) = (resolve_key_column(c, sources), values) {
                out.push((si, ci, Sarg::In(values)));
            }
        }
        Expr::Between { expr, low, high, negated: false } => {
            let (Expr::Column(c), Expr::Literal(lo), Expr::Literal(hi)) =
                (expr.as_ref(), low.as_ref(), high.as_ref())
            else {
                return;
            };
            if let Some((si, ci)) = resolve_key_column(c, sources) {
                out.push((
                    si,
                    ci,
                    Sarg::Between { low: literal_value(lo), high: literal_value(hi) },
                ));
            }
        }
        _ => {}
    }
}

/// Mirrors a comparison across `=`, for `literal op col` conjuncts.
fn flip_cmp(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// Picks an access path for source `si`: the candidate row ids of the best
/// index probe (`Some`, sorted ascending), or `None` to fall back to a full
/// scan. Preference order: point equality, then IN, then a fused range over
/// all comparison conjuncts on one B-tree-indexed column.
fn choose_probe(source: &Source, si: usize, sargs: &[(usize, usize, Sarg)]) -> Option<Vec<RowId>> {
    let column = |ci: usize| source.schema.columns[ci].name.as_str();
    for (s, ci, sarg) in sargs {
        if *s != si {
            continue;
        }
        if let Sarg::Eq(v) = sarg {
            if probe_priced_out(source.table, column(*ci), 1) {
                continue;
            }
            if let Some(idx) = source.table.index_on(column(*ci), false) {
                return Some(idx.probe_eq(std::slice::from_ref(v)));
            }
        }
    }
    for (s, ci, sarg) in sargs {
        if *s != si {
            continue;
        }
        if let Sarg::In(values) = sarg {
            if probe_priced_out(source.table, column(*ci), values.len()) {
                continue;
            }
            if let Some(idx) = source.table.index_on(column(*ci), false) {
                return Some(idx.probe_eq(values));
            }
        }
    }
    // Range: fuse every comparison conjunct on the first B-tree-indexed
    // column into one `[low, high]` probe. Strict bounds are widened to
    // inclusive (the residual WHERE re-check trims the edge); a NULL bound
    // can never compare true, so it empties the candidate set outright.
    let mut tried: Vec<usize> = Vec::new();
    for (s, ci, sarg) in sargs {
        if *s != si || !matches!(sarg, Sarg::Cmp { .. } | Sarg::Between { .. }) {
            continue;
        }
        if tried.contains(ci) {
            continue;
        }
        tried.push(*ci);
        let Some(idx) = source.table.index_on(column(*ci), true) else { continue };
        let mut lows: Vec<CanonicalKey> = Vec::new();
        let mut highs: Vec<CanonicalKey> = Vec::new();
        let mut impossible = false;
        for (s2, ci2, sarg2) in sargs {
            if *s2 != si || ci2 != ci {
                continue;
            }
            let mut push = |slot: &mut Vec<CanonicalKey>, v: &Value| match v.canonical_key() {
                Some(k) => slot.push(k),
                None => impossible = true,
            };
            match sarg2 {
                Sarg::Cmp { op: BinaryOp::Gt | BinaryOp::GtEq, value } => push(&mut lows, value),
                Sarg::Cmp { op: BinaryOp::Lt | BinaryOp::LtEq, value } => push(&mut highs, value),
                Sarg::Between { low, high } => {
                    push(&mut lows, low);
                    push(&mut highs, high);
                }
                _ => {}
            }
        }
        if impossible {
            return Some(Vec::new());
        }
        let lo = lows.into_iter().max().map_or(KeyBound::Unbounded, KeyBound::Inclusive);
        let hi = highs.into_iter().min().map_or(KeyBound::Unbounded, KeyBound::Inclusive);
        return idx.probe_range(&lo, &hi);
    }
    None
}

/// NDV pricing of an equality/IN probe against the scan it replaces: with
/// `ANALYZE` statistics present, a probe over `keys` values of a column with
/// NDV distinct values is expected to return `rows × min(1, keys/NDV)`
/// candidates; at half the table or more, the index walk plus candidate
/// materialization costs more than scanning, so the probe is skipped. The
/// residual WHERE still filters either way, so the choice only moves cost.
/// Without statistics every probe wins, exactly as before `ANALYZE` existed.
fn probe_priced_out(table: &Table, column: &str, keys: usize) -> bool {
    let Some(stats) = table.table_stats() else { return false };
    if stats.row_count == 0 {
        return false;
    }
    let Some(col) = stats.column(column) else { return false };
    if col.ndv == 0 {
        return false;
    }
    let expected = stats.row_count as f64 * (keys as f64 / col.ndv as f64).min(1.0);
    expected * 2.0 >= stats.row_count as f64
}

/// Equality conjuncts of the WHERE tree joining source 0 to source 1,
/// as `(left column index, right column index)` pairs. Only column = column
/// conjuncts whose sides resolve — by the evaluator's own rules — to the two
/// different FROM bindings qualify; anything unresolvable or ambiguous is
/// left for the evaluator (the caller falls back to the cross product).
fn equi_key_columns(sel: &Select, sources: &[Source]) -> Vec<(usize, usize)> {
    fn walk(e: &Expr, sources: &[Source], keys: &mut Vec<(usize, usize)>) {
        match e {
            Expr::Binary { left, op: BinaryOp::And, right } => {
                walk(left, sources, keys);
                walk(right, sources, keys);
            }
            Expr::Binary { left, op: BinaryOp::Eq, right } => {
                if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) {
                    match (resolve_key_column(a, sources), resolve_key_column(b, sources)) {
                        (Some((0, ca)), Some((1, cb))) => keys.push((ca, cb)),
                        (Some((1, ca)), Some((0, cb))) => keys.push((cb, ca)),
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    let mut keys = Vec::new();
    if let Some(w) = &sel.where_clause {
        walk(w, sources, &mut keys);
    }
    keys
}

/// Resolves a column reference to `(source index, column index)` exactly the
/// way [`Env::lookup`] would: a qualifier matches the first binding by name
/// or schema name; an unqualified column must be unique across the sources.
/// `None` means "not cleanly ours" — possibly outer-correlated, ambiguous,
/// or unknown — and disqualifies the conjunct from key duty.
fn resolve_key_column(c: &msql_lang::ColumnRef, sources: &[Source]) -> Option<(usize, usize)> {
    if c.is_multiple() || c.database.is_some() {
        return None;
    }
    let column = c.column.as_str();
    match c.table.as_ref().map(|t| t.as_str()) {
        Some(t) => {
            let si = sources.iter().position(|s| s.binding == t || s.schema.name == t)?;
            let ci = sources[si].schema.column_index(column)?;
            Some((si, ci))
        }
        None => {
            let mut found = None;
            for (si, s) in sources.iter().enumerate() {
                if let Some(ci) = s.schema.column_index(column) {
                    if found.is_some() {
                        return None;
                    }
                    found = Some((si, ci));
                }
            }
            found
        }
    }
}

/// `None` for values that can never satisfy an equality (NULL, NaN): rows
/// keyed by them are skipped on both sides. SQL equality crosses the
/// Int/Float divide (`2 = 2.0`), so both map onto one canonical numeric
/// key — equal values always share a bucket; rare collisions between unequal
/// values (integers beyond 2^53) are resolved by the exact sub-bucket check.
fn key_of(row: &Row, cols: &[usize]) -> Option<(Vec<CanonicalKey>, Vec<Value>)> {
    let mut hashed = Vec::with_capacity(cols.len());
    let mut exact = Vec::with_capacity(cols.len());
    for &c in cols {
        hashed.push(row[c].canonical_key()?);
        exact.push(row[c].clone());
    }
    Some((hashed, exact))
}

fn keys_sql_equal(a: &[Value], b: &[Value]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.sql_cmp(y) == Some(Ordering::Equal))
}

/// Feeds the join from an existing index instead of building a hash table:
/// when either side has an index on its join-key column, the other side's
/// rows probe it directly. Probe hits are filtered through the indexed
/// side's visible-row set (the index covers the whole table, but an earlier
/// sarg probe may have shrunk the source). Returns `None` when neither side
/// has a usable index. Over-returns on canonical-key collisions are allowed —
/// the caller re-applies the full WHERE to every pair.
fn index_join_matches(
    sources: &[Source],
    keys: &[(usize, usize)],
    stats: &AccessStats,
) -> Option<Vec<(usize, usize)>> {
    for (b, p) in [(0usize, 1usize), (1usize, 0usize)] {
        for &(c_left, c_right) in keys {
            let (cb, cp) = if b == 0 { (c_left, c_right) } else { (c_right, c_left) };
            let col = sources[b].schema.columns[cb].name.as_str();
            let Some(idx) = sources[b].table.index_on(col, false) else { continue };
            let pos: HashMap<RowId, usize> =
                sources[b].ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
            let mut matches = Vec::new();
            let mut hits = 0u64;
            for (j, row) in sources[p].rows.iter().enumerate() {
                let Some(key) = row[cp].canonical_key() else { continue };
                for id in idx.probe_key(&key) {
                    if let Some(&i) = pos.get(id) {
                        hits += 1;
                        matches.push(if b == 0 { (i, j) } else { (j, i) });
                    }
                }
            }
            matches.sort_unstable();
            stats.add_hits(hits);
            return Some(matches);
        }
    }
    None
}

/// Builds a hash table on the smaller side, probes with the larger, and
/// returns matched `(left index, right index)` pairs sorted left-major —
/// the exact order the odometer would have visited them in.
fn hash_join_matches(
    left: &[&Row],
    right: &[&Row],
    keys: &[(usize, usize)],
) -> Vec<(usize, usize)> {
    let build_left = left.len() <= right.len();
    let (build, probe): (&[&Row], &[&Row]) = if build_left { (left, right) } else { (right, left) };
    let (build_cols, probe_cols): (Vec<usize>, Vec<usize>) = if build_left {
        (keys.iter().map(|k| k.0).collect(), keys.iter().map(|k| k.1).collect())
    } else {
        (keys.iter().map(|k| k.1).collect(), keys.iter().map(|k| k.0).collect())
    };
    // Bucket → sub-buckets of exactly-equal keys (canonical-key collisions
    // resolved by sql_cmp, which is the equality the pruned conjuncts would
    // apply).
    type KeyBuckets = HashMap<Vec<CanonicalKey>, Vec<(Vec<Value>, Vec<usize>)>>;
    let mut table = KeyBuckets::new();
    for (i, row) in build.iter().enumerate() {
        let Some((hashed, exact)) = key_of(row, &build_cols) else { continue };
        let buckets = table.entry(hashed).or_default();
        match buckets.iter_mut().find(|(k, _)| keys_sql_equal(k, &exact)) {
            Some((_, members)) => members.push(i),
            None => buckets.push((exact, vec![i])),
        }
    }
    let mut matches = Vec::new();
    for (j, row) in probe.iter().enumerate() {
        let Some((hashed, exact)) = key_of(row, &probe_cols) else { continue };
        let Some(buckets) = table.get(&hashed) else { continue };
        if let Some((_, members)) = buckets.iter().find(|(k, _)| keys_sql_equal(k, &exact)) {
            for &i in members {
                matches.push(if build_left { (i, j) } else { (j, i) });
            }
        }
    }
    matches.sort_unstable();
    matches
}

/// Expands `*` / `t.*` items into concrete column expressions, returning
/// `(display name, expr-or-direct-index)` pairs.
enum ProjItem {
    /// Evaluate this expression.
    Expr { expr: Expr, name: String },
    /// Copy the column directly from a binding (for wildcards).
    Direct { source: usize, column: usize, name: String },
}

fn expand_items(sel: &Select, sources: &[Source]) -> Result<Vec<ProjItem>, DbError> {
    let mut out = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for (si, s) in sources.iter().enumerate() {
                    for (ci, col) in s.schema.columns.iter().enumerate() {
                        out.push(ProjItem::Direct {
                            source: si,
                            column: ci,
                            name: col.name.clone(),
                        });
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let target = t.as_str();
                let si = sources
                    .iter()
                    .position(|s| s.binding == target || s.schema.name == target)
                    .ok_or_else(|| DbError::UnknownTable(target.to_string()))?;
                for (ci, col) in sources[si].schema.columns.iter().enumerate() {
                    out.push(ProjItem::Direct { source: si, column: ci, name: col.name.clone() });
                }
            }
            SelectItem::Expr { expr, alias, .. } => {
                let name = alias.clone().unwrap_or_else(|| derive_name(expr));
                out.push(ProjItem::Expr { expr: expr.clone(), name });
            }
        }
    }
    Ok(out)
}

fn derive_name(expr: &Expr) -> String {
    match expr {
        Expr::Column(c) => c.column.as_str().to_string(),
        Expr::Aggregate { kind, .. } => kind.name().to_ascii_lowercase(),
        other => print_expr(other),
    }
}

type RowsAndKeys = (Vec<String>, Vec<Row>, Vec<Vec<Value>>);

fn run_rowwise(
    db: &Database,
    sel: &Select,
    outer: &[&Env<'_>],
    sources: &[Source],
    combos: Vec<Vec<&Row>>,
    subq_cache: &SubqueryCache,
) -> Result<RowsAndKeys, DbError> {
    let items = expand_items(sel, sources)?;
    let names: Vec<String> = items
        .iter()
        .map(|i| match i {
            ProjItem::Expr { name, .. } | ProjItem::Direct { name, .. } => name.clone(),
        })
        .collect();
    let mut rows = Vec::with_capacity(combos.len());
    let mut keys = Vec::with_capacity(combos.len());
    for combo in combos {
        let env = make_env(sources, &combo);
        let ev = evaluator(db, outer, &env, subq_cache);
        let mut row = Vec::with_capacity(items.len());
        for item in &items {
            match item {
                ProjItem::Expr { expr, .. } => row.push(ev.eval(expr)?),
                ProjItem::Direct { source, column, .. } => {
                    row.push(combo[*source][*column].clone())
                }
            }
        }
        let mut key = Vec::with_capacity(sel.order_by.len());
        for o in &sel.order_by {
            key.push(ev.eval(&o.expr)?);
        }
        rows.push(row);
        keys.push(key);
    }
    Ok((names, rows, keys))
}

fn run_aggregate(
    db: &Database,
    sel: &Select,
    outer: &[&Env<'_>],
    sources: &[Source],
    combos: Vec<Vec<&Row>>,
    subq_cache: &SubqueryCache,
) -> Result<RowsAndKeys, DbError> {
    for item in &sel.items {
        if matches!(item, SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)) {
            return Err(DbError::TypeError(
                "`*` projection cannot be combined with aggregation".into(),
            ));
        }
    }

    // Group combos by the GROUP BY key.
    let mut groups: Vec<(Vec<Value>, Vec<Vec<&Row>>)> = Vec::new();
    for combo in combos {
        let env = make_env(sources, &combo);
        let ev = evaluator(db, outer, &env, subq_cache);
        let mut key = Vec::with_capacity(sel.group_by.len());
        for g in &sel.group_by {
            key.push(ev.eval(g)?);
        }
        match groups.iter_mut().find(|(k, _)| keys_equal(k, &key)) {
            Some((_, members)) => members.push(combo),
            None => groups.push((key, vec![combo])),
        }
    }
    // A global aggregate over an empty input still produces one row.
    if groups.is_empty() && sel.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let names: Vec<String> = sel
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Expr { expr, alias, .. } => {
                alias.clone().unwrap_or_else(|| derive_name(expr))
            }
            _ => unreachable!("wildcards rejected above"),
        })
        .collect();

    let mut rows = Vec::new();
    let mut keys = Vec::new();
    for (_, members) in &groups {
        // HAVING.
        if let Some(h) = &sel.having {
            let hv = eval_group_expr(db, sel, outer, sources, members, h, subq_cache)?;
            if hv.as_truth()? != Some(true) {
                continue;
            }
        }
        let mut row = Vec::with_capacity(sel.items.len());
        for item in &sel.items {
            let SelectItem::Expr { expr, .. } = item else { unreachable!() };
            row.push(eval_group_expr(db, sel, outer, sources, members, expr, subq_cache)?);
        }
        let mut key = Vec::with_capacity(sel.order_by.len());
        for o in &sel.order_by {
            key.push(eval_group_expr(db, sel, outer, sources, members, &o.expr, subq_cache)?);
        }
        rows.push(row);
        keys.push(key);
    }
    Ok((names, rows, keys))
}

/// Evaluates an expression over one group: aggregate subexpressions are
/// computed over the group's rows and substituted as literals, then the
/// rewritten expression is evaluated on the group's first row (or no row for
/// an empty global group).
fn eval_group_expr(
    db: &Database,
    _sel: &Select,
    outer: &[&Env<'_>],
    sources: &[Source],
    members: &[Vec<&Row>],
    expr: &Expr,
    subq_cache: &SubqueryCache,
) -> Result<Value, DbError> {
    let rewritten = substitute_aggregates(expr, &mut |kind, arg, distinct| {
        compute_aggregate(db, outer, sources, members, kind, arg, distinct, subq_cache)
    })?;
    if let Some(first) = members.first() {
        let env = make_env(sources, first);
        let ev = evaluator(db, outer, &env, subq_cache);
        ev.eval(&rewritten)
    } else {
        let env = Env::default();
        let ev = evaluator(db, outer, &env, subq_cache);
        ev.eval(&rewritten)
    }
}

fn substitute_aggregates(
    expr: &Expr,
    compute: &mut impl FnMut(AggregateKind, Option<&Expr>, bool) -> Result<Value, DbError>,
) -> Result<Expr, DbError> {
    Ok(match expr {
        Expr::Aggregate { kind, arg, distinct } => {
            let v = compute(*kind, arg.as_deref(), *distinct)?;
            Expr::Literal(value_literal(&v))
        }
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(substitute_aggregates(expr, compute)?) }
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(substitute_aggregates(left, compute)?),
            op: *op,
            right: Box::new(substitute_aggregates(right, compute)?),
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute_aggregates(a, compute))
                .collect::<Result<_, _>>()?,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(substitute_aggregates(expr, compute)?),
            list: list
                .iter()
                .map(|a| substitute_aggregates(a, compute))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(substitute_aggregates(expr, compute)?),
            low: Box::new(substitute_aggregates(low, compute)?),
            high: Box::new(substitute_aggregates(high, compute)?),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(substitute_aggregates(expr, compute)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(substitute_aggregates(expr, compute)?),
            pattern: Box::new(substitute_aggregates(pattern, compute)?),
            negated: *negated,
        },
        other => other.clone(),
    })
}

#[allow(clippy::too_many_arguments)]
fn compute_aggregate(
    db: &Database,
    outer: &[&Env<'_>],
    sources: &[Source],
    members: &[Vec<&Row>],
    kind: AggregateKind,
    arg: Option<&Expr>,
    distinct: bool,
    subq_cache: &SubqueryCache,
) -> Result<Value, DbError> {
    // COUNT(*) counts group members.
    let Some(arg) = arg else {
        return Ok(Value::Int(members.len() as i64));
    };
    let mut values = Vec::with_capacity(members.len());
    for combo in members {
        let env = make_env(sources, combo);
        let ev = evaluator(db, outer, &env, subq_cache);
        let v = ev.eval(arg)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut unique: Vec<Value> = Vec::new();
        for v in values {
            if !unique.iter().any(|u| u.sql_cmp(&v) == Some(Ordering::Equal)) {
                unique.push(v);
            }
        }
        values = unique;
    }
    match kind {
        AggregateKind::Count => Ok(Value::Int(values.len() as i64)),
        AggregateKind::Min => {
            Ok(values.into_iter().min_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null))
        }
        AggregateKind::Max => {
            Ok(values.into_iter().max_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null))
        }
        AggregateKind::Sum | AggregateKind::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let n = values.len();
            let mut acc = Value::Int(0);
            for v in values {
                acc = acc.add(&v)?;
            }
            if kind == AggregateKind::Sum {
                Ok(acc)
            } else {
                acc.div(&Value::Int(n as i64))
            }
        }
    }
}

fn keys_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.total_cmp(y) == Ordering::Equal)
}

fn rows_equal(a: &Row, b: &Row) -> bool {
    keys_equal(a, b)
}

fn compare_keys(a: &[Value], b: &[Value], order: &[OrderByItem]) -> Ordering {
    for (i, o) in order.iter().enumerate() {
        let cmp = a[i].total_cmp(&b[i]);
        let cmp = if o.order == SortOrder::Desc { cmp.reverse() } else { cmp };
        if cmp != Ordering::Equal {
            return cmp;
        }
    }
    Ordering::Equal
}

/// Static type inference with dynamic refinement from the produced rows.
fn build_column_meta(
    names: &mut Vec<String>,
    sources: &[Source],
    sel: &Select,
    rows: &[Row],
) -> Vec<ColumnMeta> {
    // Static guesses per output column, where derivable from the AST.
    let mut static_types: Vec<Option<DataType>> = Vec::new();
    let mut expanded_names: Vec<String> = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for s in sources {
                    for c in &s.schema.columns {
                        static_types.push(Some(c.data_type));
                        expanded_names.push(c.name.clone());
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                for s in sources {
                    if s.binding == t.as_str() || s.schema.name == t.as_str() {
                        for c in &s.schema.columns {
                            static_types.push(Some(c.data_type));
                            expanded_names.push(c.name.clone());
                        }
                    }
                }
            }
            SelectItem::Expr { expr, alias, .. } => {
                static_types.push(infer_type(expr, sources));
                expanded_names.push(alias.clone().unwrap_or_else(|| derive_name(expr)));
            }
        }
    }
    if expanded_names.len() == names.len() {
        *names = expanded_names;
    }
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let ty = static_types
                .get(i)
                .copied()
                .flatten()
                .or_else(|| rows.iter().find_map(|r| r.get(i).and_then(|v| v.data_type())))
                .unwrap_or(DataType::Char(0));
            ColumnMeta { name: name.clone(), data_type: ty }
        })
        .collect()
}

fn infer_type(expr: &Expr, sources: &[Source]) -> Option<DataType> {
    match expr {
        Expr::Column(c) => {
            let table = c.table.as_ref().map(|t| t.as_str());
            for s in sources {
                if let Some(t) = table {
                    if s.binding != t && s.schema.name != t {
                        continue;
                    }
                }
                if let Ok(col) = s.schema.column(c.column.as_str()) {
                    return Some(col.data_type);
                }
            }
            None
        }
        Expr::Literal(l) => literal_value(l).data_type(),
        Expr::Aggregate { kind: AggregateKind::Count, .. } => Some(DataType::Int),
        Expr::Aggregate { kind: AggregateKind::Avg, .. } => Some(DataType::Float),
        Expr::Aggregate { arg: Some(a), .. } => infer_type(a, sources),
        Expr::Binary { left, op, right } => match op {
            op if op.is_comparison() => Some(DataType::Bool),
            BinaryOp::And | BinaryOp::Or => Some(DataType::Bool),
            BinaryOp::Concat => Some(DataType::Char(0)),
            BinaryOp::Div => Some(DataType::Float),
            _ => match (infer_type(left, sources), infer_type(right, sources)) {
                (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
                (Some(_), Some(_)) => Some(DataType::Float),
                _ => None,
            },
        },
        Expr::Unary { op, expr } => match op {
            msql_lang::UnaryOp::Neg => infer_type(expr, sources),
            msql_lang::UnaryOp::Not => Some(DataType::Bool),
        },
        Expr::IsNull { .. }
        | Expr::Like { .. }
        | Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Exists { .. } => Some(DataType::Bool),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;
    use crate::schema::{ColumnSchema, IndexDef, IndexKind};
    use crate::table::Table;
    use msql_lang::parse_statement;

    fn avis() -> Database {
        let mut db = Database::new("avis");
        let mut cars = Table::new(TableSchema::new(
            "cars",
            vec![
                ColumnSchema::new("code", DataType::Int),
                ColumnSchema::new("cartype", DataType::Char(16)),
                ColumnSchema::new("rate", DataType::Float),
                ColumnSchema::new("carst", DataType::Char(10)),
            ],
        ));
        for (code, ty, rate, st) in [
            (1, "sedan", 39.5, "available"),
            (2, "suv", 59.0, "rented"),
            (3, "sedan", 35.0, "available"),
            (4, "compact", 25.0, "available"),
        ] {
            cars.insert(vec![
                Value::Int(code),
                Value::Str(ty.into()),
                Value::Float(rate),
                Value::Str(st.into()),
            ])
            .unwrap();
        }
        let mut rentals = Table::new(TableSchema::new(
            "rentals",
            vec![
                ColumnSchema::new("code", DataType::Int),
                ColumnSchema::new("client", DataType::Char(20)),
            ],
        ));
        rentals.insert(vec![Value::Int(2), Value::Str("wenders".into())]).unwrap();
        db.insert_table(cars);
        db.insert_table(rentals);
        db
    }

    fn select(db: &Database, sql: &str) -> ResultSet {
        let stmt = parse_statement(sql).unwrap();
        let msql_lang::Statement::Query(q) = stmt else { panic!() };
        let msql_lang::QueryBody::Select(sel) = q.body else { panic!() };
        execute_select(db, &sel, &[]).unwrap()
    }

    #[test]
    fn simple_filter_and_projection() {
        let db = avis();
        let rs = select(&db, "SELECT code, rate FROM cars WHERE carst = 'available'");
        assert_eq!(rs.columns.len(), 2);
        assert_eq!(rs.columns[0].name, "code");
        assert_eq!(rs.columns[1].data_type, DataType::Float);
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn star_projection() {
        let db = avis();
        let rs = select(&db, "SELECT * FROM cars");
        assert_eq!(rs.columns.len(), 4);
        assert_eq!(rs.rows.len(), 4);
        assert_eq!(rs.columns[1].name, "cartype");
    }

    #[test]
    fn cross_join_with_predicate() {
        let db = avis();
        let rs = select(
            &db,
            "SELECT cars.code, client FROM cars, rentals WHERE cars.code = rentals.code",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Str("wenders".into()));
    }

    #[test]
    fn order_by_desc_and_asc() {
        let db = avis();
        let rs = select(&db, "SELECT code FROM cars ORDER BY rate DESC, code");
        let codes: Vec<_> = rs.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(codes, vec![Value::Int(2), Value::Int(1), Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn distinct_dedups() {
        let db = avis();
        let rs = select(&db, "SELECT DISTINCT cartype FROM cars");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn global_aggregates() {
        let db = avis();
        let rs =
            select(&db, "SELECT COUNT(*), MIN(rate), MAX(rate), AVG(rate), SUM(code) FROM cars");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(4));
        assert_eq!(rs.rows[0][1], Value::Float(25.0));
        assert_eq!(rs.rows[0][2], Value::Float(59.0));
        assert_eq!(rs.rows[0][4], Value::Int(10));
    }

    #[test]
    fn aggregate_on_empty_input_returns_one_row() {
        let db = avis();
        let rs = select(&db, "SELECT COUNT(*), MIN(rate) FROM cars WHERE code > 99");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert_eq!(rs.rows[0][1], Value::Null);
    }

    #[test]
    fn group_by_with_having() {
        let db = avis();
        let rs = select(
            &db,
            "SELECT cartype, COUNT(*) AS n FROM cars GROUP BY cartype HAVING COUNT(*) > 1",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("sedan".into()));
        assert_eq!(rs.rows[0][1], Value::Int(2));
        assert_eq!(rs.columns[1].name, "n");
    }

    #[test]
    fn scalar_subquery_in_where() {
        let db = avis();
        let rs = select(&db, "SELECT code FROM cars WHERE rate = (SELECT MIN(rate) FROM cars)");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(4));
    }

    #[test]
    fn paper_min_free_seat_pattern() {
        // The §3.4 reservation pattern: pick the row with the lowest key
        // among those in a given state.
        let db = avis();
        let rs = select(
            &db,
            "SELECT code FROM cars WHERE code = (SELECT MIN(code) FROM cars WHERE carst = 'available')",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(1));
    }

    #[test]
    fn correlated_subquery() {
        let db = avis();
        // Cars that appear in rentals (correlated EXISTS).
        let rs = select(
            &db,
            "SELECT code FROM cars WHERE EXISTS (SELECT 1 FROM rentals WHERE rentals.code = cars.code)",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(2));
    }

    #[test]
    fn in_subquery() {
        let db = avis();
        let rs = select(&db, "SELECT code FROM cars WHERE code NOT IN (SELECT code FROM rentals)");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn count_distinct() {
        let db = avis();
        let rs = select(&db, "SELECT COUNT(DISTINCT cartype) FROM cars");
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn empty_from_table_yields_no_rows() {
        let mut db = avis();
        db.insert_table(Table::new(TableSchema::new(
            "empty",
            vec![ColumnSchema::new("x", DataType::Int)],
        )));
        let rs = select(&db, "SELECT cars.code FROM cars, empty");
        assert_eq!(rs.rows.len(), 0);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = avis();
        let try_select = |sql: &str| {
            let stmt = parse_statement(sql).unwrap();
            let msql_lang::Statement::Query(q) = stmt else { panic!() };
            let msql_lang::QueryBody::Select(sel) = q.body else { panic!() };
            execute_select(&db, &sel, &[])
        };
        assert!(matches!(try_select("SELECT x FROM nonexistent"), Err(DbError::UnknownTable(_))));
        assert!(matches!(
            try_select("SELECT nonexistent FROM cars"),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn scalar_subquery_cardinality_error() {
        let db = avis();
        let stmt =
            parse_statement("SELECT code FROM cars WHERE rate = (SELECT rate FROM cars)").unwrap();
        let msql_lang::Statement::Query(q) = stmt else { panic!() };
        let msql_lang::QueryBody::Select(sel) = q.body else { panic!() };
        assert!(matches!(execute_select(&db, &sel, &[]), Err(DbError::SubqueryCardinality)));
    }

    #[test]
    fn table_alias_binding() {
        let db = avis();
        let rs = select(&db, "SELECT c.code FROM cars c WHERE c.carst = 'rented'");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(2));
    }

    fn parse_select(sql: &str) -> Select {
        let stmt = parse_statement(sql).unwrap();
        let msql_lang::Statement::Query(q) = stmt else { panic!() };
        let msql_lang::QueryBody::Select(sel) = q.body else { panic!() };
        sel
    }

    #[test]
    fn hash_join_matches_cross_product_semantics() {
        let mut db = avis();
        // Joins cars on rate with Int/Float type mixing and a NULL key.
        let mut quotes = Table::new(TableSchema::new(
            "quotes",
            vec![ColumnSchema::new("q", DataType::Int), ColumnSchema::new("rate", DataType::Float)],
        ));
        for (q, r) in [
            (1, Value::Int(59)),
            (2, Value::Float(25.0)),
            (3, Value::Null),
            (4, Value::Float(99.0)),
        ] {
            quotes.insert(vec![Value::Int(q), r]).unwrap();
        }
        db.insert_table(quotes);
        let sel =
            parse_select("SELECT cars.code, q FROM cars, quotes WHERE cars.rate = quotes.rate");
        let fast = execute_select_with(&db, &sel, &[], true).unwrap();
        let slow = execute_select_with(&db, &sel, &[], false).unwrap();
        assert_eq!(fast.rows, slow.rows, "hash path reproduces the cross product exactly");
        // Int 59 matched Float 59.0; the NULL key matched nothing.
        assert_eq!(fast.rows.len(), 2);
    }

    #[test]
    fn hash_join_keeps_residual_predicates() {
        let db = avis();
        let sel = parse_select(
            "SELECT cars.code FROM cars, rentals
             WHERE cars.code = rentals.code AND cars.rate > 1000",
        );
        let rs = execute_select(&db, &sel, &[]).unwrap();
        assert_eq!(rs.rows.len(), 0, "non-key conjuncts still filter the matches");
    }

    #[test]
    fn hash_join_preserves_enumeration_order() {
        let db = avis();
        let sel = parse_select(
            "SELECT cars.code, client FROM cars, rentals WHERE cars.code = rentals.code",
        );
        let fast = execute_select_with(&db, &sel, &[], true).unwrap();
        let slow = execute_select_with(&db, &sel, &[], false).unwrap();
        assert_eq!(fast.rows, slow.rows);
        assert_eq!(fast.columns, slow.columns);
    }

    #[test]
    fn qualified_star() {
        let db = avis();
        let rs = select(&db, "SELECT r.* FROM cars c, rentals r WHERE c.code = r.code");
        assert_eq!(rs.columns.len(), 2);
        assert_eq!(rs.columns[0].name, "code");
        assert_eq!(rs.columns[1].name, "client");
    }

    fn indexed_avis() -> Database {
        let mut db = avis();
        let cars = db.table_mut("cars").unwrap();
        cars.create_index(IndexDef::new("cars_code", "code", IndexKind::BTree)).unwrap();
        cars.create_index(IndexDef::new("cars_type", "cartype", IndexKind::Hash)).unwrap();
        db
    }

    fn run_stats(db: &Database, sql: &str) -> (ResultSet, AccessStats) {
        let sel = parse_select(sql);
        let stats = AccessStats::default();
        let rs = execute_select_stats(db, &sel, &[], &stats).unwrap();
        (rs, stats)
    }

    #[test]
    fn point_probe_uses_index_and_matches_scan() {
        let db = indexed_avis();
        for sql in [
            "SELECT code, rate FROM cars WHERE code = 3",
            "SELECT code FROM cars WHERE 3 = code",
            "SELECT code FROM cars WHERE cartype = 'sedan'",
            "SELECT code FROM cars WHERE code = 2.0",
        ] {
            let sel = parse_select(sql);
            let fast = execute_select_with(&db, &sel, &[], true).unwrap();
            let slow = execute_select_with(&db, &sel, &[], false).unwrap();
            assert_eq!(fast.rows, slow.rows, "{sql}");
            let (_, stats) = run_stats(&db, sql);
            assert!(stats.probed.get(), "{sql} should probe");
            assert!(stats.rows_scanned.get() < 4, "{sql} should not scan the whole table");
        }
    }

    #[test]
    fn in_and_range_probes_match_scan() {
        let db = indexed_avis();
        for sql in [
            "SELECT code FROM cars WHERE code IN (1, 3, 99)",
            "SELECT code FROM cars WHERE code > 2",
            "SELECT code FROM cars WHERE code >= 2 AND code < 4",
            "SELECT code FROM cars WHERE code BETWEEN 2 AND 3",
            "SELECT code FROM cars WHERE 3 <= code",
        ] {
            let sel = parse_select(sql);
            let fast = execute_select_with(&db, &sel, &[], true).unwrap();
            let slow = execute_select_with(&db, &sel, &[], false).unwrap();
            assert_eq!(fast.rows, slow.rows, "{sql}");
            let (_, stats) = run_stats(&db, sql);
            assert!(stats.probed.get(), "{sql} should probe");
        }
    }

    #[test]
    fn probe_keeps_residual_conjuncts() {
        let db = indexed_avis();
        // The probe on `code` over-selects relative to the full predicate;
        // the residual WHERE re-check must still filter.
        let (rs, stats) =
            run_stats(&db, "SELECT code FROM cars WHERE code IN (1, 2, 3) AND carst = 'available'");
        assert!(stats.probed.get());
        let codes: Vec<_> = rs.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(codes, vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn null_and_impossible_probes_select_nothing() {
        let db = indexed_avis();
        for sql in [
            "SELECT code FROM cars WHERE code = NULL",
            "SELECT code FROM cars WHERE code > NULL",
            "SELECT code FROM cars WHERE code > 3 AND code < 2",
        ] {
            let sel = parse_select(sql);
            let fast = execute_select_with(&db, &sel, &[], true).unwrap();
            let slow = execute_select_with(&db, &sel, &[], false).unwrap();
            assert_eq!(fast.rows, slow.rows, "{sql}");
            assert!(fast.rows.is_empty(), "{sql}");
        }
    }

    #[test]
    fn unindexed_or_unsargable_predicates_fall_back_to_scan() {
        let db = indexed_avis();
        for sql in [
            "SELECT code FROM cars WHERE rate = 25.0", // no index on rate
            "SELECT code FROM cars WHERE cartype > 'a'", // hash index cannot range
            "SELECT code FROM cars WHERE code = 1 OR code = 2", // disjunction
            "SELECT code FROM cars WHERE code NOT IN (1, 2)", // negated
        ] {
            let (_, stats) = run_stats(&db, sql);
            assert!(!stats.probed.get(), "{sql} must scan");
            assert_eq!(stats.rows_scanned.get(), 4, "{sql}");
        }
    }

    #[test]
    fn index_feeds_join_build_side() {
        let db = indexed_avis();
        let sql = "SELECT cars.code, client FROM cars, rentals WHERE cars.code = rentals.code";
        let sel = parse_select(sql);
        let fast = execute_select_with(&db, &sel, &[], true).unwrap();
        let slow = execute_select_with(&db, &sel, &[], false).unwrap();
        assert_eq!(fast.rows, slow.rows);
        let (_, stats) = run_stats(&db, sql);
        assert!(stats.probed.get(), "join build side should come from the index");
        assert_eq!(stats.index_hits.get(), 1);
    }

    #[test]
    fn index_join_respects_sarg_reduced_source() {
        let db = indexed_avis();
        // The sarg probe shrinks `cars` to code=1 before the join feed; the
        // index still covers the whole table, so the join must filter its
        // hits through the reduced source (code=2 would otherwise match).
        let sql = "SELECT cars.code, client FROM cars, rentals \
                   WHERE cars.code = rentals.code AND cars.code = 1";
        let sel = parse_select(sql);
        let fast = execute_select_with(&db, &sel, &[], true).unwrap();
        let slow = execute_select_with(&db, &sel, &[], false).unwrap();
        assert_eq!(fast.rows, slow.rows);
        assert!(fast.rows.is_empty());
    }

    #[test]
    fn ndv_pricing_skips_low_cardinality_probes() {
        let mut db = indexed_avis();
        let cars = db.table_mut("cars").unwrap();
        cars.create_index(IndexDef::new("cars_st", "carst", IndexKind::Hash)).unwrap();
        cars.analyze();
        // carst has 2 distinct values over 4 rows: an equality probe expects
        // half the table, so it is priced out in favour of the scan.
        let (rs, stats) = run_stats(&db, "SELECT code FROM cars WHERE carst = 'available'");
        assert_eq!(rs.rows.len(), 3);
        assert!(!stats.probed.get(), "low-NDV equality must scan once analyzed");
        // code is unique: the probe stays the cheaper path.
        let (_, stats) = run_stats(&db, "SELECT code FROM cars WHERE code = 3");
        assert!(stats.probed.get(), "high-NDV equality still probes");
        // An IN list covering 3 of the 4 distinct keys is priced out too.
        let (rs, stats) = run_stats(&db, "SELECT code FROM cars WHERE code IN (1, 2, 3)");
        assert_eq!(rs.rows.len(), 3);
        assert!(!stats.probed.get(), "wide IN must scan once analyzed");
    }

    #[test]
    fn probe_preserves_id_order_and_counts() {
        let db = indexed_avis();
        let (rs, stats) = run_stats(&db, "SELECT code FROM cars WHERE code IN (3, 1)");
        // Candidates come back in id order regardless of probe value order.
        let codes: Vec<_> = rs.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(codes, vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(stats.index_hits.get(), 2);
        assert_eq!(stats.rows_scanned.get(), 2);
    }
}
