//! SELECT execution: joins, filtering, aggregation, sorting, projection.
//!
//! The executor is an iterate-and-filter engine (SQL-89 style implicit
//! joins, as in all of the paper's examples). Aggregates are computed per
//! group and *substituted* into the projection/HAVING/ORDER BY expressions
//! as literals, after which the ordinary row evaluator finishes the job —
//! this keeps a single evaluator implementation.
//!
//! Two-table queries whose WHERE contains an equality conjunct between the
//! two FROM bindings skip the cross product: a hash table is built on the
//! smaller side and probed with the larger, so only key-matched pairs reach
//! the (unchanged) full-WHERE filter. The paper's coordinator evaluates the
//! modified global query Q' over shipped partials exactly this way, turning
//! its cost from O(|R|·|S|) into O(|R|+|S|+matches).

use crate::engine::{ColumnMeta, Database, ResultSet};
use crate::error::DbError;
use crate::eval::{literal_value, value_literal, Binding, Env, Evaluator, SubqueryCache};
use crate::schema::TableSchema;
use crate::table::Row;
use crate::value::{DataType, Value};
use msql_lang::printer::print_expr;
use msql_lang::{AggregateKind, Expr, OrderByItem, Select, SelectItem, SortOrder, TableRef};
use std::cmp::Ordering;

/// Executes a SELECT against `db`. `outer` carries the binding scopes of
/// enclosing query blocks (for correlated subqueries); top-level queries pass
/// an empty slice.
pub fn execute_select(
    db: &Database,
    sel: &Select,
    outer: &[&Env<'_>],
) -> Result<ResultSet, DbError> {
    execute_select_with(db, sel, outer, true)
}

/// [`execute_select`] with the hash equi-join fast path toggleable.
/// `hash_join = false` forces the naive cross-product enumeration — the
/// reference semantics the property tests compare the fast path against.
pub fn execute_select_with(
    db: &Database,
    sel: &Select,
    outer: &[&Env<'_>],
    hash_join: bool,
) -> Result<ResultSet, DbError> {
    // Statement-scoped cache for uncorrelated scalar subqueries.
    let subq_cache = SubqueryCache::new();
    // Resolve FROM tables.
    let mut sources: Vec<(&TableSchema, Vec<&Row>, String)> = Vec::with_capacity(sel.from.len());
    for tref in &sel.from {
        let table = resolve_table(db, tref)?;
        let binding = tref.binding_name().to_ascii_lowercase();
        if sources.iter().any(|(_, _, b)| *b == binding) {
            return Err(DbError::AmbiguousColumn(format!("duplicate FROM binding `{binding}`")));
        }
        sources.push((&table.schema, table.iter().map(|(_, r)| r).collect(), binding));
    }

    // Enumerate the cross product, filter by WHERE. An empty FROM clause
    // (e.g. `SELECT 1`) contributes exactly one empty combination; an empty
    // table anywhere makes the product empty.
    let mut combos: Vec<Vec<&Row>> = Vec::new();
    let keep_combo = |combo: &Vec<&Row>| -> Result<bool, DbError> {
        match &sel.where_clause {
            None => Ok(true),
            Some(pred) => {
                let env = make_env(&sources, combo);
                let ev = evaluator(db, outer, &env, &subq_cache);
                Ok(ev.eval(pred)?.as_truth()? == Some(true))
            }
        }
    };
    if sources.is_empty() {
        let combo = Vec::new();
        if keep_combo(&combo)? {
            combos.push(combo);
        }
    } else if sources.iter().all(|(_, rows, _)| !rows.is_empty()) {
        let equi =
            if hash_join && sources.len() == 2 { equi_key_columns(sel, &sources) } else { vec![] };
        if !equi.is_empty() {
            // Hash equi-join: pair only key-matched rows, then apply the
            // full WHERE unchanged, so the result is exactly the filtered
            // cross product (any pair the hash pruned had an unequal or
            // NULL key, which already falsifies an AND-ed equality).
            for (li, ri) in hash_join_matches(&sources[0].1, &sources[1].1, &equi) {
                let combo = vec![sources[0].1[li], sources[1].1[ri]];
                if keep_combo(&combo)? {
                    combos.push(combo);
                }
            }
        } else {
            let mut idx = vec![0usize; sources.len()];
            'product: loop {
                let combo: Vec<&Row> =
                    sources.iter().zip(&idx).map(|((_, rows, _), i)| rows[*i]).collect();
                if keep_combo(&combo)? {
                    combos.push(combo);
                }
                // Advance the odometer, rightmost position fastest.
                let mut k = sources.len() - 1;
                loop {
                    idx[k] += 1;
                    if idx[k] < sources[k].1.len() {
                        break;
                    }
                    idx[k] = 0;
                    if k == 0 {
                        break 'product;
                    }
                    k -= 1;
                }
            }
        }
    }

    let aggregate_mode = !sel.group_by.is_empty()
        || sel.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || sel.having.as_ref().map(Expr::contains_aggregate).unwrap_or(false);

    let (mut names, mut rows, order_keys) = if aggregate_mode {
        run_aggregate(db, sel, outer, &sources, combos, &subq_cache)?
    } else {
        run_rowwise(db, sel, outer, &sources, combos, &subq_cache)?
    };

    // ORDER BY: keys were computed alongside each output row.
    if !sel.order_by.is_empty() {
        let mut perm: Vec<usize> = (0..rows.len()).collect();
        perm.sort_by(|&a, &b| compare_keys(&order_keys[a], &order_keys[b], &sel.order_by));
        rows = perm.iter().map(|&i| rows[i].clone()).collect();
    }

    // DISTINCT: stable dedup via sorted view.
    if sel.distinct {
        let mut seen: Vec<Row> = Vec::new();
        rows.retain(|r| {
            if seen.iter().any(|s| rows_equal(s, r)) {
                false
            } else {
                seen.push(r.clone());
                true
            }
        });
    }

    // Column metadata: static inference refined by the first non-null value.
    let columns = build_column_meta(&mut names, &sources, sel, &rows);
    Ok(ResultSet { columns, rows })
}

fn resolve_table<'a>(
    db: &'a Database,
    tref: &TableRef,
) -> Result<&'a crate::table::Table, DbError> {
    if tref.table.is_multiple() || tref.database.as_ref().map(|d| d.is_multiple()).unwrap_or(false)
    {
        return Err(DbError::NotLocalSql(format!(
            "table reference `{}` still contains a wildcard",
            tref.table
        )));
    }
    if let Some(d) = &tref.database {
        if d.as_str() != db.name {
            return Err(DbError::NotLocalSql(format!(
                "reference to remote database `{d}` inside local SQL"
            )));
        }
    }
    db.table(tref.table.as_str())
}

fn make_env<'a>(
    sources: &'a [(&'a TableSchema, Vec<&'a Row>, String)],
    combo: &[&'a Row],
) -> Env<'a> {
    Env {
        bindings: sources
            .iter()
            .zip(combo)
            .map(|((schema, _, binding), row)| Binding { name: binding.clone(), schema, row })
            .collect(),
    }
}

fn evaluator<'a>(
    db: &'a Database,
    outer: &[&'a Env<'a>],
    env: &'a Env<'a>,
    cache: &'a SubqueryCache,
) -> Evaluator<'a> {
    let mut scopes: Vec<&Env> = outer.to_vec();
    scopes.push(env);
    Evaluator { db, scopes, cache: Some(cache) }
}

/// Equality conjuncts of the WHERE tree joining source 0 to source 1,
/// as `(left column index, right column index)` pairs. Only column = column
/// conjuncts whose sides resolve — by the evaluator's own rules — to the two
/// different FROM bindings qualify; anything unresolvable or ambiguous is
/// left for the evaluator (the caller falls back to the cross product).
fn equi_key_columns(
    sel: &Select,
    sources: &[(&TableSchema, Vec<&Row>, String)],
) -> Vec<(usize, usize)> {
    fn walk(
        e: &Expr,
        sources: &[(&TableSchema, Vec<&Row>, String)],
        keys: &mut Vec<(usize, usize)>,
    ) {
        match e {
            Expr::Binary { left, op: msql_lang::BinaryOp::And, right } => {
                walk(left, sources, keys);
                walk(right, sources, keys);
            }
            Expr::Binary { left, op: msql_lang::BinaryOp::Eq, right } => {
                if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) {
                    match (resolve_key_column(a, sources), resolve_key_column(b, sources)) {
                        (Some((0, ca)), Some((1, cb))) => keys.push((ca, cb)),
                        (Some((1, ca)), Some((0, cb))) => keys.push((cb, ca)),
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    let mut keys = Vec::new();
    if let Some(w) = &sel.where_clause {
        walk(w, sources, &mut keys);
    }
    keys
}

/// Resolves a column reference to `(source index, column index)` exactly the
/// way [`Env::lookup`] would: a qualifier matches the first binding by name
/// or schema name; an unqualified column must be unique across the sources.
/// `None` means "not cleanly ours" — possibly outer-correlated, ambiguous,
/// or unknown — and disqualifies the conjunct from key duty.
fn resolve_key_column(
    c: &msql_lang::ColumnRef,
    sources: &[(&TableSchema, Vec<&Row>, String)],
) -> Option<(usize, usize)> {
    if c.is_multiple() || c.database.is_some() {
        return None;
    }
    let column = c.column.as_str();
    match c.table.as_ref().map(|t| t.as_str()) {
        Some(t) => {
            let si =
                sources.iter().position(|(schema, _, binding)| binding == t || schema.name == t)?;
            let ci = sources[si].0.column_index(column)?;
            Some((si, ci))
        }
        None => {
            let mut found = None;
            for (si, (schema, _, _)) in sources.iter().enumerate() {
                if let Some(ci) = schema.column_index(column) {
                    if found.is_some() {
                        return None;
                    }
                    found = Some((si, ci));
                }
            }
            found
        }
    }
}

/// Hashable stand-in for a join-key value. SQL equality crosses the
/// Int/Float divide (`2 = 2.0`), so both map onto canonical `f64` bits —
/// equal values always share a bucket; rare bit-collisions between unequal
/// values (integers beyond 2^53) are resolved by the exact sub-bucket check.
#[derive(PartialEq, Eq, Hash)]
enum HashKey {
    Num(u64),
    Str(String),
    Bool(bool),
}

/// `None` for values that can never satisfy an equality (NULL, NaN): rows
/// keyed by them are skipped on both sides.
fn hash_key(v: &Value) -> Option<HashKey> {
    fn bits(f: f64) -> u64 {
        // -0.0 == 0.0 in SQL; collapse to one bucket.
        if f == 0.0 {
            0.0f64.to_bits()
        } else {
            f.to_bits()
        }
    }
    match v {
        Value::Null => None,
        Value::Int(i) => Some(HashKey::Num(bits(*i as f64))),
        Value::Float(f) if f.is_nan() => None,
        Value::Float(f) => Some(HashKey::Num(bits(*f))),
        Value::Str(s) => Some(HashKey::Str(s.clone())),
        Value::Bool(b) => Some(HashKey::Bool(*b)),
    }
}

fn key_of(row: &Row, cols: &[usize]) -> Option<(Vec<HashKey>, Vec<Value>)> {
    let mut hashed = Vec::with_capacity(cols.len());
    let mut exact = Vec::with_capacity(cols.len());
    for &c in cols {
        hashed.push(hash_key(&row[c])?);
        exact.push(row[c].clone());
    }
    Some((hashed, exact))
}

fn keys_sql_equal(a: &[Value], b: &[Value]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.sql_cmp(y) == Some(Ordering::Equal))
}

/// Builds a hash table on the smaller side, probes with the larger, and
/// returns matched `(left index, right index)` pairs sorted left-major —
/// the exact order the odometer would have visited them in.
fn hash_join_matches(
    left: &[&Row],
    right: &[&Row],
    keys: &[(usize, usize)],
) -> Vec<(usize, usize)> {
    let build_left = left.len() <= right.len();
    let (build, probe): (&[&Row], &[&Row]) = if build_left { (left, right) } else { (right, left) };
    let (build_cols, probe_cols): (Vec<usize>, Vec<usize>) = if build_left {
        (keys.iter().map(|k| k.0).collect(), keys.iter().map(|k| k.1).collect())
    } else {
        (keys.iter().map(|k| k.1).collect(), keys.iter().map(|k| k.0).collect())
    };
    // Bucket → sub-buckets of exactly-equal keys (hash collisions resolved
    // by sql_cmp, which is the equality the pruned conjuncts would apply).
    type KeyBuckets = std::collections::HashMap<Vec<HashKey>, Vec<(Vec<Value>, Vec<usize>)>>;
    let mut table = KeyBuckets::new();
    for (i, row) in build.iter().enumerate() {
        let Some((hashed, exact)) = key_of(row, &build_cols) else { continue };
        let buckets = table.entry(hashed).or_default();
        match buckets.iter_mut().find(|(k, _)| keys_sql_equal(k, &exact)) {
            Some((_, members)) => members.push(i),
            None => buckets.push((exact, vec![i])),
        }
    }
    let mut matches = Vec::new();
    for (j, row) in probe.iter().enumerate() {
        let Some((hashed, exact)) = key_of(row, &probe_cols) else { continue };
        let Some(buckets) = table.get(&hashed) else { continue };
        if let Some((_, members)) = buckets.iter().find(|(k, _)| keys_sql_equal(k, &exact)) {
            for &i in members {
                matches.push(if build_left { (i, j) } else { (j, i) });
            }
        }
    }
    matches.sort_unstable();
    matches
}

/// Expands `*` / `t.*` items into concrete column expressions, returning
/// `(display name, expr-or-direct-index)` pairs.
enum ProjItem {
    /// Evaluate this expression.
    Expr { expr: Expr, name: String },
    /// Copy the column directly from a binding (for wildcards).
    Direct { source: usize, column: usize, name: String },
}

fn expand_items(
    sel: &Select,
    sources: &[(&TableSchema, Vec<&Row>, String)],
) -> Result<Vec<ProjItem>, DbError> {
    let mut out = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for (si, (schema, _, _)) in sources.iter().enumerate() {
                    for (ci, col) in schema.columns.iter().enumerate() {
                        out.push(ProjItem::Direct {
                            source: si,
                            column: ci,
                            name: col.name.clone(),
                        });
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let target = t.as_str();
                let si = sources
                    .iter()
                    .position(|(schema, _, binding)| binding == target || schema.name == target)
                    .ok_or_else(|| DbError::UnknownTable(target.to_string()))?;
                for (ci, col) in sources[si].0.columns.iter().enumerate() {
                    out.push(ProjItem::Direct { source: si, column: ci, name: col.name.clone() });
                }
            }
            SelectItem::Expr { expr, alias, .. } => {
                let name = alias.clone().unwrap_or_else(|| derive_name(expr));
                out.push(ProjItem::Expr { expr: expr.clone(), name });
            }
        }
    }
    Ok(out)
}

fn derive_name(expr: &Expr) -> String {
    match expr {
        Expr::Column(c) => c.column.as_str().to_string(),
        Expr::Aggregate { kind, .. } => kind.name().to_ascii_lowercase(),
        other => print_expr(other),
    }
}

type RowsAndKeys = (Vec<String>, Vec<Row>, Vec<Vec<Value>>);

fn run_rowwise(
    db: &Database,
    sel: &Select,
    outer: &[&Env<'_>],
    sources: &[(&TableSchema, Vec<&Row>, String)],
    combos: Vec<Vec<&Row>>,
    subq_cache: &SubqueryCache,
) -> Result<RowsAndKeys, DbError> {
    let items = expand_items(sel, sources)?;
    let names: Vec<String> = items
        .iter()
        .map(|i| match i {
            ProjItem::Expr { name, .. } | ProjItem::Direct { name, .. } => name.clone(),
        })
        .collect();
    let mut rows = Vec::with_capacity(combos.len());
    let mut keys = Vec::with_capacity(combos.len());
    for combo in combos {
        let env = make_env(sources, &combo);
        let ev = evaluator(db, outer, &env, subq_cache);
        let mut row = Vec::with_capacity(items.len());
        for item in &items {
            match item {
                ProjItem::Expr { expr, .. } => row.push(ev.eval(expr)?),
                ProjItem::Direct { source, column, .. } => {
                    row.push(combo[*source][*column].clone())
                }
            }
        }
        let mut key = Vec::with_capacity(sel.order_by.len());
        for o in &sel.order_by {
            key.push(ev.eval(&o.expr)?);
        }
        rows.push(row);
        keys.push(key);
    }
    Ok((names, rows, keys))
}

fn run_aggregate(
    db: &Database,
    sel: &Select,
    outer: &[&Env<'_>],
    sources: &[(&TableSchema, Vec<&Row>, String)],
    combos: Vec<Vec<&Row>>,
    subq_cache: &SubqueryCache,
) -> Result<RowsAndKeys, DbError> {
    for item in &sel.items {
        if matches!(item, SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)) {
            return Err(DbError::TypeError(
                "`*` projection cannot be combined with aggregation".into(),
            ));
        }
    }

    // Group combos by the GROUP BY key.
    let mut groups: Vec<(Vec<Value>, Vec<Vec<&Row>>)> = Vec::new();
    for combo in combos {
        let env = make_env(sources, &combo);
        let ev = evaluator(db, outer, &env, subq_cache);
        let mut key = Vec::with_capacity(sel.group_by.len());
        for g in &sel.group_by {
            key.push(ev.eval(g)?);
        }
        match groups.iter_mut().find(|(k, _)| keys_equal(k, &key)) {
            Some((_, members)) => members.push(combo),
            None => groups.push((key, vec![combo])),
        }
    }
    // A global aggregate over an empty input still produces one row.
    if groups.is_empty() && sel.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let names: Vec<String> = sel
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Expr { expr, alias, .. } => {
                alias.clone().unwrap_or_else(|| derive_name(expr))
            }
            _ => unreachable!("wildcards rejected above"),
        })
        .collect();

    let mut rows = Vec::new();
    let mut keys = Vec::new();
    for (_, members) in &groups {
        // HAVING.
        if let Some(h) = &sel.having {
            let hv = eval_group_expr(db, sel, outer, sources, members, h, subq_cache)?;
            if hv.as_truth()? != Some(true) {
                continue;
            }
        }
        let mut row = Vec::with_capacity(sel.items.len());
        for item in &sel.items {
            let SelectItem::Expr { expr, .. } = item else { unreachable!() };
            row.push(eval_group_expr(db, sel, outer, sources, members, expr, subq_cache)?);
        }
        let mut key = Vec::with_capacity(sel.order_by.len());
        for o in &sel.order_by {
            key.push(eval_group_expr(db, sel, outer, sources, members, &o.expr, subq_cache)?);
        }
        rows.push(row);
        keys.push(key);
    }
    Ok((names, rows, keys))
}

/// Evaluates an expression over one group: aggregate subexpressions are
/// computed over the group's rows and substituted as literals, then the
/// rewritten expression is evaluated on the group's first row (or no row for
/// an empty global group).
fn eval_group_expr(
    db: &Database,
    _sel: &Select,
    outer: &[&Env<'_>],
    sources: &[(&TableSchema, Vec<&Row>, String)],
    members: &[Vec<&Row>],
    expr: &Expr,
    subq_cache: &SubqueryCache,
) -> Result<Value, DbError> {
    let rewritten = substitute_aggregates(expr, &mut |kind, arg, distinct| {
        compute_aggregate(db, outer, sources, members, kind, arg, distinct, subq_cache)
    })?;
    if let Some(first) = members.first() {
        let env = make_env(sources, first);
        let ev = evaluator(db, outer, &env, subq_cache);
        ev.eval(&rewritten)
    } else {
        let env = Env::default();
        let ev = evaluator(db, outer, &env, subq_cache);
        ev.eval(&rewritten)
    }
}

fn substitute_aggregates(
    expr: &Expr,
    compute: &mut impl FnMut(AggregateKind, Option<&Expr>, bool) -> Result<Value, DbError>,
) -> Result<Expr, DbError> {
    Ok(match expr {
        Expr::Aggregate { kind, arg, distinct } => {
            let v = compute(*kind, arg.as_deref(), *distinct)?;
            Expr::Literal(value_literal(&v))
        }
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(substitute_aggregates(expr, compute)?) }
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(substitute_aggregates(left, compute)?),
            op: *op,
            right: Box::new(substitute_aggregates(right, compute)?),
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute_aggregates(a, compute))
                .collect::<Result<_, _>>()?,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(substitute_aggregates(expr, compute)?),
            list: list
                .iter()
                .map(|a| substitute_aggregates(a, compute))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(substitute_aggregates(expr, compute)?),
            low: Box::new(substitute_aggregates(low, compute)?),
            high: Box::new(substitute_aggregates(high, compute)?),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(substitute_aggregates(expr, compute)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(substitute_aggregates(expr, compute)?),
            pattern: Box::new(substitute_aggregates(pattern, compute)?),
            negated: *negated,
        },
        other => other.clone(),
    })
}

#[allow(clippy::too_many_arguments)]
fn compute_aggregate(
    db: &Database,
    outer: &[&Env<'_>],
    sources: &[(&TableSchema, Vec<&Row>, String)],
    members: &[Vec<&Row>],
    kind: AggregateKind,
    arg: Option<&Expr>,
    distinct: bool,
    subq_cache: &SubqueryCache,
) -> Result<Value, DbError> {
    // COUNT(*) counts group members.
    let Some(arg) = arg else {
        return Ok(Value::Int(members.len() as i64));
    };
    let mut values = Vec::with_capacity(members.len());
    for combo in members {
        let env = make_env(sources, combo);
        let ev = evaluator(db, outer, &env, subq_cache);
        let v = ev.eval(arg)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut unique: Vec<Value> = Vec::new();
        for v in values {
            if !unique.iter().any(|u| u.sql_cmp(&v) == Some(Ordering::Equal)) {
                unique.push(v);
            }
        }
        values = unique;
    }
    match kind {
        AggregateKind::Count => Ok(Value::Int(values.len() as i64)),
        AggregateKind::Min => {
            Ok(values.into_iter().min_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null))
        }
        AggregateKind::Max => {
            Ok(values.into_iter().max_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null))
        }
        AggregateKind::Sum | AggregateKind::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let n = values.len();
            let mut acc = Value::Int(0);
            for v in values {
                acc = acc.add(&v)?;
            }
            if kind == AggregateKind::Sum {
                Ok(acc)
            } else {
                acc.div(&Value::Int(n as i64))
            }
        }
    }
}

fn keys_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.total_cmp(y) == Ordering::Equal)
}

fn rows_equal(a: &Row, b: &Row) -> bool {
    keys_equal(a, b)
}

fn compare_keys(a: &[Value], b: &[Value], order: &[OrderByItem]) -> Ordering {
    for (i, o) in order.iter().enumerate() {
        let cmp = a[i].total_cmp(&b[i]);
        let cmp = if o.order == SortOrder::Desc { cmp.reverse() } else { cmp };
        if cmp != Ordering::Equal {
            return cmp;
        }
    }
    Ordering::Equal
}

/// Static type inference with dynamic refinement from the produced rows.
fn build_column_meta(
    names: &mut Vec<String>,
    sources: &[(&TableSchema, Vec<&Row>, String)],
    sel: &Select,
    rows: &[Row],
) -> Vec<ColumnMeta> {
    // Static guesses per output column, where derivable from the AST.
    let mut static_types: Vec<Option<DataType>> = Vec::new();
    let mut expanded_names: Vec<String> = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for (schema, _, _) in sources {
                    for c in &schema.columns {
                        static_types.push(Some(c.data_type));
                        expanded_names.push(c.name.clone());
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                for (schema, _, binding) in sources {
                    if binding == t.as_str() || schema.name == t.as_str() {
                        for c in &schema.columns {
                            static_types.push(Some(c.data_type));
                            expanded_names.push(c.name.clone());
                        }
                    }
                }
            }
            SelectItem::Expr { expr, alias, .. } => {
                static_types.push(infer_type(expr, sources));
                expanded_names.push(alias.clone().unwrap_or_else(|| derive_name(expr)));
            }
        }
    }
    if expanded_names.len() == names.len() {
        *names = expanded_names;
    }
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let ty = static_types
                .get(i)
                .copied()
                .flatten()
                .or_else(|| rows.iter().find_map(|r| r.get(i).and_then(|v| v.data_type())))
                .unwrap_or(DataType::Char(0));
            ColumnMeta { name: name.clone(), data_type: ty }
        })
        .collect()
}

fn infer_type(expr: &Expr, sources: &[(&TableSchema, Vec<&Row>, String)]) -> Option<DataType> {
    match expr {
        Expr::Column(c) => {
            let table = c.table.as_ref().map(|t| t.as_str());
            for (schema, _, binding) in sources {
                if let Some(t) = table {
                    if binding != t && schema.name != t {
                        continue;
                    }
                }
                if let Ok(col) = schema.column(c.column.as_str()) {
                    return Some(col.data_type);
                }
            }
            None
        }
        Expr::Literal(l) => literal_value(l).data_type(),
        Expr::Aggregate { kind: AggregateKind::Count, .. } => Some(DataType::Int),
        Expr::Aggregate { kind: AggregateKind::Avg, .. } => Some(DataType::Float),
        Expr::Aggregate { arg: Some(a), .. } => infer_type(a, sources),
        Expr::Binary { left, op, right } => match op {
            op if op.is_comparison() => Some(DataType::Bool),
            msql_lang::BinaryOp::And | msql_lang::BinaryOp::Or => Some(DataType::Bool),
            msql_lang::BinaryOp::Concat => Some(DataType::Char(0)),
            msql_lang::BinaryOp::Div => Some(DataType::Float),
            _ => match (infer_type(left, sources), infer_type(right, sources)) {
                (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
                (Some(_), Some(_)) => Some(DataType::Float),
                _ => None,
            },
        },
        Expr::Unary { op, expr } => match op {
            msql_lang::UnaryOp::Neg => infer_type(expr, sources),
            msql_lang::UnaryOp::Not => Some(DataType::Bool),
        },
        Expr::IsNull { .. }
        | Expr::Like { .. }
        | Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Exists { .. } => Some(DataType::Bool),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;
    use crate::schema::ColumnSchema;
    use crate::table::Table;
    use msql_lang::parse_statement;

    fn avis() -> Database {
        let mut db = Database::new("avis");
        let mut cars = Table::new(TableSchema::new(
            "cars",
            vec![
                ColumnSchema::new("code", DataType::Int),
                ColumnSchema::new("cartype", DataType::Char(16)),
                ColumnSchema::new("rate", DataType::Float),
                ColumnSchema::new("carst", DataType::Char(10)),
            ],
        ));
        for (code, ty, rate, st) in [
            (1, "sedan", 39.5, "available"),
            (2, "suv", 59.0, "rented"),
            (3, "sedan", 35.0, "available"),
            (4, "compact", 25.0, "available"),
        ] {
            cars.insert(vec![
                Value::Int(code),
                Value::Str(ty.into()),
                Value::Float(rate),
                Value::Str(st.into()),
            ])
            .unwrap();
        }
        let mut rentals = Table::new(TableSchema::new(
            "rentals",
            vec![
                ColumnSchema::new("code", DataType::Int),
                ColumnSchema::new("client", DataType::Char(20)),
            ],
        ));
        rentals.insert(vec![Value::Int(2), Value::Str("wenders".into())]).unwrap();
        db.insert_table(cars);
        db.insert_table(rentals);
        db
    }

    fn select(db: &Database, sql: &str) -> ResultSet {
        let stmt = parse_statement(sql).unwrap();
        let msql_lang::Statement::Query(q) = stmt else { panic!() };
        let msql_lang::QueryBody::Select(sel) = q.body else { panic!() };
        execute_select(db, &sel, &[]).unwrap()
    }

    #[test]
    fn simple_filter_and_projection() {
        let db = avis();
        let rs = select(&db, "SELECT code, rate FROM cars WHERE carst = 'available'");
        assert_eq!(rs.columns.len(), 2);
        assert_eq!(rs.columns[0].name, "code");
        assert_eq!(rs.columns[1].data_type, DataType::Float);
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn star_projection() {
        let db = avis();
        let rs = select(&db, "SELECT * FROM cars");
        assert_eq!(rs.columns.len(), 4);
        assert_eq!(rs.rows.len(), 4);
        assert_eq!(rs.columns[1].name, "cartype");
    }

    #[test]
    fn cross_join_with_predicate() {
        let db = avis();
        let rs = select(
            &db,
            "SELECT cars.code, client FROM cars, rentals WHERE cars.code = rentals.code",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Str("wenders".into()));
    }

    #[test]
    fn order_by_desc_and_asc() {
        let db = avis();
        let rs = select(&db, "SELECT code FROM cars ORDER BY rate DESC, code");
        let codes: Vec<_> = rs.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(codes, vec![Value::Int(2), Value::Int(1), Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn distinct_dedups() {
        let db = avis();
        let rs = select(&db, "SELECT DISTINCT cartype FROM cars");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn global_aggregates() {
        let db = avis();
        let rs =
            select(&db, "SELECT COUNT(*), MIN(rate), MAX(rate), AVG(rate), SUM(code) FROM cars");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(4));
        assert_eq!(rs.rows[0][1], Value::Float(25.0));
        assert_eq!(rs.rows[0][2], Value::Float(59.0));
        assert_eq!(rs.rows[0][4], Value::Int(10));
    }

    #[test]
    fn aggregate_on_empty_input_returns_one_row() {
        let db = avis();
        let rs = select(&db, "SELECT COUNT(*), MIN(rate) FROM cars WHERE code > 99");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert_eq!(rs.rows[0][1], Value::Null);
    }

    #[test]
    fn group_by_with_having() {
        let db = avis();
        let rs = select(
            &db,
            "SELECT cartype, COUNT(*) AS n FROM cars GROUP BY cartype HAVING COUNT(*) > 1",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("sedan".into()));
        assert_eq!(rs.rows[0][1], Value::Int(2));
        assert_eq!(rs.columns[1].name, "n");
    }

    #[test]
    fn scalar_subquery_in_where() {
        let db = avis();
        let rs = select(&db, "SELECT code FROM cars WHERE rate = (SELECT MIN(rate) FROM cars)");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(4));
    }

    #[test]
    fn paper_min_free_seat_pattern() {
        // The §3.4 reservation pattern: pick the row with the lowest key
        // among those in a given state.
        let db = avis();
        let rs = select(
            &db,
            "SELECT code FROM cars WHERE code = (SELECT MIN(code) FROM cars WHERE carst = 'available')",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(1));
    }

    #[test]
    fn correlated_subquery() {
        let db = avis();
        // Cars that appear in rentals (correlated EXISTS).
        let rs = select(
            &db,
            "SELECT code FROM cars WHERE EXISTS (SELECT 1 FROM rentals WHERE rentals.code = cars.code)",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(2));
    }

    #[test]
    fn in_subquery() {
        let db = avis();
        let rs = select(&db, "SELECT code FROM cars WHERE code NOT IN (SELECT code FROM rentals)");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn count_distinct() {
        let db = avis();
        let rs = select(&db, "SELECT COUNT(DISTINCT cartype) FROM cars");
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn empty_from_table_yields_no_rows() {
        let mut db = avis();
        db.insert_table(Table::new(TableSchema::new(
            "empty",
            vec![ColumnSchema::new("x", DataType::Int)],
        )));
        let rs = select(&db, "SELECT cars.code FROM cars, empty");
        assert_eq!(rs.rows.len(), 0);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = avis();
        let try_select = |sql: &str| {
            let stmt = parse_statement(sql).unwrap();
            let msql_lang::Statement::Query(q) = stmt else { panic!() };
            let msql_lang::QueryBody::Select(sel) = q.body else { panic!() };
            execute_select(&db, &sel, &[])
        };
        assert!(matches!(try_select("SELECT x FROM nonexistent"), Err(DbError::UnknownTable(_))));
        assert!(matches!(
            try_select("SELECT nonexistent FROM cars"),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn scalar_subquery_cardinality_error() {
        let db = avis();
        let stmt =
            parse_statement("SELECT code FROM cars WHERE rate = (SELECT rate FROM cars)").unwrap();
        let msql_lang::Statement::Query(q) = stmt else { panic!() };
        let msql_lang::QueryBody::Select(sel) = q.body else { panic!() };
        assert!(matches!(execute_select(&db, &sel, &[]), Err(DbError::SubqueryCardinality)));
    }

    #[test]
    fn table_alias_binding() {
        let db = avis();
        let rs = select(&db, "SELECT c.code FROM cars c WHERE c.carst = 'rented'");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(2));
    }

    fn parse_select(sql: &str) -> Select {
        let stmt = parse_statement(sql).unwrap();
        let msql_lang::Statement::Query(q) = stmt else { panic!() };
        let msql_lang::QueryBody::Select(sel) = q.body else { panic!() };
        sel
    }

    #[test]
    fn hash_join_matches_cross_product_semantics() {
        let mut db = avis();
        // Joins cars on rate with Int/Float type mixing and a NULL key.
        let mut quotes = Table::new(TableSchema::new(
            "quotes",
            vec![ColumnSchema::new("q", DataType::Int), ColumnSchema::new("rate", DataType::Float)],
        ));
        for (q, r) in [
            (1, Value::Int(59)),
            (2, Value::Float(25.0)),
            (3, Value::Null),
            (4, Value::Float(99.0)),
        ] {
            quotes.insert(vec![Value::Int(q), r]).unwrap();
        }
        db.insert_table(quotes);
        let sel =
            parse_select("SELECT cars.code, q FROM cars, quotes WHERE cars.rate = quotes.rate");
        let fast = execute_select_with(&db, &sel, &[], true).unwrap();
        let slow = execute_select_with(&db, &sel, &[], false).unwrap();
        assert_eq!(fast.rows, slow.rows, "hash path reproduces the cross product exactly");
        // Int 59 matched Float 59.0; the NULL key matched nothing.
        assert_eq!(fast.rows.len(), 2);
    }

    #[test]
    fn hash_join_keeps_residual_predicates() {
        let db = avis();
        let sel = parse_select(
            "SELECT cars.code FROM cars, rentals
             WHERE cars.code = rentals.code AND cars.rate > 1000",
        );
        let rs = execute_select(&db, &sel, &[]).unwrap();
        assert_eq!(rs.rows.len(), 0, "non-key conjuncts still filter the matches");
    }

    #[test]
    fn hash_join_preserves_enumeration_order() {
        let db = avis();
        let sel = parse_select(
            "SELECT cars.code, client FROM cars, rentals WHERE cars.code = rentals.code",
        );
        let fast = execute_select_with(&db, &sel, &[], true).unwrap();
        let slow = execute_select_with(&db, &sel, &[], false).unwrap();
        assert_eq!(fast.rows, slow.rows);
        assert_eq!(fast.columns, slow.columns);
    }

    #[test]
    fn qualified_star() {
        let db = avis();
        let rs = select(&db, "SELECT r.* FROM cars c, rentals r WHERE c.code = r.code");
        assert_eq!(rs.columns.len(), 2);
        assert_eq!(rs.columns[0].name, "code");
        assert_eq!(rs.columns[1].name, "client");
    }
}
