//! Local failure injection.
//!
//! §3.2: *"For some reasons (local conflicts, failure, deadlock, etc.) one or
//! more LDBMSs may be forced to abort their local subqueries."* The
//! multidatabase semantics (vital sets, compensation, acceptable states) only
//! become observable under such aborts, so the engine lets tests and
//! benchmarks inject them: deterministically (fail the next statement, fail
//! any statement touching a given table) or stochastically with a seeded RNG
//! (for failure-probability sweeps).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Failure injection policy for one engine.
#[derive(Debug)]
pub struct FailurePolicy {
    /// Probability that a DML statement aborts with a simulated local
    /// conflict.
    pub statement_abort_probability: f64,
    /// Probability that entering the prepared state fails.
    pub prepare_abort_probability: f64,
    /// Tables on which every write fails (simulated lock victim).
    fail_tables: HashSet<String>,
    /// Countdown: when `Some(0)` the next statement fails once.
    fail_after: Option<u32>,
    rng: StdRng,
}

impl FailurePolicy {
    /// A policy that never fails.
    pub fn none() -> Self {
        FailurePolicy {
            statement_abort_probability: 0.0,
            prepare_abort_probability: 0.0,
            fail_tables: HashSet::new(),
            fail_after: None,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// A seeded stochastic policy. Probabilities are clamped to [0, 1]; a
    /// value outside that range is a caller bug (debug builds assert).
    pub fn with_probabilities(seed: u64, statement_p: f64, prepare_p: f64) -> Self {
        debug_assert!(
            (0.0..=1.0).contains(&statement_p),
            "statement abort probability {statement_p} outside [0, 1]"
        );
        debug_assert!(
            (0.0..=1.0).contains(&prepare_p),
            "prepare abort probability {prepare_p} outside [0, 1]"
        );
        FailurePolicy {
            statement_abort_probability: statement_p.clamp(0.0, 1.0),
            prepare_abort_probability: prepare_p.clamp(0.0, 1.0),
            fail_tables: HashSet::new(),
            fail_after: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Arranges for every write to `table` to fail.
    pub fn fail_writes_to(&mut self, table: &str) {
        self.fail_tables.insert(table.to_ascii_lowercase());
    }

    /// Clears a per-table failure.
    pub fn heal_table(&mut self, table: &str) {
        self.fail_tables.remove(&table.to_ascii_lowercase());
    }

    /// Arranges for the statement `n` statements from now to fail once
    /// (`n = 0` fails the next statement).
    pub fn fail_statement_in(&mut self, n: u32) {
        self.fail_after = Some(n);
    }

    /// Consulted by the engine before each write statement. Returns the
    /// failure description when the statement must abort.
    pub fn check_statement(&mut self, table: &str) -> Option<String> {
        if self.fail_tables.contains(&table.to_ascii_lowercase()) {
            return Some(format!("simulated lock conflict on `{table}`"));
        }
        match self.fail_after {
            Some(0) => {
                self.fail_after = None;
                return Some("simulated deadlock victim".to_string());
            }
            Some(n) => self.fail_after = Some(n - 1),
            None => {}
        }
        if self.statement_abort_probability > 0.0
            && self.rng.gen_bool(self.statement_abort_probability.clamp(0.0, 1.0))
        {
            return Some("stochastic local abort".to_string());
        }
        None
    }

    /// Consulted when a transaction attempts to enter the prepared state.
    pub fn check_prepare(&mut self) -> Option<String> {
        if self.prepare_abort_probability > 0.0
            && self.rng.gen_bool(self.prepare_abort_probability.clamp(0.0, 1.0))
        {
            return Some("prepare failed (simulated crash before vote)".to_string());
        }
        None
    }
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let mut p = FailurePolicy::none();
        for _ in 0..100 {
            assert!(p.check_statement("t").is_none());
            assert!(p.check_prepare().is_none());
        }
    }

    #[test]
    fn fail_table_is_sticky_until_healed() {
        let mut p = FailurePolicy::none();
        p.fail_writes_to("Flights");
        assert!(p.check_statement("flights").is_some());
        assert!(p.check_statement("flights").is_some());
        assert!(p.check_statement("cars").is_none());
        p.heal_table("FLIGHTS");
        assert!(p.check_statement("flights").is_none());
    }

    #[test]
    fn fail_after_counts_down_and_fires_once() {
        let mut p = FailurePolicy::none();
        p.fail_statement_in(2);
        assert!(p.check_statement("t").is_none());
        assert!(p.check_statement("t").is_none());
        assert!(p.check_statement("t").is_some());
        assert!(p.check_statement("t").is_none());
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "out-of-range probabilities assert in debug builds")]
    fn out_of_range_probabilities_are_clamped() {
        let mut p = FailurePolicy::with_probabilities(1, 7.5, -3.0);
        assert_eq!(p.statement_abort_probability, 1.0);
        assert_eq!(p.prepare_abort_probability, 0.0);
        assert!(p.check_statement("t").is_some(), "clamped to certain failure");
        assert!(p.check_prepare().is_none(), "clamped to never");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_probability_asserts_in_debug() {
        let _ = FailurePolicy::with_probabilities(1, 1.5, 0.0);
    }

    #[test]
    fn probability_one_always_fails_and_is_deterministic_per_seed() {
        let mut p = FailurePolicy::with_probabilities(42, 1.0, 1.0);
        assert!(p.check_statement("t").is_some());
        assert!(p.check_prepare().is_some());

        // Same seed → same sequence of stochastic outcomes.
        let outcomes = |seed: u64| {
            let mut p = FailurePolicy::with_probabilities(seed, 0.5, 0.0);
            (0..32).map(|_| p.check_statement("t").is_some()).collect::<Vec<_>>()
        };
        assert_eq!(outcomes(7), outcomes(7));
    }
}
