//! Secondary indexes: per-column hash and B-tree access paths.
//!
//! An [`Index`] maps the [`CanonicalKey`] of one column to the sorted set of
//! row ids holding that key. Canonical keys collapse SQL-equal values onto
//! one key (`2 = 2.0`) but may also fold *distinct* values together (f64
//! collisions past 2^53), so every probe returns a **superset** of the
//! matching rows and the executor re-evaluates the original predicate on
//! each candidate. NULLs are never indexed — SQL equality and ranges never
//! select them.

use crate::schema::{IndexDef, IndexKind};
use crate::table::{Row, RowId};
use crate::value::{CanonicalKey, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// One bound of a range probe, in canonical-key space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyBound {
    /// No bound on this side.
    Unbounded,
    /// Keys `>=` (lower side) or `<=` (upper side) the given key. Probes
    /// always use inclusive bounds: strict predicates are widened and the
    /// residual re-check trims the edge.
    Inclusive(CanonicalKey),
}

/// The key → row-id map, in one of the two physical shapes.
#[derive(Debug, Clone)]
enum Store {
    Hash(HashMap<CanonicalKey, Vec<RowId>>),
    BTree(BTreeMap<CanonicalKey, Vec<RowId>>),
}

/// A single-column secondary index over a table's rows.
#[derive(Debug, Clone)]
pub struct Index {
    /// The index definition (name, column, kind).
    pub def: IndexDef,
    /// Position of the indexed column in the table schema.
    pub column_pos: usize,
    store: Store,
}

impl Index {
    /// Creates an empty index and bulk-loads it from `rows`.
    pub fn build<'a>(
        def: IndexDef,
        column_pos: usize,
        rows: impl Iterator<Item = (RowId, &'a Row)>,
    ) -> Self {
        let store = match def.kind {
            IndexKind::Hash => Store::Hash(HashMap::new()),
            IndexKind::BTree => Store::BTree(BTreeMap::new()),
        };
        let mut index = Index { def, column_pos, store };
        for (id, row) in rows {
            index.insert(id, row);
        }
        index
    }

    /// True when the index can answer ordered range probes.
    pub fn supports_range(&self) -> bool {
        matches!(self.def.kind, IndexKind::BTree)
    }

    /// Number of distinct keys (for tests and visibility).
    pub fn distinct_keys(&self) -> usize {
        match &self.store {
            Store::Hash(m) => m.len(),
            Store::BTree(m) => m.len(),
        }
    }

    /// Adds `row`'s key for row `id`. NULL/NaN keys are not indexed.
    pub fn insert(&mut self, id: RowId, row: &Row) {
        let Some(key) = row[self.column_pos].canonical_key() else { return };
        let ids = match &mut self.store {
            Store::Hash(m) => m.entry(key).or_default(),
            Store::BTree(m) => m.entry(key).or_default(),
        };
        if let Err(pos) = ids.binary_search(&id) {
            ids.insert(pos, id);
        }
    }

    /// Removes `row`'s key for row `id` (no-op for unindexed NULL keys).
    pub fn remove(&mut self, id: RowId, row: &Row) {
        let Some(key) = row[self.column_pos].canonical_key() else { return };
        let emptied = match &mut self.store {
            Store::Hash(m) => match m.get_mut(&key) {
                Some(ids) => {
                    if let Ok(pos) = ids.binary_search(&id) {
                        ids.remove(pos);
                    }
                    ids.is_empty()
                }
                None => false,
            },
            Store::BTree(m) => match m.get_mut(&key) {
                Some(ids) => {
                    if let Ok(pos) = ids.binary_search(&id) {
                        ids.remove(pos);
                    }
                    ids.is_empty()
                }
                None => false,
            },
        };
        if emptied {
            match &mut self.store {
                Store::Hash(m) => {
                    m.remove(&key);
                }
                Store::BTree(m) => {
                    m.remove(&key);
                }
            }
        }
    }

    /// Row ids whose key equals any of `values` (superset semantics; NULL
    /// probe values match nothing). Ids come back sorted and deduplicated.
    pub fn probe_eq(&self, values: &[Value]) -> Vec<RowId> {
        let mut out = Vec::new();
        for v in values {
            let Some(key) = v.canonical_key() else { continue };
            let ids = match &self.store {
                Store::Hash(m) => m.get(&key),
                Store::BTree(m) => m.get(&key),
            };
            if let Some(ids) = ids {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Row ids whose key falls within `[low, high]` (inclusive canonical
    /// bounds). Only meaningful on B-tree indexes; returns `None` when the
    /// index cannot serve ranges. Ids come back sorted.
    pub fn probe_range(&self, low: &KeyBound, high: &KeyBound) -> Option<Vec<RowId>> {
        let Store::BTree(m) = &self.store else { return None };
        let lo = match low {
            KeyBound::Unbounded => Bound::Unbounded,
            KeyBound::Inclusive(k) => Bound::Included(k.clone()),
        };
        let hi = match high {
            KeyBound::Unbounded => Bound::Unbounded,
            KeyBound::Inclusive(k) => Bound::Included(k.clone()),
        };
        // An inverted range (low > high) panics in BTreeMap::range; it also
        // matches nothing, so short-circuit it.
        if let (Bound::Included(a), Bound::Included(b)) = (&lo, &hi) {
            if a > b {
                return Some(Vec::new());
            }
        }
        let mut out = Vec::new();
        for ids in m.range((lo, hi)).map(|(_, ids)| ids) {
            out.extend_from_slice(ids);
        }
        out.sort_unstable();
        Some(out)
    }

    /// Row ids for one exact canonical key (the hash-join build feed).
    pub fn probe_key(&self, key: &CanonicalKey) -> &[RowId] {
        let ids = match &self.store {
            Store::Hash(m) => m.get(key),
            Store::BTree(m) => m.get(key),
        };
        ids.map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::IndexDef;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Float(10.0)],
            vec![Value::Int(2), Value::Float(20.0)],
            vec![Value::Float(2.0), Value::Float(21.0)],
            vec![Value::Null, Value::Float(30.0)],
            vec![Value::Int(5), Value::Null],
        ]
    }

    fn build(kind: IndexKind) -> Index {
        let rows = rows();
        Index::build(
            IndexDef::new("i", "k", kind),
            0,
            rows.iter().enumerate().map(|(i, r)| (i as RowId + 1, r)),
        )
    }

    #[test]
    fn eq_probe_crosses_int_float_and_skips_null() {
        for kind in [IndexKind::Hash, IndexKind::BTree] {
            let idx = build(kind);
            // 2 and 2.0 share a canonical key.
            assert_eq!(idx.probe_eq(&[Value::Int(2)]), vec![2, 3]);
            assert_eq!(idx.probe_eq(&[Value::Float(2.0)]), vec![2, 3]);
            // NULL probes match nothing; NULL cells are unindexed.
            assert_eq!(idx.probe_eq(&[Value::Null]), Vec::<RowId>::new());
            assert_eq!(idx.distinct_keys(), 3);
            // IN-style multi-value probe comes back sorted + deduped.
            assert_eq!(idx.probe_eq(&[Value::Int(5), Value::Int(1), Value::Int(1)]), vec![1, 5]);
        }
    }

    #[test]
    fn range_probe_is_btree_only() {
        let hash = build(IndexKind::Hash);
        assert_eq!(hash.probe_range(&KeyBound::Unbounded, &KeyBound::Unbounded), None);

        let btree = build(IndexKind::BTree);
        let lo = KeyBound::Inclusive(Value::Int(2).canonical_key().unwrap());
        let hi = KeyBound::Inclusive(Value::Int(5).canonical_key().unwrap());
        assert_eq!(btree.probe_range(&lo, &hi).unwrap(), vec![2, 3, 5]);
        assert_eq!(btree.probe_range(&KeyBound::Unbounded, &lo).unwrap(), vec![1, 2, 3]);
        assert_eq!(btree.probe_range(&hi, &KeyBound::Unbounded).unwrap(), vec![5]);
        // Inverted range matches nothing instead of panicking.
        assert_eq!(btree.probe_range(&hi, &lo).unwrap(), Vec::<RowId>::new());
    }

    #[test]
    fn maintenance_insert_remove() {
        let mut idx = build(IndexKind::BTree);
        let row = vec![Value::Int(2), Value::Float(22.0)];
        idx.insert(9, &row);
        assert_eq!(idx.probe_eq(&[Value::Int(2)]), vec![2, 3, 9]);
        idx.remove(2, &rows()[1]);
        assert_eq!(idx.probe_eq(&[Value::Int(2)]), vec![3, 9]);
        idx.remove(3, &rows()[2]);
        idx.remove(9, &row);
        assert_eq!(idx.probe_eq(&[Value::Int(2)]), Vec::<RowId>::new());
        assert_eq!(idx.distinct_keys(), 2);
        // Removing a NULL-keyed row is a no-op.
        idx.remove(4, &rows()[3]);
    }

    #[test]
    fn probe_key_feeds_joins() {
        let idx = build(IndexKind::Hash);
        let key = Value::Float(2.0).canonical_key().unwrap();
        assert_eq!(idx.probe_key(&key), &[2, 3]);
        let missing = Value::Int(42).canonical_key().unwrap();
        assert!(idx.probe_key(&missing).is_empty());
    }
}
