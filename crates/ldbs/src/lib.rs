//! # ldbs — Local Database System substrate
//!
//! A from-scratch, in-memory relational database engine standing in for the
//! autonomous local DBMSs (Oracle, Ingres, Sybase, ...) that the ICDE'93
//! paper federates. The engine executes the SQL subset produced by the MSQL
//! translator and — crucially for the paper — reproduces the **commit
//! protocol heterogeneity** the paper's semantics revolve around:
//!
//! * [`profile::DbmsProfile`] describes what a local system can do: whether
//!   it exposes a two-phase-commit (prepared-to-commit) interface or only
//!   autocommits, whether DDL can be rolled back or instead autocommits
//!   together with all previously issued uncommitted statements (the
//!   Ingres/Oracle difference called out in §3.2.2), and whether it serves
//!   multiple databases (`CONNECTMODE`).
//! * [`txn`] implements the transaction state machine
//!   (Active → Prepared → Committed/Aborted) with undo logging, so a
//!   prepared subtransaction can be committed or rolled back by the global
//!   layer.
//! * [`failure::FailurePolicy`] injects local aborts (conflicts, deadlocks,
//!   crashes) deterministically or stochastically, which the paper's
//!   vital/compensation machinery must tolerate.
//!
//! The execution engine ([`exec`]) supports scans, filters, cross joins,
//! scalar/`IN` subqueries (correlated), aggregates with `GROUP BY`/`HAVING`,
//! `ORDER BY`, `DISTINCT`, and the DML/DDL statements of the MSQL subset.
//!
//! ```
//! use ldbs::{Engine, profile::DbmsProfile};
//!
//! let mut engine = Engine::new("avis_svc", DbmsProfile::oracle_like());
//! engine.create_database("avis").unwrap();
//! engine.execute("avis", "CREATE TABLE cars (code INT, cartype CHAR(16), rate FLOAT, carst CHAR(10))").unwrap();
//! engine.execute("avis", "INSERT INTO cars VALUES (1, 'sedan', 39.5, 'available')").unwrap();
//! let rs = engine.execute("avis", "SELECT code, rate FROM cars WHERE carst = 'available'").unwrap();
//! assert_eq!(rs.into_result_set().unwrap().rows.len(), 1);
//! ```

pub mod engine;
pub mod error;
pub mod eval;
pub mod exec;
pub mod failure;
pub mod index;
pub mod profile;
pub mod schema;
pub mod stats;
pub mod table;
pub mod txn;
pub mod value;

pub use engine::{Engine, ExecOutcome, ResultSet};
pub use error::DbError;
pub use profile::DbmsProfile;
pub use schema::{ColumnSchema, IndexDef, IndexKind, TableSchema};
pub use stats::{ColumnStats, TableStats};
pub use txn::{TxnId, TxnState};
pub use value::{CanonicalKey, DataType, Value};
