//! DBMS capability profiles — the heterogeneity axis of the paper.
//!
//! §3.2.2: *"LDBMSs supporting automatic commit and LDBMSs supporting
//! user-controlled 2PC may be involved in the same query. LDBMSs which
//! support 2PC may adopt different protocols. For example, in our
//! implementation both Ingres and Oracle provide 2PC, but with different
//! protocols. One of the DBMSs allows DDL commands to be rolled back while
//! another automatically commits them together with all previously issued
//! uncommitted statements."*
//!
//! A [`DbmsProfile`] captures exactly these observable differences; the
//! multidatabase layer reads them through the Auxiliary Directory and plans
//! accordingly (2PC tasks vs. autocommit tasks vs. compensation).

use msql_lang::CommitCapability;

/// Statement classes whose commit behaviour the Auxiliary Directory records
/// separately (the `CREATE/INSERT/DROP COMMIT|NOCOMMIT` lines of the
/// INCORPORATE grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatementClass {
    /// SELECT/INSERT/UPDATE/DELETE.
    Dml,
    /// CREATE TABLE / CREATE DATABASE.
    Create,
    /// INSERT specifically (some systems autocommit bulk loads).
    Insert,
    /// DROP TABLE / DROP DATABASE.
    Drop,
}

/// Observable capabilities of a local DBMS.
#[derive(Debug, Clone, PartialEq)]
pub struct DbmsProfile {
    /// Marketing name of the flavour ("oracle-like", ...), for diagnostics.
    pub flavor: String,
    /// Whether the system exposes a visible prepared-to-commit state.
    pub supports_2pc: bool,
    /// Whether DDL statements participate in transactions and can be rolled
    /// back (the Ingres behaviour).
    pub ddl_rollbackable: bool,
    /// Whether issuing DDL inside a transaction silently commits all
    /// previously issued uncommitted statements (the Oracle behaviour).
    pub ddl_autocommits_prior: bool,
    /// `CONNECTMODE CONNECT`: the service hosts multiple named databases;
    /// `NOCONNECT`: exactly one default database.
    pub multi_database: bool,
}

impl DbmsProfile {
    /// Oracle-flavoured: 2PC for DML, but DDL autocommits itself *and* all
    /// prior uncommitted work.
    pub fn oracle_like() -> Self {
        DbmsProfile {
            flavor: "oracle-like".into(),
            supports_2pc: true,
            ddl_rollbackable: false,
            ddl_autocommits_prior: true,
            multi_database: true,
        }
    }

    /// Ingres-flavoured: 2PC for DML and rollbackable DDL.
    pub fn ingres_like() -> Self {
        DbmsProfile {
            flavor: "ingres-like".into(),
            supports_2pc: true,
            ddl_rollbackable: true,
            ddl_autocommits_prior: false,
            multi_database: true,
        }
    }

    /// Sybase-flavoured stand-in for an autocommit-only system: no visible
    /// prepared state at all; every statement commits on success. These are
    /// the systems for which the paper requires COMP clauses when VITAL.
    pub fn autocommit_only() -> Self {
        DbmsProfile {
            flavor: "autocommit-only".into(),
            supports_2pc: false,
            ddl_rollbackable: false,
            ddl_autocommits_prior: true,
            multi_database: false,
        }
    }

    /// The commit capability the service advertises for a statement class —
    /// this is what INCORPORATE records into the Auxiliary Directory.
    pub fn capability_for(&self, class: StatementClass) -> CommitCapability {
        if !self.supports_2pc {
            return CommitCapability::AutoCommit;
        }
        match class {
            StatementClass::Dml | StatementClass::Insert => CommitCapability::TwoPhase,
            StatementClass::Create | StatementClass::Drop => {
                if self.ddl_rollbackable {
                    CommitCapability::TwoPhase
                } else {
                    CommitCapability::AutoCommit
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_autocommits_ddl() {
        let p = DbmsProfile::oracle_like();
        assert!(p.supports_2pc);
        assert_eq!(p.capability_for(StatementClass::Dml), CommitCapability::TwoPhase);
        assert_eq!(p.capability_for(StatementClass::Create), CommitCapability::AutoCommit);
        assert_eq!(p.capability_for(StatementClass::Drop), CommitCapability::AutoCommit);
    }

    #[test]
    fn ingres_rolls_back_ddl() {
        let p = DbmsProfile::ingres_like();
        assert_eq!(p.capability_for(StatementClass::Create), CommitCapability::TwoPhase);
        assert!(!p.ddl_autocommits_prior);
    }

    #[test]
    fn autocommit_only_advertises_autocommit_everywhere() {
        let p = DbmsProfile::autocommit_only();
        for class in [
            StatementClass::Dml,
            StatementClass::Create,
            StatementClass::Insert,
            StatementClass::Drop,
        ] {
            assert_eq!(p.capability_for(class), CommitCapability::AutoCommit);
        }
        assert!(!p.multi_database);
    }
}
