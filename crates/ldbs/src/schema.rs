//! Table and column schemas.
//!
//! Schema objects double as the *Local Conceptual Schema* of the paper's
//! architecture (Figure 2): tables marked [`TableSchema::public`] are the
//! ones an `IMPORT DATABASE` statement may pull into the Global Data
//! Dictionary.

use crate::error::DbError;
use crate::value::DataType;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSchema {
    /// Column name (stored lowercase; SQL identifiers are case-insensitive).
    pub name: String,
    /// Data type, including the advertised width for CHAR columns — the GDD
    /// stores "names, types and widths" (paper §3.1).
    pub data_type: DataType,
    /// NOT NULL constraint.
    pub not_null: bool,
}

impl ColumnSchema {
    /// Creates a nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnSchema { name: name.into().to_ascii_lowercase(), data_type, not_null: false }
    }

    /// Creates a NOT NULL column.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnSchema { name: name.into().to_ascii_lowercase(), data_type, not_null: true }
    }
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lowercase).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnSchema>,
    /// Whether the table is exported to the multidatabase level.
    pub public: bool,
}

impl TableSchema {
    /// Creates a public table schema.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnSchema>) -> Self {
        TableSchema { name: name.into().to_ascii_lowercase(), columns, public: true }
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// The column schema for `name`, or an error.
    pub fn column(&self, name: &str) -> Result<&ColumnSchema, DbError> {
        self.column_index(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| DbError::UnknownColumn(format!("{}.{}", self.name, name)))
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// The physical shape of a secondary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash map: serves equality and `IN` probes only.
    Hash,
    /// Ordered map: serves equality, `IN`, and range probes.
    BTree,
}

impl IndexKind {
    /// The MSQL keyword for the kind (`USING <kind>`).
    pub fn keyword(&self) -> &'static str {
        match self {
            IndexKind::Hash => "HASH",
            IndexKind::BTree => "BTREE",
        }
    }
}

/// A secondary-index definition: a named, single-column access path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name (lowercase, unique per table).
    pub name: String,
    /// Indexed column name (lowercase).
    pub column: String,
    /// Physical shape.
    pub kind: IndexKind,
}

impl IndexDef {
    /// Creates an index definition, normalising names.
    pub fn new(name: impl Into<String>, column: impl Into<String>, kind: IndexKind) -> Self {
        IndexDef {
            name: name.into().to_ascii_lowercase(),
            column: column.into().to_ascii_lowercase(),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cars() -> TableSchema {
        TableSchema::new(
            "Cars",
            vec![
                ColumnSchema::not_null("Code", DataType::Int),
                ColumnSchema::new("CarType", DataType::Char(16)),
                ColumnSchema::new("rate", DataType::Float),
            ],
        )
    }

    #[test]
    fn names_are_normalised() {
        let t = cars();
        assert_eq!(t.name, "cars");
        assert_eq!(t.columns[0].name, "code");
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let t = cars();
        assert_eq!(t.column_index("CODE"), Some(0));
        assert_eq!(t.column_index("cartype"), Some(1));
        assert_eq!(t.column_index("missing"), None);
        assert!(t.column("RATE").is_ok());
        assert!(matches!(t.column("nope"), Err(DbError::UnknownColumn(_))));
    }

    #[test]
    fn arity_and_names() {
        let t = cars();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.column_names(), vec!["code", "cartype", "rate"]);
    }

    #[test]
    fn index_def_normalises_names() {
        let d = IndexDef::new("Cars_Code", "Code", IndexKind::Hash);
        assert_eq!(d.name, "cars_code");
        assert_eq!(d.column, "code");
        assert_eq!(d.kind.keyword(), "HASH");
        assert_eq!(IndexKind::BTree.keyword(), "BTREE");
    }
}
