//! Optimizer statistics collected by `ANALYZE`.
//!
//! One pass over a table yields, per column: the number of distinct values
//! (NDV), the NULL count, the min/max, and a small equi-depth histogram.
//! Distinctness and ordering both come from [`Value::canonical_key`], so an
//! `INT 2` and a `FLOAT 2.0` count as one value exactly where SQL equality
//! says they are one value. Statistics are a *snapshot*: the table tracks a
//! staleness counter (`dml_since_analyze`) that the cost layer can consult
//! before trusting them.

use crate::table::Table;
use crate::value::{CanonicalKey, Value};

/// Maximum number of equi-depth histogram buckets collected per column.
pub const HISTOGRAM_BUCKETS: usize = 8;

/// Statistics for one column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name (lowercase).
    pub name: String,
    /// Number of distinct non-null values (by canonical key, so values that
    /// compare SQL-equal count once).
    pub ndv: u64,
    /// Number of NULLs (including NaN floats, which have no canonical key
    /// and never satisfy a predicate).
    pub null_count: u64,
    /// Smallest non-null value, if any rows exist.
    pub min: Option<Value>,
    /// Largest non-null value, if any rows exist.
    pub max: Option<Value>,
    /// Equi-depth histogram: ascending bucket upper bounds over the sorted
    /// non-null values. At most [`HISTOGRAM_BUCKETS`] entries; the last one
    /// equals `max`. Empty when the column holds no non-null values.
    pub histogram: Vec<Value>,
}

impl ColumnStats {
    /// Fraction of buckets whose upper bound is strictly below `key` — a
    /// crude but monotone estimate of `P(column < value)` that equi-depth
    /// construction makes robust to skew.
    pub fn histogram_fraction_below(&self, key: &CanonicalKey) -> Option<f64> {
        if self.histogram.is_empty() {
            return None;
        }
        let below =
            self.histogram.iter().filter(|b| b.canonical_key().is_some_and(|bk| bk < *key)).count();
        Some(below as f64 / self.histogram.len() as f64)
    }
}

/// Statistics for one table, as of the last `ANALYZE`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of rows at collection time.
    pub row_count: u64,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Statistics for the column named `name` (case-insensitive).
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().find(|c| c.name == lower)
    }
}

/// Scans `table` once and computes fresh statistics for every column.
pub fn analyze_table(table: &Table) -> TableStats {
    let row_count = table.len() as u64;
    let mut columns = Vec::with_capacity(table.schema.arity());
    for (ci, col) in table.schema.columns.iter().enumerate() {
        let mut null_count = 0u64;
        let mut keyed: Vec<(CanonicalKey, &Value)> = Vec::new();
        for (_, row) in table.iter() {
            let v = &row[ci];
            match v.canonical_key() {
                Some(k) => keyed.push((k, v)),
                None => null_count += 1,
            }
        }
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        let mut ndv = 0u64;
        for (i, (k, _)) in keyed.iter().enumerate() {
            if i == 0 || keyed[i - 1].0 != *k {
                ndv += 1;
            }
        }
        let min = keyed.first().map(|(_, v)| (*v).clone());
        let max = keyed.last().map(|(_, v)| (*v).clone());
        let histogram = equi_depth(&keyed);
        columns.push(ColumnStats { name: col.name.clone(), ndv, null_count, min, max, histogram });
    }
    TableStats { row_count, columns }
}

/// Equi-depth bucket upper bounds over canonically sorted values. Adjacent
/// buckets that end on the same value collapse into one, so heavy hitters
/// occupy (visibly) many buckets without duplicating boundaries.
fn equi_depth(sorted: &[(CanonicalKey, &Value)]) -> Vec<Value> {
    if sorted.is_empty() {
        return Vec::new();
    }
    let n = sorted.len();
    let buckets = HISTOGRAM_BUCKETS.min(n);
    let mut out: Vec<Value> = Vec::with_capacity(buckets);
    let mut last_key: Option<&CanonicalKey> = None;
    for b in 1..=buckets {
        let pos = b * n / buckets - 1;
        let (key, value) = &sorted[pos];
        if last_key != Some(key) {
            out.push((*value).clone());
            last_key = Some(key);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnSchema, TableSchema};
    use crate::value::DataType;

    fn table_with(rows: Vec<Vec<Value>>) -> Table {
        let mut t = Table::new(TableSchema::new(
            "cars",
            vec![
                ColumnSchema::new("code", DataType::Int),
                ColumnSchema::new("carst", DataType::Char(10)),
            ],
        ));
        for row in rows {
            t.insert(row).unwrap();
        }
        t
    }

    #[test]
    fn counts_rows_ndv_nulls_min_max() {
        let t = table_with(vec![
            vec![Value::Int(1), Value::Str("available".into())],
            vec![Value::Int(2), Value::Str("available".into())],
            vec![Value::Int(2), Value::Null],
            vec![Value::Int(7), Value::Str("rented".into())],
        ]);
        let s = analyze_table(&t);
        assert_eq!(s.row_count, 4);
        let code = s.column("CODE").unwrap();
        assert_eq!(code.ndv, 3);
        assert_eq!(code.null_count, 0);
        assert_eq!(code.min, Some(Value::Int(1)));
        assert_eq!(code.max, Some(Value::Int(7)));
        let carst = s.column("carst").unwrap();
        assert_eq!(carst.ndv, 2);
        assert_eq!(carst.null_count, 1);
        assert_eq!(carst.min, Some(Value::Str("available".into())));
        assert_eq!(carst.max, Some(Value::Str("rented".into())));
    }

    #[test]
    fn ndv_folds_sql_equal_values_across_types() {
        let mut t =
            Table::new(TableSchema::new("r", vec![ColumnSchema::new("x", DataType::Float)]));
        t.insert(vec![Value::Int(2)]).unwrap();
        t.insert(vec![Value::Float(2.0)]).unwrap();
        t.insert(vec![Value::Float(3.5)]).unwrap();
        let s = analyze_table(&t);
        assert_eq!(s.column("x").unwrap().ndv, 2);
    }

    #[test]
    fn empty_table_yields_empty_column_stats() {
        let t = table_with(vec![]);
        let s = analyze_table(&t);
        assert_eq!(s.row_count, 0);
        let code = s.column("code").unwrap();
        assert_eq!(code.ndv, 0);
        assert_eq!(code.min, None);
        assert_eq!(code.max, None);
        assert!(code.histogram.is_empty());
    }

    #[test]
    fn histogram_is_equi_depth_and_bounded() {
        // 64 rows, values 0..64: bucket bounds land every 8 values.
        let rows: Vec<Vec<Value>> =
            (0..64).map(|i| vec![Value::Int(i), Value::Str("s".into())]).collect();
        let s = analyze_table(&table_with(rows));
        let h = &s.column("code").unwrap().histogram;
        assert_eq!(h.len(), HISTOGRAM_BUCKETS);
        assert_eq!(h.first(), Some(&Value::Int(7)));
        assert_eq!(h.last(), Some(&Value::Int(63)));
        // Ascending.
        for w in h.windows(2) {
            assert!(w[0].canonical_key() < w[1].canonical_key());
        }
    }

    #[test]
    fn histogram_collapses_heavy_hitters() {
        // 70 copies of one value plus 10 others: equi-depth bounds mostly
        // land on the heavy hitter, which collapses to one boundary.
        let mut rows: Vec<Vec<Value>> = (0..70).map(|_| vec![Value::Int(5), Value::Null]).collect();
        rows.extend((10..20).map(|i| vec![Value::Int(i), Value::Null]));
        let s = analyze_table(&table_with(rows));
        let code = s.column("code").unwrap();
        assert!(code.histogram.len() < HISTOGRAM_BUCKETS);
        assert_eq!(code.histogram.first(), Some(&Value::Int(5)));
        // The estimate still sees most of the mass at/below 5.
        let frac = code.histogram_fraction_below(&Value::Int(6).canonical_key().unwrap()).unwrap();
        assert!(frac > 0.0);
    }

    #[test]
    fn histogram_fraction_is_monotone() {
        let rows: Vec<Vec<Value>> = (0..40).map(|i| vec![Value::Int(i), Value::Null]).collect();
        let s = analyze_table(&table_with(rows));
        let code = s.column("code").unwrap();
        let lo = code.histogram_fraction_below(&Value::Int(3).canonical_key().unwrap()).unwrap();
        let hi = code.histogram_fraction_below(&Value::Int(39).canonical_key().unwrap()).unwrap();
        assert!(lo <= hi);
        assert!(hi > 0.8);
    }
}
