//! Row storage.
//!
//! Rows carry stable identifiers so the undo log can refer to them across
//! updates and deletes; a `BTreeMap` keeps iteration order deterministic,
//! which makes query results and benchmarks reproducible.

use crate::error::DbError;
use crate::index::Index;
use crate::schema::{IndexDef, TableSchema};
use crate::stats::{analyze_table, TableStats};
use crate::value::Value;
use std::collections::BTreeMap;

/// Stable identifier of a stored row.
pub type RowId = u64;

/// A stored row: one value per schema column.
pub type Row = Vec<Value>;

/// A heap table plus its secondary indexes.
///
/// Every mutation path goes through [`Table::insert`], [`Table::remove`],
/// [`Table::replace`] or [`Table::restore`], and each of them maintains the
/// indexes in the same step — including when the undo log replays those
/// operations during rollback, so aborted transactions leave indexes
/// consistent for free.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table schema.
    pub schema: TableSchema,
    rows: BTreeMap<RowId, Row>,
    next_id: RowId,
    indexes: Vec<Index>,
    /// Optimizer statistics from the last `ANALYZE`, if any.
    stats: Option<TableStats>,
    /// Mutations applied since the last `ANALYZE` — the staleness signal the
    /// cost layer consults before trusting `stats`.
    dml_since_analyze: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: BTreeMap::new(),
            next_id: 1,
            indexes: Vec::new(),
            stats: None,
            dml_since_analyze: 0,
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validates a row against the schema (arity, NOT NULL, type coercion)
    /// and returns the coerced row.
    pub fn validate(&self, row: Row) -> Result<Row, DbError> {
        if row.len() != self.schema.arity() {
            return Err(DbError::TypeError(format!(
                "table `{}` expects {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (value, col) in row.into_iter().zip(&self.schema.columns) {
            if value.is_null() && col.not_null {
                return Err(DbError::NullViolation(col.name.clone()));
            }
            out.push(value.coerce_to(col.data_type).map_err(|_| {
                DbError::TypeError(format!(
                    "value {value} does not fit column `{}` ({})",
                    col.name, col.data_type
                ))
            })?);
        }
        Ok(out)
    }

    /// Inserts a validated row, returning its id.
    pub fn insert(&mut self, row: Row) -> Result<RowId, DbError> {
        let row = self.validate(row)?;
        let id = self.next_id;
        self.next_id += 1;
        for idx in &mut self.indexes {
            idx.insert(id, &row);
        }
        self.rows.insert(id, row);
        self.dml_since_analyze += 1;
        Ok(id)
    }

    /// Re-inserts a row under a previously assigned id (undo of a delete).
    pub fn restore(&mut self, id: RowId, row: Row) {
        for idx in &mut self.indexes {
            idx.insert(id, &row);
        }
        self.rows.insert(id, row);
        if id >= self.next_id {
            self.next_id = id + 1;
        }
        self.dml_since_analyze += 1;
    }

    /// Removes a row, returning it.
    pub fn remove(&mut self, id: RowId) -> Option<Row> {
        let row = self.rows.remove(&id)?;
        for idx in &mut self.indexes {
            idx.remove(id, &row);
        }
        self.dml_since_analyze += 1;
        Some(row)
    }

    /// Reads a row.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(&id)
    }

    /// Replaces a row in place, returning the previous contents.
    pub fn replace(&mut self, id: RowId, row: Row) -> Result<Row, DbError> {
        let row = self.validate(row)?;
        let old = match self.rows.get_mut(&id) {
            Some(slot) => std::mem::replace(slot, row),
            None => return Err(DbError::Internal(format!("row {id} vanished during update"))),
        };
        let new = &self.rows[&id];
        for idx in &mut self.indexes {
            idx.remove(id, &old);
            idx.insert(id, new);
        }
        self.dml_since_analyze += 1;
        Ok(old)
    }

    /// (Re)collects optimizer statistics and resets the staleness counter.
    /// Returns the previous snapshot and counter so `ANALYZE` can be undone
    /// on engines whose profile rolls DDL back.
    pub fn analyze(&mut self) -> (Option<TableStats>, u64) {
        let fresh = analyze_table(self);
        let prev = self.stats.replace(fresh);
        let prev_staleness = std::mem::replace(&mut self.dml_since_analyze, 0);
        (prev, prev_staleness)
    }

    /// The statistics snapshot from the last `ANALYZE`, if any.
    pub fn table_stats(&self) -> Option<&TableStats> {
        self.stats.as_ref()
    }

    /// Mutations applied since the last `ANALYZE` (staleness indicator).
    pub fn dml_since_analyze(&self) -> u64 {
        self.dml_since_analyze
    }

    /// Restores a previous statistics snapshot (undo of `ANALYZE`).
    pub fn restore_stats(&mut self, stats: Option<TableStats>, dml_since_analyze: u64) {
        self.stats = stats;
        self.dml_since_analyze = dml_since_analyze;
    }

    /// Iterates `(id, row)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().map(|(id, row)| (*id, row))
    }

    /// Builds a secondary index over the current rows. Errors when the name
    /// is taken or the column does not exist.
    pub fn create_index(&mut self, def: IndexDef) -> Result<(), DbError> {
        if self.index_by_name(&def.name).is_some() {
            return Err(DbError::DuplicateIndex(def.name));
        }
        let pos = self.schema.column_index(&def.column).ok_or_else(|| {
            DbError::UnknownColumn(format!("{}.{}", self.schema.name, def.column))
        })?;
        self.indexes.push(Index::build(def, pos, self.iter()));
        Ok(())
    }

    /// Drops an index by name, returning its definition (for undo).
    pub fn drop_index(&mut self, name: &str) -> Result<IndexDef, DbError> {
        let lower = name.to_ascii_lowercase();
        match self.indexes.iter().position(|i| i.def.name == lower) {
            Some(pos) => Ok(self.indexes.remove(pos).def),
            None => Err(DbError::UnknownIndex(lower)),
        }
    }

    /// The index named `name`, if any.
    pub fn index_by_name(&self, name: &str) -> Option<&Index> {
        let lower = name.to_ascii_lowercase();
        self.indexes.iter().find(|i| i.def.name == lower)
    }

    /// The first index covering `column` (preferring one that can serve
    /// range probes when `need_range` is set).
    pub fn index_on(&self, column: &str, need_range: bool) -> Option<&Index> {
        let lower = column.to_ascii_lowercase();
        self.indexes.iter().find(|i| i.def.column == lower && (!need_range || i.supports_range()))
    }

    /// All index definitions, in creation order.
    pub fn index_defs(&self) -> Vec<&IndexDef> {
        self.indexes.iter().map(|i| &i.def).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnSchema;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(TableSchema::new(
            "cars",
            vec![
                ColumnSchema::not_null("code", DataType::Int),
                ColumnSchema::new("rate", DataType::Float),
            ],
        ))
    }

    #[test]
    fn insert_assigns_increasing_ids() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
        let b = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert!(b > a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let mut t = table();
        assert!(matches!(t.insert(vec![Value::Int(1)]), Err(DbError::TypeError(_))));
        assert!(matches!(t.insert(vec![Value::Null, Value::Null]), Err(DbError::NullViolation(_))));
        assert!(matches!(
            t.insert(vec![Value::Str("x".into()), Value::Null]),
            Err(DbError::TypeError(_))
        ));
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::Int(10)]).unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::Float(10.0));
    }

    #[test]
    fn remove_restore_roundtrip() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
        let row = t.remove(id).unwrap();
        assert!(t.is_empty());
        t.restore(id, row);
        assert_eq!(t.get(id).unwrap()[0], Value::Int(1));
        // next_id moves past restored ids
        let id2 = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert!(id2 > id);
    }

    #[test]
    fn replace_returns_old_row() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
        let old = t.replace(id, vec![Value::Int(1), Value::Float(11.0)]).unwrap();
        assert_eq!(old[1], Value::Float(10.0));
        assert_eq!(t.get(id).unwrap()[1], Value::Float(11.0));
    }

    #[test]
    fn indexes_follow_every_mutation_path() {
        use crate::schema::{IndexDef, IndexKind};
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
        t.create_index(IndexDef::new("cars_code", "code", IndexKind::BTree)).unwrap();
        // Bulk-loaded from existing rows…
        assert_eq!(t.index_by_name("cars_code").unwrap().probe_eq(&[Value::Int(1)]), vec![a]);
        // …and maintained by insert/replace/remove/restore.
        let b = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(t.index_by_name("cars_code").unwrap().probe_eq(&[Value::Int(2)]), vec![b]);
        t.replace(b, vec![Value::Int(3), Value::Null]).unwrap();
        let idx = t.index_by_name("cars_code").unwrap();
        assert!(idx.probe_eq(&[Value::Int(2)]).is_empty());
        assert_eq!(idx.probe_eq(&[Value::Int(3)]), vec![b]);
        let row = t.remove(a).unwrap();
        assert!(t.index_by_name("cars_code").unwrap().probe_eq(&[Value::Int(1)]).is_empty());
        t.restore(a, row);
        assert_eq!(t.index_by_name("cars_code").unwrap().probe_eq(&[Value::Int(1)]), vec![a]);
    }

    #[test]
    fn index_ddl_errors() {
        use crate::schema::{IndexDef, IndexKind};
        let mut t = table();
        t.create_index(IndexDef::new("i", "code", IndexKind::Hash)).unwrap();
        assert!(matches!(
            t.create_index(IndexDef::new("I", "rate", IndexKind::Hash)),
            Err(DbError::DuplicateIndex(_))
        ));
        assert!(matches!(
            t.create_index(IndexDef::new("j", "missing", IndexKind::Hash)),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(t.drop_index("nope"), Err(DbError::UnknownIndex(_))));
        let def = t.drop_index("I").unwrap();
        assert_eq!(def.name, "i");
        assert!(t.index_defs().is_empty());
        // Lookup by column honours the range requirement.
        t.create_index(IndexDef::new("h", "code", IndexKind::Hash)).unwrap();
        assert!(t.index_on("code", false).is_some());
        assert!(t.index_on("code", true).is_none());
        t.create_index(IndexDef::new("b", "code", IndexKind::BTree)).unwrap();
        assert_eq!(t.index_on("code", true).unwrap().def.name, "b");
    }

    #[test]
    fn staleness_counter_tracks_every_mutation_path() {
        let mut t = table();
        assert_eq!(t.dml_since_analyze(), 0);
        assert!(t.table_stats().is_none());
        let a = t.insert(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
        assert_eq!(t.dml_since_analyze(), 1);
        let (prev, prev_staleness) = t.analyze();
        assert!(prev.is_none());
        assert_eq!(prev_staleness, 1);
        assert_eq!(t.dml_since_analyze(), 0);
        assert_eq!(t.table_stats().unwrap().row_count, 1);
        t.replace(a, vec![Value::Int(2), Value::Null]).unwrap();
        let row = t.remove(a).unwrap();
        t.restore(a, row);
        assert_eq!(t.dml_since_analyze(), 3);
        // Rollback of an ANALYZE restores the prior snapshot wholesale.
        let snapshot = t.table_stats().cloned();
        let (prev, prev_staleness) = t.analyze();
        assert_eq!(prev, snapshot);
        assert_eq!(prev_staleness, 3);
        t.restore_stats(prev, prev_staleness);
        assert_eq!(t.table_stats(), snapshot.as_ref());
        assert_eq!(t.dml_since_analyze(), 3);
    }

    #[test]
    fn iteration_is_in_id_order() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Null]).unwrap();
        }
        let codes: Vec<i64> = t
            .iter()
            .map(|(_, r)| match r[0] {
                Value::Int(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4]);
    }
}
