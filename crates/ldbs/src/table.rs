//! Row storage.
//!
//! Rows carry stable identifiers so the undo log can refer to them across
//! updates and deletes; a `BTreeMap` keeps iteration order deterministic,
//! which makes query results and benchmarks reproducible.

use crate::error::DbError;
use crate::schema::TableSchema;
use crate::value::Value;
use std::collections::BTreeMap;

/// Stable identifier of a stored row.
pub type RowId = u64;

/// A stored row: one value per schema column.
pub type Row = Vec<Value>;

/// A heap table.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table schema.
    pub schema: TableSchema,
    rows: BTreeMap<RowId, Row>,
    next_id: RowId,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table { schema, rows: BTreeMap::new(), next_id: 1 }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validates a row against the schema (arity, NOT NULL, type coercion)
    /// and returns the coerced row.
    pub fn validate(&self, row: Row) -> Result<Row, DbError> {
        if row.len() != self.schema.arity() {
            return Err(DbError::TypeError(format!(
                "table `{}` expects {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (value, col) in row.into_iter().zip(&self.schema.columns) {
            if value.is_null() && col.not_null {
                return Err(DbError::NullViolation(col.name.clone()));
            }
            out.push(value.coerce_to(col.data_type).map_err(|_| {
                DbError::TypeError(format!(
                    "value {value} does not fit column `{}` ({})",
                    col.name, col.data_type
                ))
            })?);
        }
        Ok(out)
    }

    /// Inserts a validated row, returning its id.
    pub fn insert(&mut self, row: Row) -> Result<RowId, DbError> {
        let row = self.validate(row)?;
        let id = self.next_id;
        self.next_id += 1;
        self.rows.insert(id, row);
        Ok(id)
    }

    /// Re-inserts a row under a previously assigned id (undo of a delete).
    pub fn restore(&mut self, id: RowId, row: Row) {
        self.rows.insert(id, row);
        if id >= self.next_id {
            self.next_id = id + 1;
        }
    }

    /// Removes a row, returning it.
    pub fn remove(&mut self, id: RowId) -> Option<Row> {
        self.rows.remove(&id)
    }

    /// Reads a row.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(&id)
    }

    /// Replaces a row in place, returning the previous contents.
    pub fn replace(&mut self, id: RowId, row: Row) -> Result<Row, DbError> {
        let row = self.validate(row)?;
        match self.rows.get_mut(&id) {
            Some(slot) => Ok(std::mem::replace(slot, row)),
            None => Err(DbError::Internal(format!("row {id} vanished during update"))),
        }
    }

    /// Iterates `(id, row)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().map(|(id, row)| (*id, row))
    }

    /// Snapshot of all rows in id order (used by tests and result building).
    pub fn rows_snapshot(&self) -> Vec<Row> {
        self.rows.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnSchema;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(TableSchema::new(
            "cars",
            vec![
                ColumnSchema::not_null("code", DataType::Int),
                ColumnSchema::new("rate", DataType::Float),
            ],
        ))
    }

    #[test]
    fn insert_assigns_increasing_ids() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
        let b = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert!(b > a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let mut t = table();
        assert!(matches!(t.insert(vec![Value::Int(1)]), Err(DbError::TypeError(_))));
        assert!(matches!(t.insert(vec![Value::Null, Value::Null]), Err(DbError::NullViolation(_))));
        assert!(matches!(
            t.insert(vec![Value::Str("x".into()), Value::Null]),
            Err(DbError::TypeError(_))
        ));
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::Int(10)]).unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::Float(10.0));
    }

    #[test]
    fn remove_restore_roundtrip() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
        let row = t.remove(id).unwrap();
        assert!(t.is_empty());
        t.restore(id, row);
        assert_eq!(t.get(id).unwrap()[0], Value::Int(1));
        // next_id moves past restored ids
        let id2 = t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert!(id2 > id);
    }

    #[test]
    fn replace_returns_old_row() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
        let old = t.replace(id, vec![Value::Int(1), Value::Float(11.0)]).unwrap();
        assert_eq!(old[1], Value::Float(10.0));
        assert_eq!(t.get(id).unwrap()[1], Value::Float(11.0));
    }

    #[test]
    fn iteration_is_in_id_order() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Null]).unwrap();
        }
        let codes: Vec<i64> = t
            .iter()
            .map(|(_, r)| match r[0] {
                Value::Int(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4]);
    }
}
