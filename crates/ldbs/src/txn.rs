//! Transaction state machine and undo logging.
//!
//! A local subtransaction moves through the states the paper's evaluation
//! plans test for:
//!
//! ```text
//!            execute ok            commit
//!  Active ──────────────▶ Prepared ───────▶ Committed
//!     │                      │
//!     │ local failure        │ global rollback
//!     ▼                      ▼
//!  Aborted ◀─────────────────┘
//! ```
//!
//! (`P`, `C`, `A` in the DOL listings of §4.3.) Autocommit-only engines skip
//! the Prepared state: execution success commits immediately.

use crate::table::{Row, RowId, Table};

/// Transaction identifier.
pub type TxnId = u64;

/// The observable state of a local (sub)transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnState {
    /// Work in progress.
    Active,
    /// All statements executed; the transaction voted YES and awaits the
    /// global decision (the paper's prepared-to-commit, `P`).
    Prepared,
    /// Durably committed (`C`).
    Committed,
    /// Rolled back (`A`).
    Aborted,
}

impl TxnState {
    /// The single-letter code used by DOL status tests (`T1 = P`).
    pub fn dol_code(&self) -> char {
        match self {
            TxnState::Active => 'E',
            TxnState::Prepared => 'P',
            TxnState::Committed => 'C',
            TxnState::Aborted => 'A',
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            TxnState::Active => "Active",
            TxnState::Prepared => "Prepared",
            TxnState::Committed => "Committed",
            TxnState::Aborted => "Aborted",
        }
    }

    /// True if the transaction has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, TxnState::Committed | TxnState::Aborted)
    }
}

/// One entry of the undo log. Applying the inverse operations in reverse
/// order restores the pre-transaction state.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// A row was inserted; undo removes it.
    Insert {
        /// Database name.
        database: String,
        /// Table name.
        table: String,
        /// The inserted row id.
        id: RowId,
    },
    /// A row was deleted; undo restores it.
    Delete {
        /// Database name.
        database: String,
        /// Table name.
        table: String,
        /// The deleted row id.
        id: RowId,
        /// The deleted row contents.
        row: Row,
    },
    /// A row was updated; undo restores the old image.
    Update {
        /// Database name.
        database: String,
        /// Table name.
        table: String,
        /// The updated row id.
        id: RowId,
        /// The pre-update row contents.
        old: Row,
    },
    /// A table was created; undo drops it.
    CreateTable {
        /// Database name.
        database: String,
        /// Table name.
        table: String,
    },
    /// A table was dropped; undo restores it wholesale.
    DropTable {
        /// Database name.
        database: String,
        /// The dropped table (schema and rows).
        table: Box<Table>,
    },
    /// An index was created; undo drops it.
    CreateIndex {
        /// Database name.
        database: String,
        /// Table name.
        table: String,
        /// Index name.
        name: String,
    },
    /// An index was dropped; undo rebuilds it from the definition (the
    /// key → row map is derivable from the table contents at undo time).
    DropIndex {
        /// Database name.
        database: String,
        /// Table name.
        table: String,
        /// The dropped index definition.
        def: crate::schema::IndexDef,
    },
    /// Statistics were (re)collected by `ANALYZE`; undo restores the
    /// previous snapshot and staleness counter.
    Analyze {
        /// Database name.
        database: String,
        /// Table name.
        table: String,
        /// The statistics in place before the `ANALYZE` (None if never
        /// analyzed).
        prev: Option<Box<crate::stats::TableStats>>,
        /// The staleness counter before the `ANALYZE`.
        prev_staleness: u64,
    },
}

/// A live transaction: its state, its undo log, and the write locks it
/// holds (`(database, table)` pairs).
#[derive(Debug)]
pub struct Transaction {
    /// The transaction id.
    pub id: TxnId,
    /// Current state.
    pub state: TxnState,
    /// Undo log in execution order.
    pub undo: Vec<UndoOp>,
    /// Held write locks.
    pub locks: Vec<(String, String)>,
    /// The commit sequence number observed at `BEGIN`: this transaction's
    /// snapshot reads see exactly the changes committed up to it.
    pub snapshot: u64,
}

impl Transaction {
    /// Creates a fresh active transaction.
    pub fn new(id: TxnId) -> Self {
        Transaction {
            id,
            state: TxnState::Active,
            undo: Vec::new(),
            locks: Vec::new(),
            snapshot: 0,
        }
    }

    /// Makes all work so far permanent without terminating the transaction —
    /// used to model DDL that "automatically commits ... all previously
    /// issued uncommitted statements" (paper §3.2.2).
    pub fn flush_undo(&mut self) -> usize {
        let n = self.undo.len();
        self.undo.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dol_codes_match_paper() {
        assert_eq!(TxnState::Prepared.dol_code(), 'P');
        assert_eq!(TxnState::Committed.dol_code(), 'C');
        assert_eq!(TxnState::Aborted.dol_code(), 'A');
    }

    #[test]
    fn terminal_states() {
        assert!(!TxnState::Active.is_terminal());
        assert!(!TxnState::Prepared.is_terminal());
        assert!(TxnState::Committed.is_terminal());
        assert!(TxnState::Aborted.is_terminal());
    }

    #[test]
    fn flush_undo_reports_dropped_entries() {
        let mut t = Transaction::new(1);
        t.undo.push(UndoOp::Insert { database: "d".into(), table: "t".into(), id: 1 });
        t.undo.push(UndoOp::Insert { database: "d".into(), table: "t".into(), id: 2 });
        assert_eq!(t.flush_undo(), 2);
        assert!(t.undo.is_empty());
    }
}
