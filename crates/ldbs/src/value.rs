//! Runtime values and data types.
//!
//! SQL three-valued logic: comparisons involving NULL yield *unknown*, which
//! is represented as [`Value::Null`] in boolean position; only
//! `Value::Bool(true)` satisfies a predicate.

use crate::error::DbError;
use msql_lang::TypeName;
use std::cmp::Ordering;
use std::fmt;

/// Column data types stored in schemas and the Global Data Dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Character string with an advertised width (0 = unbounded); widths are
    /// schema metadata only, values are not padded or truncated.
    Char(u32),
    /// Boolean.
    Bool,
    /// Calendar date stored as ISO-8601 text.
    Date,
}

impl DataType {
    /// Converts a parsed [`TypeName`] into an engine data type.
    pub fn from_type_name(t: TypeName) -> Self {
        match t {
            TypeName::Int => DataType::Int,
            TypeName::Float => DataType::Float,
            TypeName::Char(w) => DataType::Char(w),
            TypeName::Bool => DataType::Bool,
            TypeName::Date => DataType::Date,
        }
    }

    /// True when a value of type `other` may be stored in a column of this
    /// type (identity, plus Int → Float widening and Char/Date
    /// interchangeability).
    pub fn accepts(&self, other: DataType) -> bool {
        match (self, other) {
            (a, b) if *a == b => true,
            (DataType::Float, DataType::Int) => true,
            (DataType::Char(_), DataType::Char(_)) => true,
            (DataType::Char(_), DataType::Date) | (DataType::Date, DataType::Char(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Char(0) => write!(f, "CHAR"),
            DataType::Char(w) => write!(f, "CHAR({w})"),
            DataType::Bool => write!(f, "BOOLEAN"),
            DataType::Date => write!(f, "DATE"),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL (also used as the *unknown* truth value).
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The type of a non-null value; NULL has no intrinsic type.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Char(0)),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a predicate result: `Some(bool)` for BOOL,
    /// `None` for NULL (unknown), error otherwise.
    pub fn as_truth(&self) -> Result<Option<bool>, DbError> {
        match self {
            Value::Bool(b) => Ok(Some(*b)),
            Value::Null => Ok(None),
            other => Err(DbError::TypeError(format!("expected boolean, got {other}"))),
        }
    }

    /// Numeric view for arithmetic, widening Int to Float.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable (which callers surface as unknown).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total ordering used by ORDER BY and GROUP BY: NULLs first, then
    /// booleans, numbers, strings; incomparable types ordered by type tag so
    /// the sort is always well-defined.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if tag(a) == 2 && tag(b) == 2 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }

    /// Arithmetic addition with SQL NULL propagation.
    pub fn add(&self, other: &Value) -> Result<Value, DbError> {
        numeric_binop(self, other, "+", |a, b| a + b, |a, b| a.checked_add(b))
    }

    /// Subtraction.
    pub fn sub(&self, other: &Value) -> Result<Value, DbError> {
        numeric_binop(self, other, "-", |a, b| a - b, |a, b| a.checked_sub(b))
    }

    /// Multiplication.
    pub fn mul(&self, other: &Value) -> Result<Value, DbError> {
        numeric_binop(self, other, "*", |a, b| a * b, |a, b| a.checked_mul(b))
    }

    /// Division. Always produces a float (so that `rate * 1.1 / 1.1`
    /// compensation behaves as in the paper's example); division by zero
    /// yields NULL rather than an error, matching permissive LDBMS behaviour.
    pub fn div(&self, other: &Value) -> Result<Value, DbError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let (a, b) = match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(DbError::TypeError(format!("cannot divide {self} by {other}")));
            }
        };
        if b == 0.0 {
            return Ok(Value::Null);
        }
        Ok(Value::Float(a / b))
    }

    /// Unary negation.
    pub fn neg(&self) -> Result<Value, DbError> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(v) => Ok(Value::Int(-v)),
            Value::Float(v) => Ok(Value::Float(-v)),
            other => Err(DbError::TypeError(format!("cannot negate {other}"))),
        }
    }

    /// String concatenation with NULL propagation.
    pub fn concat(&self, other: &Value) -> Result<Value, DbError> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Str(format!("{}{}", self.display_raw(), other.display_raw())))
    }

    /// SQL `LIKE` with `%` (any sequence) and `_` (any single char);
    /// case-sensitive, per the standard.
    pub fn sql_like(&self, pattern: &Value) -> Result<Value, DbError> {
        match (self, pattern) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(like_match(p, s))),
            (a, b) => Err(DbError::TypeError(format!("LIKE requires strings, got {a} and {b}"))),
        }
    }

    /// Coerces the value for storage in a column of type `ty`, widening Int
    /// to Float where necessary.
    pub fn coerce_to(&self, ty: DataType) -> Result<Value, DbError> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(v), DataType::Float) => Ok(Value::Float(*v as f64)),
            (Value::Int(v), DataType::Int) => Ok(Value::Int(*v)),
            (Value::Float(v), DataType::Float) => Ok(Value::Float(*v)),
            (Value::Str(s), DataType::Char(_)) | (Value::Str(s), DataType::Date) => {
                Ok(Value::Str(s.clone()))
            }
            (Value::Bool(b), DataType::Bool) => Ok(Value::Bool(*b)),
            (v, t) => Err(DbError::TypeError(format!("cannot store {v} in a {t} column"))),
        }
    }

    /// Raw textual form without quoting (used by concatenation and output).
    pub fn display_raw(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v:?}"),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }

    /// Canonical lookup key: two values that compare `Equal` under
    /// [`Value::sql_cmp`] always map to the same key, so hash buckets and
    /// ordered index ranges can be probed across the Int/Float divide
    /// (`2 = 2.0`). NULL and NaN have no key (they never equal anything).
    ///
    /// Distinct values may *collide* (integers beyond 2^53 fold onto the
    /// same f64), so key-based candidate sets are supersets and callers must
    /// re-check the original predicate.
    pub fn canonical_key(&self) -> Option<CanonicalKey> {
        match self {
            Value::Null => None,
            Value::Int(v) => Some(CanonicalKey::Num(canonical_f64_bits(*v as f64))),
            Value::Float(v) if v.is_nan() => None,
            Value::Float(v) => Some(CanonicalKey::Num(canonical_f64_bits(*v))),
            Value::Str(s) => Some(CanonicalKey::Str(s.clone())),
            Value::Bool(b) => Some(CanonicalKey::Bool(*b)),
        }
    }
}

/// A hashable, totally ordered key derived from a [`Value`] via
/// [`Value::canonical_key`]. The variant order (Bool < Num < Str) matches
/// the type-tag order of [`Value::total_cmp`], and `Num` is a
/// monotone-sortable encoding of the f64, so `CanonicalKey`'s derived `Ord`
/// agrees with SQL comparison wherever SQL comparison is defined.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CanonicalKey {
    /// Boolean key.
    Bool(bool),
    /// Numeric key: sortable bit-encoding of the f64 image of the value.
    Num(u64),
    /// String key.
    Str(String),
}

/// Maps an f64 (not NaN) to a u64 whose unsigned order matches the float
/// order. `-0.0` collapses onto `0.0` first so the two zeros share a key.
fn canonical_f64_bits(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    sym: &str,
    ff: impl Fn(f64, f64) -> f64,
    ii: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Value, DbError> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Int(x), Value::Int(y)) => ii(*x, *y)
            .map(Value::Int)
            .ok_or_else(|| DbError::TypeError(format!("integer overflow in {x} {sym} {y}"))),
        _ => {
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(DbError::TypeError(format!("cannot apply {sym} to {a} and {b}")));
                }
            };
            Ok(Value::Float(ff(x, y)))
        }
    }
}

/// SQL LIKE matcher: `%` = any sequence, `_` = any single character.
fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Two-pointer with backtracking over the last `%`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut star_t = 0usize;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_t = ti;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            other => write!(f, "{}", other.display_raw()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).mul(&Value::Null).unwrap(), Value::Null);
        assert_eq!(Value::Null.neg().unwrap(), Value::Null);
    }

    #[test]
    fn mixed_arithmetic_widens() {
        assert_eq!(Value::Int(2).add(&Value::Float(0.5)).unwrap(), Value::Float(2.5));
        assert_eq!(Value::Int(3).mul(&Value::Int(4)).unwrap(), Value::Int(12));
    }

    #[test]
    fn division_always_float_and_zero_is_null() {
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Float(3.5));
        assert_eq!(Value::Int(7).div(&Value::Int(0)).unwrap(), Value::Null);
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Str("b".into())), Some(Ordering::Less));
        // Incomparable types are unknown, not a panic.
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_is_total_and_nulls_first() {
        let mut vals = [
            Value::Str("z".into()),
            Value::Null,
            Value::Int(3),
            Value::Float(1.5),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(3));
        assert_eq!(vals[4], Value::Str("z".into()));
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Bool(true).as_truth().unwrap(), Some(true));
        assert_eq!(Value::Null.as_truth().unwrap(), None);
        assert!(Value::Int(1).as_truth().is_err());
    }

    #[test]
    fn like_matcher() {
        let like = |p: &str, t: &str| {
            Value::Str(t.into()).sql_like(&Value::Str(p.into())).unwrap() == Value::Bool(true)
        };
        assert!(like("Hou%", "Houston"));
        assert!(like("%ton", "Houston"));
        assert!(like("H_uston", "Houston"));
        assert!(!like("H_uston", "Hooouston"));
        assert!(like("%", ""));
        assert!(!like("a", "b"));
    }

    #[test]
    fn like_null_is_unknown() {
        assert_eq!(Value::Null.sql_like(&Value::Str("%".into())).unwrap(), Value::Null);
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(Value::Int(3).coerce_to(DataType::Float).unwrap(), Value::Float(3.0));
        assert!(Value::Str("x".into()).coerce_to(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce_to(DataType::Int).unwrap(), Value::Null);
        assert_eq!(
            Value::Str("2024-01-01".into()).coerce_to(DataType::Date).unwrap(),
            Value::Str("2024-01-01".into())
        );
    }

    #[test]
    fn concat_and_display() {
        assert_eq!(Value::Str("a".into()).concat(&Value::Int(1)).unwrap(), Value::Str("a1".into()));
        assert_eq!(Value::Str("it's".into()).to_string(), "'it''s'");
    }

    #[test]
    fn canonical_key_matches_sql_equality() {
        // sql_cmp-equal values share a key across the Int/Float divide.
        assert_eq!(Value::Int(2).canonical_key(), Value::Float(2.0).canonical_key());
        assert_eq!(Value::Float(0.0).canonical_key(), Value::Float(-0.0).canonical_key());
        assert_ne!(Value::Int(2).canonical_key(), Value::Int(3).canonical_key());
        // NULL and NaN never equal anything, so they have no key.
        assert_eq!(Value::Null.canonical_key(), None);
        assert_eq!(Value::Float(f64::NAN).canonical_key(), None);
    }

    #[test]
    fn canonical_key_order_matches_sql_order() {
        let vals = [
            Value::Float(-1000.5),
            Value::Int(-3),
            Value::Float(-0.0),
            Value::Int(0),
            Value::Float(0.25),
            Value::Int(1),
            Value::Float(1.5),
            Value::Int(7),
            Value::Float(1e18),
        ];
        for a in &vals {
            for b in &vals {
                let (ka, kb) = (a.canonical_key().unwrap(), b.canonical_key().unwrap());
                match a.sql_cmp(b).unwrap() {
                    Ordering::Less => assert!(ka < kb, "{a} < {b} but keys disagree"),
                    Ordering::Equal => assert_eq!(ka, kb, "{a} = {b} but keys disagree"),
                    Ordering::Greater => assert!(ka > kb, "{a} > {b} but keys disagree"),
                }
            }
        }
        // Variant order mirrors total_cmp's type tags: Bool < Num < Str.
        let b = Value::Bool(true).canonical_key().unwrap();
        let n = Value::Int(-5).canonical_key().unwrap();
        let s = Value::Str("a".into()).canonical_key().unwrap();
        assert!(b < n && n < s);
    }

    #[test]
    fn datatype_accepts() {
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Float));
        assert!(DataType::Char(5).accepts(DataType::Char(90)));
        assert!(DataType::Char(0).accepts(DataType::Date));
    }
}
