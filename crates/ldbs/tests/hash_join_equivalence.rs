//! Property test: the hash equi-join fast path returns exactly the rows of
//! the cross-product path, in the same order, over random two-table data and
//! random equi-join predicates (with and without residual conjuncts, across
//! Int/Float/NULL key mixes).

use ldbs::exec::select::execute_select_with;
use ldbs::profile::DbmsProfile;
use ldbs::Engine;
use msql_lang::{parse_statement, QueryBody, Select, Statement};
use proptest::prelude::*;

/// A join-key value: ints and halves overlap under SQL numeric equality
/// (`2 = 2.0`), NULL never matches anything.
#[derive(Debug, Clone, Copy)]
enum Key {
    Int(i64),
    Half(i64),  // k + 0.5 as a float
    Whole(i64), // k as a float — equal to Int(k)
    Null,
}

impl Key {
    fn sql(&self) -> String {
        match self {
            Key::Int(k) => k.to_string(),
            Key::Half(k) => format!("{k}.5"),
            Key::Whole(k) => format!("{k}.0"),
            Key::Null => "NULL".to_string(),
        }
    }
}

fn key_strategy() -> impl Strategy<Value = Key> {
    let k = -3i64..4;
    prop_oneof![
        4 => k.clone().prop_map(Key::Int),
        2 => k.clone().prop_map(Key::Half),
        2 => k.prop_map(Key::Whole),
        1 => Just(Key::Null),
    ]
}

fn parse_select(sql: &str) -> Select {
    let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!("not a query") };
    let QueryBody::Select(sel) = q.body else { panic!("not a select") };
    sel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hash_join_equals_cross_product(
        left in proptest::collection::vec((key_strategy(), -9i64..10), 0..14),
        right in proptest::collection::vec((key_strategy(), -9i64..10), 0..14),
        residual in proptest::bool::ANY,
        second_key in proptest::bool::ANY,
    ) {
        let mut e = Engine::new("svc", DbmsProfile::oracle_like());
        e.create_database("db").unwrap();
        e.execute("db", "CREATE TABLE lt (k FLOAT, v INT)").unwrap();
        e.execute("db", "CREATE TABLE rt (k FLOAT, w INT)").unwrap();
        for (k, v) in &left {
            e.execute("db", &format!("INSERT INTO lt VALUES ({}, {v})", k.sql())).unwrap();
        }
        for (k, w) in &right {
            e.execute("db", &format!("INSERT INTO rt VALUES ({}, {w})", k.sql())).unwrap();
        }
        let mut sql = "SELECT l.k, l.v, r.k, r.w FROM lt l, rt r WHERE l.k = r.k".to_string();
        if second_key {
            sql.push_str(" AND l.v = r.w");
        }
        if residual {
            sql.push_str(" AND l.v < r.w");
        }
        let sel = parse_select(&sql);
        let db = e.database("db").unwrap();
        let fast = execute_select_with(db, &sel, &[], true).unwrap();
        let slow = execute_select_with(db, &sel, &[], false).unwrap();
        prop_assert_eq!(&fast.rows, &slow.rows, "hash path diverged for `{}`", sql);
        prop_assert_eq!(fast.columns.len(), slow.columns.len());
    }
}
