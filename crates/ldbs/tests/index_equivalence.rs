//! Property tests for the local access-path layer: selecting through an
//! index must be observationally identical to the reference scan, no matter
//! what mix of data, DML history, and predicates the tables have seen — and
//! a rolled-back transaction must leave the indexes exactly as they were.

use ldbs::exec::select::execute_select_with;
use ldbs::profile::DbmsProfile;
use ldbs::Engine;
use msql_lang::{parse_statement, QueryBody, Select, Statement};
use proptest::prelude::*;

/// An indexable key value: ints and whole floats collide under SQL numeric
/// equality (`2 = 2.0`), halves sit between them in range probes, and NULL
/// never matches (equality, IN, or range).
#[derive(Debug, Clone, Copy)]
enum Key {
    Int(i64),
    Half(i64),
    Whole(i64),
    Null,
}

impl Key {
    fn sql(&self) -> String {
        match self {
            Key::Int(k) => k.to_string(),
            Key::Half(k) => format!("{k}.5"),
            Key::Whole(k) => format!("{k}.0"),
            Key::Null => "NULL".to_string(),
        }
    }
}

fn key_strategy() -> impl Strategy<Value = Key> {
    let k = -3i64..4;
    prop_oneof![
        4 => k.clone().prop_map(Key::Int),
        2 => k.clone().prop_map(Key::Half),
        2 => k.prop_map(Key::Whole),
        1 => Just(Key::Null),
    ]
}

/// One DML statement against `t`, hitting both indexed columns so index
/// maintenance (insert/remove/replace) is exercised on every path.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(Key, u8, i64),
    /// Shift the BTree-indexed key of matching rows.
    ShiftKey(Key),
    /// Rewrite the hash-indexed category of matching rows.
    Recat(u8, Key),
    Delete(Key),
}

impl Op {
    fn sql(&self) -> String {
        match self {
            Op::Insert(k, c, v) => format!("INSERT INTO t VALUES ({}, 'c{}', {v})", k.sql(), c % 3),
            Op::ShiftKey(k) => format!("UPDATE t SET k = k + 1 WHERE k < {}", k.sql()),
            Op::Recat(c, k) => format!("UPDATE t SET c = 'c{}' WHERE k = {}", c % 3, k.sql()),
            Op::Delete(k) => format!("DELETE FROM t WHERE k >= {}", k.sql()),
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), 0u8..3, -9i64..10).prop_map(|(k, c, v)| Op::Insert(k, c, v)),
        2 => key_strategy().prop_map(Op::ShiftKey),
        2 => (0u8..3, key_strategy()).prop_map(|(c, k)| Op::Recat(c, k)),
        1 => key_strategy().prop_map(Op::Delete),
    ]
}

/// A WHERE clause whose sargable conjuncts the planner may (or may not)
/// route to the indexes: equality, IN, single-sided ranges, BETWEEN, a
/// hash-only category probe, and a mixed two-column conjunction.
#[derive(Debug, Clone)]
enum Pred {
    Eq(Key),
    In(Vec<Key>),
    Cmp(u8, Key),
    Between(Key, Key),
    Cat(u8),
    EqAndCat(Key, u8),
}

impl Pred {
    fn sql(&self) -> String {
        match self {
            Pred::Eq(k) => format!("k = {}", k.sql()),
            Pred::In(ks) => {
                let items: Vec<String> = ks.iter().map(Key::sql).collect();
                format!("k IN ({})", items.join(", "))
            }
            Pred::Cmp(op, k) => {
                let op = ["<", "<=", ">", ">="][usize::from(op % 4)];
                format!("k {op} {}", k.sql())
            }
            Pred::Between(lo, hi) => format!("k BETWEEN {} AND {}", lo.sql(), hi.sql()),
            Pred::Cat(c) => format!("c = 'c{}'", c % 3),
            Pred::EqAndCat(k, c) => format!("k = {} AND c = 'c{}'", k.sql(), c % 3),
        }
    }
}

fn pred_strategy() -> impl Strategy<Value = Pred> {
    prop_oneof![
        3 => key_strategy().prop_map(Pred::Eq),
        2 => proptest::collection::vec(key_strategy(), 1..4).prop_map(Pred::In),
        3 => (0u8..4, key_strategy()).prop_map(|(op, k)| Pred::Cmp(op, k)),
        2 => (key_strategy(), key_strategy()).prop_map(|(lo, hi)| Pred::Between(lo, hi)),
        1 => (0u8..3).prop_map(Pred::Cat),
        2 => (key_strategy(), 0u8..3).prop_map(|(k, c)| Pred::EqAndCat(k, c)),
    ]
}

fn parse_select(sql: &str) -> Select {
    let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!("not a query") };
    let QueryBody::Select(sel) = q.body else { panic!("not a select") };
    sel
}

/// A fresh engine with table `t (k FLOAT, c CHAR(8), v INT)`, a BTree index
/// on `k` and a hash index on `c` (when `indexed`), and `rows` inserted.
fn build(rows: &[(Key, u8, i64)], indexed: bool) -> Engine {
    let mut e = Engine::new("svc", DbmsProfile::oracle_like());
    e.create_database("db").unwrap();
    e.execute("db", "CREATE TABLE t (k FLOAT, c CHAR(8), v INT)").unwrap();
    if indexed {
        e.execute("db", "CREATE INDEX t_k ON t (k) USING BTREE").unwrap();
        e.execute("db", "CREATE INDEX t_c ON t (c) USING HASH").unwrap();
    }
    for (k, c, v) in rows {
        e.execute("db", &format!("INSERT INTO t VALUES ({}, 'c{}', {v})", k.sql(), c % 3)).unwrap();
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Index-on equals index-off: after arbitrary DML maintained the indexes
    /// incrementally, every sargable (or not) predicate must return exactly
    /// the reference scan's rows, in the same order.
    #[test]
    fn indexed_select_matches_reference_scan(
        rows in proptest::collection::vec((key_strategy(), 0u8..3, -9i64..10), 0..12),
        ops in proptest::collection::vec(op_strategy(), 0..6),
        pred in pred_strategy(),
        residual in proptest::bool::ANY,
    ) {
        let mut e = build(&rows, true);
        for op in &ops {
            e.execute("db", &op.sql()).unwrap();
        }
        let mut sql = format!("SELECT k, c, v FROM t WHERE {}", pred.sql());
        if residual {
            sql.push_str(" AND v < 5");
        }
        let sel = parse_select(&sql);
        let db = e.database("db").unwrap();
        let fast = execute_select_with(db, &sel, &[], true).unwrap();
        let slow = execute_select_with(db, &sel, &[], false).unwrap();
        prop_assert_eq!(&fast.rows, &slow.rows, "probe diverged from scan for `{}`", sql);
    }

    /// Abort integrity: rolling back a transaction's DML must leave the
    /// indexes answering every probe exactly like a never-touched engine
    /// holding the same base rows (and like the index-off reference path).
    #[test]
    fn aborted_dml_restores_index_state(
        rows in proptest::collection::vec((key_strategy(), 0u8..3, -9i64..10), 0..10),
        ops in proptest::collection::vec(op_strategy(), 1..7),
        pred in pred_strategy(),
    ) {
        let mut touched = build(&rows, true);
        let txn = touched.begin();
        for op in &ops {
            touched.execute_in(txn, "db", &op.sql()).unwrap();
        }
        touched.rollback(txn).unwrap();
        let pristine = build(&rows, true);

        let sql = format!("SELECT k, c, v FROM t WHERE {}", pred.sql());
        let sel = parse_select(&sql);
        let fast = execute_select_with(touched.database("db").unwrap(), &sel, &[], true).unwrap();
        let slow = execute_select_with(touched.database("db").unwrap(), &sel, &[], false).unwrap();
        let fresh = execute_select_with(pristine.database("db").unwrap(), &sel, &[], true).unwrap();
        prop_assert_eq!(&fast.rows, &slow.rows, "post-abort probe diverged from scan: `{}`", sql);
        prop_assert_eq!(&fast.rows, &fresh.rows, "abort left stale index state: `{}`", sql);
    }
}
