//! Multi-threaded stress test for the engine's lock manager.
//!
//! N worker threads share one engine and run seeded random schedules of
//! two-table increment transactions — the classic AB/BA pattern that
//! manufactures both queueing and deadlock cycles. The invariants:
//!
//! * **no lost locks** — after every thread finishes, `held_locks() == 0`
//!   and a fresh transaction can lock every table;
//! * **deadlocks are detected** — across the seed matrix at least one cycle
//!   is broken, and every break surfaces as the retriable
//!   [`DbError::Deadlock`] (or as the victim's aborted state at commit),
//!   never as a hang (a wall-clock deadline guards the whole run);
//! * **no lost updates** — the summed `hits` column equals exactly
//!   2 × (committed transactions), so every commit applied both increments
//!   and every abort applied none.

use ldbs::engine::Engine;
use ldbs::error::DbError;
use ldbs::profile::DbmsProfile;
use ldbs::value::Value;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TABLES: usize = 3;
const THREADS: usize = 4;
const TXNS_PER_THREAD: usize = 12;
const RUN_DEADLINE: Duration = Duration::from_secs(30);
const WAIT_SLICE: Duration = Duration::from_millis(20);

/// Worker-thread count for the seeded matrix, overridable so CI can sweep
/// it: `LOCK_STRESS_THREADS=8 cargo test -p ldbs --test lock_stress`.
fn thread_count() -> usize {
    std::env::var("LOCK_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(THREADS)
}

fn fixture() -> Engine {
    let mut e = Engine::new("svc", DbmsProfile::oracle_like());
    e.create_database("db").unwrap();
    for t in 0..TABLES {
        e.execute("db", &format!("CREATE TABLE t{t} (id INT, hits INT)")).unwrap();
        e.execute("db", &format!("INSERT INTO t{t} VALUES (1, 0)")).unwrap();
    }
    e
}

/// Outcome of one attempted transaction.
enum TxnOutcome {
    Committed,
    DeadlockVictim,
}

/// Runs one two-table increment transaction, waiting on the lock signal
/// when enqueued and reporting deadlock victimhood instead of panicking.
fn run_txn(
    engine: &Arc<Mutex<Engine>>,
    signal: &ldbs::engine::LockSignal,
    tables: [usize; 2],
    deadline: Instant,
) -> TxnOutcome {
    let txn = engine.lock().begin();
    for t in tables {
        let sql = format!("UPDATE t{t} SET hits = hits + 1 WHERE id = 1");
        loop {
            assert!(Instant::now() < deadline, "lock wait outlived the run deadline: hang");
            let epoch = signal.epoch();
            match engine.lock().execute_in(txn, "db", &sql) {
                Ok(_) => break,
                Err(DbError::LockWait { .. }) => signal.wait_past(epoch, WAIT_SLICE),
                Err(DbError::Deadlock { .. }) => return TxnOutcome::DeadlockVictim,
                Err(e) => panic!("unexpected error under contention: {e}"),
            }
        }
    }
    match engine.lock().commit(txn) {
        Ok(()) => TxnOutcome::Committed,
        // Victimized between the last statement and the commit: the
        // detector already rolled the transaction back.
        Err(DbError::InvalidTxnState { state: "Aborted", .. }) => TxnOutcome::DeadlockVictim,
        Err(e) => panic!("unexpected commit error: {e}"),
    }
}

/// One full run: spawn the threads, drive the schedules, return
/// (committed, deadlocks) counts.
fn stress_run(seed: u64, threads: usize) -> (u64, u64) {
    let engine = Arc::new(Mutex::new(fixture()));
    let signal = engine.lock().lock_signal();
    let deadline = Instant::now() + RUN_DEADLINE;

    let mut committed = 0u64;
    let mut deadlocks = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|who| {
                let engine = Arc::clone(&engine);
                let signal = signal.clone();
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed * 1000 + who as u64);
                    let mut committed = 0u64;
                    let mut deadlocks = 0u64;
                    for _ in 0..TXNS_PER_THREAD {
                        let a = rng.gen_range(0..TABLES);
                        let b = (a + 1 + rng.gen_range(0..TABLES - 1)) % TABLES;
                        // Half the threads lock ascending, half descending:
                        // guaranteed opposite orders → cycles under load.
                        let tables =
                            if who % 2 == 0 { [a.min(b), a.max(b)] } else { [a.max(b), a.min(b)] };
                        // A victim retries the whole transaction (the error
                        // is retriable by contract); bounded so a detector
                        // bug cannot loop forever.
                        let mut settled = false;
                        for _attempt in 0..8 {
                            match run_txn(&engine, &signal, tables, deadline) {
                                TxnOutcome::Committed => {
                                    committed += 1;
                                    settled = true;
                                    break;
                                }
                                TxnOutcome::DeadlockVictim => deadlocks += 1,
                            }
                        }
                        assert!(settled, "transaction never settled after 8 deadlock retries");
                    }
                    (committed, deadlocks)
                })
            })
            .collect();
        for h in handles {
            let (c, d) = h.join().expect("stress thread panicked");
            committed += c;
            deadlocks += d;
        }
    });

    let mut e = engine.lock();
    // No lost locks: everything released, and a fresh transaction can
    // immediately lock every table.
    assert_eq!(e.held_locks(), 0, "locks leaked after all threads finished");
    let probe = e.begin();
    for t in 0..TABLES {
        e.execute_in(probe, "db", &format!("UPDATE t{t} SET hits = hits WHERE id = 1"))
            .unwrap_or_else(|err| panic!("fresh txn blocked on t{t}: {err}"));
    }
    e.rollback(probe).unwrap();

    // No lost updates: both increments of every committed transaction
    // landed, none of any aborted one.
    let mut total = 0i64;
    for t in 0..TABLES {
        let rs = e
            .execute("db", &format!("SELECT hits FROM t{t} WHERE id = 1"))
            .unwrap()
            .into_result_set()
            .unwrap();
        match rs.rows[0][0] {
            Value::Int(n) => total += n,
            ref other => panic!("unexpected value {other:?}"),
        }
    }
    assert_eq!(total as u64, 2 * committed, "lost or phantom update under contention");
    (committed, deadlocks)
}

#[test]
fn seeded_schedules_keep_lock_invariants() {
    let mut total_deadlocks = 0;
    for seed in 0..6 {
        let (committed, deadlocks) = stress_run(seed, thread_count());
        assert!(committed > 0, "seed {seed}: nothing committed");
        total_deadlocks += deadlocks;
    }
    // Opposite lock orders across 6 seeds × ≥4 threads × 12 transactions:
    // at least one cycle must have formed and been broken. At narrower
    // widths (a 2-thread CI sweep on a single core rarely interleaves
    // mid-transaction) cycles are not guaranteed, only the invariants above.
    if thread_count() >= THREADS {
        assert!(total_deadlocks > 0, "no deadlock ever detected across the seed matrix");
    }
}

#[test]
fn two_thread_abba_deadlock_is_always_broken() {
    // The minimal deterministic cycle: T1 locks t0 then t1, T2 locks t1
    // then t0, with a barrier ensuring both hold their first lock before
    // requesting the second. Exactly one must die with the retriable error.
    let engine = Arc::new(Mutex::new(fixture()));
    let signal = engine.lock().lock_signal();
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let deadline = Instant::now() + RUN_DEADLINE;

    let outcomes: Vec<TxnOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = [[0usize, 1], [1, 0]]
            .into_iter()
            .map(|order| {
                let engine = Arc::clone(&engine);
                let signal = signal.clone();
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let txn = engine.lock().begin();
                    let first = format!("UPDATE t{} SET hits = hits + 1 WHERE id = 1", order[0]);
                    engine.lock().execute_in(txn, "db", &first).unwrap();
                    barrier.wait();
                    let second = format!("UPDATE t{} SET hits = hits + 1 WHERE id = 1", order[1]);
                    loop {
                        assert!(Instant::now() < deadline, "AB/BA cycle was never broken: hang");
                        let epoch = signal.epoch();
                        match engine.lock().execute_in(txn, "db", &second) {
                            Ok(_) => break,
                            Err(DbError::LockWait { .. }) => signal.wait_past(epoch, WAIT_SLICE),
                            Err(DbError::Deadlock { .. }) => return TxnOutcome::DeadlockVictim,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    match engine.lock().commit(txn) {
                        Ok(()) => TxnOutcome::Committed,
                        Err(DbError::InvalidTxnState { state: "Aborted", .. }) => {
                            TxnOutcome::DeadlockVictim
                        }
                        Err(e) => panic!("unexpected commit error: {e}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("thread panicked")).collect()
    });

    let victims = outcomes.iter().filter(|o| matches!(o, TxnOutcome::DeadlockVictim)).count();
    let commits = outcomes.iter().filter(|o| matches!(o, TxnOutcome::Committed)).count();
    assert_eq!(victims, 1, "exactly one of the AB/BA pair must be the victim");
    assert_eq!(commits, 1, "the survivor must commit");
    assert_eq!(engine.lock().held_locks(), 0);
}

#[test]
fn long_session_memory_stays_flat_under_threads() {
    // The terminal-transaction GC (bounded retention) must hold under
    // concurrency too: thousands of transactions across threads leave only
    // the retention window behind.
    let engine = Arc::new(Mutex::new(fixture()));
    engine.lock().set_terminal_retention(32);
    std::thread::scope(|s| {
        for who in 0..THREADS {
            let engine = Arc::clone(&engine);
            s.spawn(move || {
                for i in 0..250 {
                    let t = (who + i) % TABLES;
                    engine
                        .lock()
                        .execute("db", &format!("UPDATE t{t} SET hits = hits + 1 WHERE id = 1"))
                        .unwrap();
                }
            });
        }
    });
    let e = engine.lock();
    assert!(e.tracked_txns() <= 64, "terminal transactions not GC'd: {} tracked", e.tracked_txns());
    assert_eq!(e.held_locks(), 0);
}
