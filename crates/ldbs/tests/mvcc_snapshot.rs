//! Property test: **MVCC snapshot reads equal the pre-write state**.
//!
//! For any sequence of INSERT/UPDATE/DELETE by a concurrent writer, a
//! reader that pinned its snapshot before the writer's changes sees exactly
//! the pre-write table — while the writer is active *and* after it commits
//! (repeatable read). A reader beginning after the commit sees exactly the
//! post-commit table. Readers never block: they reconstruct the snapshot
//! from the writer's undo images and the installed version chains.

use ldbs::profile::DbmsProfile;
use ldbs::txn::TxnId;
use ldbs::value::Value;
use ldbs::Engine;
use proptest::prelude::*;

/// A randomly generated DML statement over the fixture table.
#[derive(Debug, Clone)]
enum Op {
    Insert { code: i64, rate: f64 },
    UpdateRate { threshold: i64, factor: i64 },
    Delete { threshold: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..50, 0u32..10_000).prop_map(|(code, r)| Op::Insert { code, rate: r as f64 / 100.0 }),
        (0i64..50, 1i64..4).prop_map(|(threshold, factor)| Op::UpdateRate { threshold, factor }),
        (0i64..50).prop_map(|threshold| Op::Delete { threshold }),
    ]
}

fn sql_for(op: &Op) -> String {
    match op {
        Op::Insert { code, rate } => format!("INSERT INTO cars VALUES ({code}, {rate})"),
        Op::UpdateRate { threshold, factor } => {
            format!("UPDATE cars SET rate = rate * {factor} WHERE code < {threshold}")
        }
        Op::Delete { threshold } => format!("DELETE FROM cars WHERE code >= {threshold}"),
    }
}

fn fixture() -> Engine {
    let mut e = Engine::new("svc", DbmsProfile::oracle_like());
    e.create_database("db").unwrap();
    e.execute("db", "CREATE TABLE cars (code INT, rate FLOAT)").unwrap();
    for code in 0..10 {
        e.execute("db", &format!("INSERT INTO cars VALUES ({code}, {})", code * 10)).unwrap();
    }
    e
}

const SELECT: &str = "SELECT code, rate FROM cars ORDER BY code, rate";

fn read_autocommit(e: &mut Engine) -> Vec<Vec<Value>> {
    e.execute("db", SELECT).unwrap().into_result_set().unwrap().rows
}

fn read_in(e: &mut Engine, txn: TxnId) -> Vec<Vec<Value>> {
    e.execute_in(txn, "db", SELECT).unwrap().into_result_set().unwrap().rows
}

proptest! {
    #[test]
    fn snapshot_reads_equal_pre_write_state(ops in prop::collection::vec(op_strategy(), 1..8)) {
        let mut e = fixture();
        let baseline = read_autocommit(&mut e);

        let reader = e.begin();
        let writer = e.begin();
        for op in &ops {
            e.execute_in(writer, "db", &sql_for(op)).unwrap();
        }

        // The reader sees none of the writer's uncommitted changes and
        // never blocks on the writer's table lock.
        prop_assert_eq!(&read_in(&mut e, reader), &baseline);

        // The pinned snapshot survives the writer's commit: repeatable read.
        e.commit(writer).unwrap();
        prop_assert_eq!(&read_in(&mut e, reader), &baseline);
        e.rollback(reader).unwrap();

        // A reader beginning after the commit sees exactly the state an
        // unobserved serial run would have produced.
        let mut serial = fixture();
        for op in &ops {
            serial.execute("db", &sql_for(op)).unwrap();
        }
        prop_assert_eq!(read_autocommit(&mut e), read_autocommit(&mut serial));
    }

    #[test]
    fn aborted_writer_is_never_visible(ops in prop::collection::vec(op_strategy(), 1..8)) {
        let mut e = fixture();
        let baseline = read_autocommit(&mut e);

        let writer = e.begin();
        for op in &ops {
            e.execute_in(writer, "db", &sql_for(op)).unwrap();
        }
        let reader = e.begin();
        // Even a reader that begins *during* the writer's transaction sees
        // the pre-write state, and rollback changes nothing for it.
        prop_assert_eq!(&read_in(&mut e, reader), &baseline);
        e.rollback(writer).unwrap();
        prop_assert_eq!(&read_in(&mut e, reader), &baseline);
        e.commit(reader).unwrap();
        prop_assert_eq!(&read_autocommit(&mut e), &baseline);
    }
}
