//! Property tests for the local engine's transactional invariants.
//!
//! * **Rollback restores state**: any sequence of INSERT/UPDATE/DELETE inside
//!   a transaction, followed by ROLLBACK, leaves the database exactly as it
//!   was — including after a prepare.
//! * **Commit persists state**: the same sequence followed by COMMIT is
//!   equivalent to running the statements in autocommit mode.
//! * **Statement atomicity**: a failing statement inside a transaction has no
//!   effect at all.

use ldbs::profile::DbmsProfile;
use ldbs::value::Value;
use ldbs::Engine;
use proptest::prelude::*;

/// A randomly generated DML statement over the fixture table.
#[derive(Debug, Clone)]
enum Op {
    Insert { code: i64, rate: f64 },
    UpdateRate { threshold: i64, factor: i64 },
    Delete { threshold: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..50, 0u32..10_000).prop_map(|(code, r)| Op::Insert { code, rate: r as f64 / 100.0 }),
        (0i64..50, 1i64..4).prop_map(|(threshold, factor)| Op::UpdateRate { threshold, factor }),
        (0i64..50).prop_map(|threshold| Op::Delete { threshold }),
    ]
}

fn fixture() -> Engine {
    let mut e = Engine::new("svc", DbmsProfile::oracle_like());
    e.create_database("db").unwrap();
    e.execute("db", "CREATE TABLE cars (code INT, rate FLOAT)").unwrap();
    for code in 0..10 {
        e.execute("db", &format!("INSERT INTO cars VALUES ({code}, {})", code * 10)).unwrap();
    }
    e
}

fn snapshot(e: &mut Engine) -> Vec<Vec<Value>> {
    e.execute("db", "SELECT code, rate FROM cars ORDER BY code, rate")
        .unwrap()
        .into_result_set()
        .unwrap()
        .rows
}

fn sql_for(op: &Op) -> String {
    match op {
        Op::Insert { code, rate } => format!("INSERT INTO cars VALUES ({code}, {rate})"),
        Op::UpdateRate { threshold, factor } => {
            format!("UPDATE cars SET rate = rate * {factor} WHERE code < {threshold}")
        }
        Op::Delete { threshold } => format!("DELETE FROM cars WHERE code >= {threshold}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rollback_restores_exact_state(ops in proptest::collection::vec(op_strategy(), 1..12),
                                     prepare_first in any::<bool>()) {
        let mut e = fixture();
        let before = snapshot(&mut e);
        let txn = e.begin();
        for op in &ops {
            e.execute_in(txn, "db", &sql_for(op)).unwrap();
        }
        if prepare_first {
            e.prepare(txn).unwrap();
        }
        e.rollback(txn).unwrap();
        let after = snapshot(&mut e);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn commit_equals_autocommit(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        // Transactional run.
        let mut tx_engine = fixture();
        let txn = tx_engine.begin();
        for op in &ops {
            tx_engine.execute_in(txn, "db", &sql_for(op)).unwrap();
        }
        tx_engine.prepare(txn).unwrap();
        tx_engine.commit(txn).unwrap();

        // Autocommit run.
        let mut auto_engine = fixture();
        for op in &ops {
            auto_engine.execute("db", &sql_for(op)).unwrap();
        }

        prop_assert_eq!(snapshot(&mut tx_engine), snapshot(&mut auto_engine));
    }

    #[test]
    fn injected_failure_leaves_no_trace(ops in proptest::collection::vec(op_strategy(), 1..8),
                                        fail_at in 0u32..8) {
        let mut e = fixture();
        let before = snapshot(&mut e);
        e.failure_policy_mut().fail_statement_in(fail_at.min(ops.len() as u32 - 1));
        let txn = e.begin();
        let mut failed = false;
        for op in &ops {
            if e.execute_in(txn, "db", &sql_for(op)).is_err() {
                failed = true;
                break;
            }
        }
        prop_assert!(failed, "the armed failure must fire within the sequence");
        e.rollback(txn).unwrap();
        prop_assert_eq!(before, snapshot(&mut e));
    }
}
