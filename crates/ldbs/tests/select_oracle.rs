//! Differential property test: the SELECT executor against a naive Rust
//! reference over randomly generated tables and predicates.

use ldbs::profile::DbmsProfile;
use ldbs::value::Value;
use ldbs::Engine;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Pred {
    LtX(i64),
    EqY(i64),
    XltY,
    BetweenX(i64, i64),
    And(i64, i64), // x < a AND y >= b
    Or(i64, i64),  // x = a OR y = b
}

impl Pred {
    fn sql(&self) -> String {
        match self {
            Pred::LtX(c) => format!("x < {c}"),
            Pred::EqY(c) => format!("y = {c}"),
            Pred::XltY => "x < y".to_string(),
            Pred::BetweenX(a, b) => format!("x BETWEEN {a} AND {b}"),
            Pred::And(a, b) => format!("x < {a} AND y >= {b}"),
            Pred::Or(a, b) => format!("x = {a} OR y = {b}"),
        }
    }

    fn eval(&self, x: i64, y: i64) -> bool {
        match self {
            Pred::LtX(c) => x < *c,
            Pred::EqY(c) => y == *c,
            Pred::XltY => x < y,
            Pred::BetweenX(a, b) => x >= *a && x <= *b,
            Pred::And(a, b) => x < *a && y >= *b,
            Pred::Or(a, b) => x == *a || y == *b,
        }
    }
}

fn pred_strategy() -> impl Strategy<Value = Pred> {
    let c = -20i64..20;
    prop_oneof![
        c.clone().prop_map(Pred::LtX),
        c.clone().prop_map(Pred::EqY),
        Just(Pred::XltY),
        (c.clone(), c.clone()).prop_map(|(a, b)| Pred::BetweenX(a.min(b), a.max(b))),
        (c.clone(), c.clone()).prop_map(|(a, b)| Pred::And(a, b)),
        (c.clone(), c).prop_map(|(a, b)| Pred::Or(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn filter_agrees_with_reference(
        rows in proptest::collection::vec((-20i64..20, -20i64..20), 0..40),
        pred in pred_strategy(),
    ) {
        let mut e = Engine::new("svc", DbmsProfile::oracle_like());
        e.create_database("db").unwrap();
        e.execute("db", "CREATE TABLE t (x INT, y INT)").unwrap();
        for (x, y) in &rows {
            e.execute("db", &format!("INSERT INTO t VALUES ({x}, {y})")).unwrap();
        }
        let got = e
            .execute("db", &format!("SELECT x, y FROM t WHERE {} ORDER BY x, y", pred.sql()))
            .unwrap()
            .into_result_set()
            .unwrap();
        let mut expected: Vec<(i64, i64)> =
            rows.iter().copied().filter(|(x, y)| pred.eval(*x, *y)).collect();
        expected.sort();
        let got_pairs: Vec<(i64, i64)> = got
            .rows
            .iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(x), Value::Int(y)) => (*x, *y),
                other => panic!("{other:?}"),
            })
            .collect();
        prop_assert_eq!(got_pairs, expected, "predicate: {}", pred.sql());
    }

    #[test]
    fn aggregates_agree_with_reference(
        rows in proptest::collection::vec((-20i64..20, -20i64..20), 0..40),
    ) {
        let mut e = Engine::new("svc", DbmsProfile::oracle_like());
        e.create_database("db").unwrap();
        e.execute("db", "CREATE TABLE t (x INT, y INT)").unwrap();
        for (x, y) in &rows {
            e.execute("db", &format!("INSERT INTO t VALUES ({x}, {y})")).unwrap();
        }
        let got = e
            .execute("db", "SELECT COUNT(*), SUM(x), MIN(y), MAX(y) FROM t")
            .unwrap()
            .into_result_set()
            .unwrap();
        prop_assert_eq!(&got.rows[0][0], &Value::Int(rows.len() as i64));
        if rows.is_empty() {
            prop_assert_eq!(&got.rows[0][1], &Value::Null);
            prop_assert_eq!(&got.rows[0][2], &Value::Null);
        } else {
            let sum: i64 = rows.iter().map(|(x, _)| x).sum();
            let min = rows.iter().map(|(_, y)| *y).min().unwrap();
            let max = rows.iter().map(|(_, y)| *y).max().unwrap();
            prop_assert_eq!(&got.rows[0][1], &Value::Int(sum));
            prop_assert_eq!(&got.rows[0][2], &Value::Int(min));
            prop_assert_eq!(&got.rows[0][3], &Value::Int(max));
        }
    }

    #[test]
    fn group_by_agrees_with_reference(
        rows in proptest::collection::vec((0i64..5, -20i64..20), 0..40),
    ) {
        let mut e = Engine::new("svc", DbmsProfile::oracle_like());
        e.create_database("db").unwrap();
        e.execute("db", "CREATE TABLE t (g INT, v INT)").unwrap();
        for (g, v) in &rows {
            e.execute("db", &format!("INSERT INTO t VALUES ({g}, {v})")).unwrap();
        }
        let got = e
            .execute("db", "SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g ORDER BY g")
            .unwrap()
            .into_result_set()
            .unwrap();
        let mut expected: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for (g, v) in &rows {
            let e = expected.entry(*g).or_insert((0, 0));
            e.0 += 1;
            e.1 += v;
        }
        prop_assert_eq!(got.rows.len(), expected.len());
        for (row, (g, (count, sum))) in got.rows.iter().zip(expected) {
            prop_assert_eq!(&row[0], &Value::Int(g));
            prop_assert_eq!(&row[1], &Value::Int(count));
            prop_assert_eq!(&row[2], &Value::Int(sum));
        }
    }
}
