//! SQL behaviour tests for the local engine: the semantics the MSQL layer
//! relies on, exercised through the public `Engine` API.

use ldbs::profile::DbmsProfile;
use ldbs::value::Value;
use ldbs::{DbError, Engine};

fn engine() -> Engine {
    let mut e = Engine::new("svc", DbmsProfile::oracle_like());
    e.create_database("db").unwrap();
    e.execute(
        "db",
        "CREATE TABLE emp (id INT NOT NULL, name CHAR(20), dept CHAR(10), salary FLOAT, hired DATE)",
    )
    .unwrap();
    for (id, name, dept, salary, hired) in [
        (1, "'ana'", "'eng'", "100.0", "'2020-01-01'"),
        (2, "'bo'", "'eng'", "120.0", "'2021-06-15'"),
        (3, "'cy'", "'ops'", "90.0", "NULL"),
        (4, "'dee'", "'ops'", "NULL", "'2019-03-30'"),
        (5, "NULL", "'hr'", "80.0", "'2022-11-02'"),
    ] {
        e.execute(
            "db",
            &format!("INSERT INTO emp VALUES ({id}, {name}, {dept}, {salary}, {hired})"),
        )
        .unwrap();
    }
    e
}

fn rows(e: &mut Engine, sql: &str) -> Vec<Vec<Value>> {
    e.execute("db", sql).unwrap().into_result_set().unwrap().rows
}

#[test]
fn where_null_comparisons_filter_out() {
    let mut e = engine();
    // salary = NULL is unknown → no rows, even for the NULL salary row.
    assert!(rows(&mut e, "SELECT id FROM emp WHERE salary = NULL").is_empty());
    assert_eq!(rows(&mut e, "SELECT id FROM emp WHERE salary IS NULL").len(), 1);
    assert_eq!(rows(&mut e, "SELECT id FROM emp WHERE salary IS NOT NULL").len(), 4);
}

#[test]
fn order_by_puts_nulls_first_and_respects_desc() {
    let mut e = engine();
    let got = rows(&mut e, "SELECT id FROM emp ORDER BY salary");
    assert_eq!(got[0][0], Value::Int(4)); // NULL salary first
    let got = rows(&mut e, "SELECT id FROM emp ORDER BY salary DESC");
    assert_eq!(got[0][0], Value::Int(2)); // highest salary first
    assert_eq!(got[4][0], Value::Int(4)); // NULL last under DESC
}

#[test]
fn multi_key_order_by() {
    let mut e = engine();
    let got = rows(&mut e, "SELECT dept, id FROM emp ORDER BY dept, id DESC");
    let flat: Vec<(String, i64)> = got
        .iter()
        .map(|r| match (&r[0], &r[1]) {
            (Value::Str(d), Value::Int(i)) => (d.clone(), *i),
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(
        flat,
        vec![
            ("eng".into(), 2),
            ("eng".into(), 1),
            ("hr".into(), 5),
            ("ops".into(), 4),
            ("ops".into(), 3),
        ]
    );
}

#[test]
fn group_by_multiple_keys_and_having() {
    let mut e = engine();
    e.execute("db", "INSERT INTO emp VALUES (6, 'eli', 'eng', 100.0, NULL)").unwrap();
    let got = rows(
        &mut e,
        "SELECT dept, salary, COUNT(*) AS n FROM emp
         GROUP BY dept, salary HAVING COUNT(*) > 1 ORDER BY dept",
    );
    // eng/100.0 appears twice.
    assert_eq!(got.len(), 1);
    assert_eq!(got[0][0], Value::Str("eng".into()));
    assert_eq!(got[0][2], Value::Int(2));
}

#[test]
fn aggregates_ignore_nulls() {
    let mut e = engine();
    let got = rows(
        &mut e,
        "SELECT COUNT(*), COUNT(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp",
    );
    assert_eq!(got[0][0], Value::Int(5));
    assert_eq!(got[0][1], Value::Int(4)); // NULL salary not counted
    assert_eq!(got[0][2], Value::Float((100.0 + 120.0 + 90.0 + 80.0) / 4.0));
    assert_eq!(got[0][3], Value::Float(80.0));
    assert_eq!(got[0][4], Value::Float(120.0));
}

#[test]
fn distinct_on_multiple_columns() {
    let mut e = engine();
    e.execute("db", "INSERT INTO emp VALUES (7, 'fay', 'eng', 100.0, NULL)").unwrap();
    let all = rows(&mut e, "SELECT dept, salary FROM emp WHERE dept = 'eng'");
    assert_eq!(all.len(), 3);
    let distinct = rows(&mut e, "SELECT DISTINCT dept, salary FROM emp WHERE dept = 'eng'");
    assert_eq!(distinct.len(), 2); // (eng,100) deduped, (eng,120) kept
}

#[test]
fn in_between_like_combinations() {
    let mut e = engine();
    assert_eq!(rows(&mut e, "SELECT id FROM emp WHERE dept IN ('eng', 'hr') ORDER BY id").len(), 3);
    assert_eq!(
        rows(&mut e, "SELECT id FROM emp WHERE salary BETWEEN 85 AND 105 ORDER BY id").len(),
        2
    );
    assert_eq!(rows(&mut e, "SELECT id FROM emp WHERE name LIKE '%y'").len(), 1);
    assert_eq!(rows(&mut e, "SELECT id FROM emp WHERE name LIKE '_o'").len(), 1);
    // NOT LIKE over a NULL name is unknown → filtered out.
    assert_eq!(rows(&mut e, "SELECT id FROM emp WHERE name NOT LIKE 'q%'").len(), 4);
}

#[test]
fn correlated_exists_and_in() {
    let mut e = engine();
    e.execute("db", "CREATE TABLE bonus (emp_id INT, amount FLOAT)").unwrap();
    e.execute("db", "INSERT INTO bonus VALUES (1, 10.0)").unwrap();
    e.execute("db", "INSERT INTO bonus VALUES (3, 5.0)").unwrap();
    let got = rows(
        &mut e,
        "SELECT id FROM emp WHERE EXISTS (SELECT 1 FROM bonus WHERE bonus.emp_id = emp.id) ORDER BY id",
    );
    assert_eq!(
        got.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
        vec![Value::Int(1), Value::Int(3)]
    );
    let got =
        rows(&mut e, "SELECT id FROM emp WHERE id NOT IN (SELECT emp_id FROM bonus) ORDER BY id");
    assert_eq!(got.len(), 3);
}

#[test]
fn scalar_subquery_comparison_against_aggregate() {
    let mut e = engine();
    let got =
        rows(&mut e, "SELECT id FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) ORDER BY id");
    // avg = 97.5; above: 100 (id 1) and 120 (id 2).
    assert_eq!(got.len(), 2);
}

#[test]
fn not_null_constraint_enforced_on_update_too() {
    let mut e = engine();
    let err = e.execute("db", "UPDATE emp SET id = NULL WHERE id = 1");
    assert!(matches!(err, Err(DbError::NullViolation(_))), "{err:?}");
    // And the statement had no partial effect.
    assert_eq!(rows(&mut e, "SELECT id FROM emp WHERE id = 1").len(), 1);
}

#[test]
fn insert_select_with_reordered_column_list() {
    let mut e = engine();
    e.execute("db", "CREATE TABLE names (label CHAR(20), key INT)").unwrap();
    e.execute("db", "INSERT INTO names (key, label) SELECT id, name FROM emp WHERE dept = 'eng'")
        .unwrap();
    let got = rows(&mut e, "SELECT label, key FROM names ORDER BY key");
    assert_eq!(got[0][0], Value::Str("ana".into()));
    assert_eq!(got[0][1], Value::Int(1));
}

#[test]
fn three_way_join() {
    let mut e = engine();
    e.execute("db", "CREATE TABLE dept (code CHAR(10), floor INT)").unwrap();
    e.execute("db", "INSERT INTO dept VALUES ('eng', 3)").unwrap();
    e.execute("db", "INSERT INTO dept VALUES ('ops', 1)").unwrap();
    e.execute("db", "CREATE TABLE bonus (emp_id INT, amount FLOAT)").unwrap();
    e.execute("db", "INSERT INTO bonus VALUES (1, 10.0)").unwrap();
    let got = rows(
        &mut e,
        "SELECT emp.name, dept.floor, bonus.amount
         FROM emp, dept, bonus
         WHERE emp.dept = dept.code AND emp.id = bonus.emp_id",
    );
    assert_eq!(got.len(), 1);
    assert_eq!(got[0][0], Value::Str("ana".into()));
    assert_eq!(got[0][1], Value::Int(3));
}

#[test]
fn arithmetic_in_projection_and_alias() {
    let mut e = engine();
    let rs = e
        .execute("db", "SELECT id, salary * 1.1 AS raised FROM emp WHERE id = 1")
        .unwrap()
        .into_result_set()
        .unwrap();
    assert_eq!(rs.columns[1].name, "raised");
    assert_eq!(rs.rows[0][1], Value::Float(110.00000000000001));
}

#[test]
fn delete_everything_then_aggregate() {
    let mut e = engine();
    e.execute("db", "DELETE FROM emp").unwrap();
    let got = rows(&mut e, "SELECT COUNT(*), MAX(salary) FROM emp");
    assert_eq!(got[0][0], Value::Int(0));
    assert_eq!(got[0][1], Value::Null);
}

#[test]
fn date_columns_store_and_compare_as_text() {
    let mut e = engine();
    let got = rows(&mut e, "SELECT id FROM emp WHERE hired > '2020-12-31' ORDER BY id");
    assert_eq!(got.len(), 2); // 2021-06-15 and 2022-11-02
}

#[test]
fn division_by_zero_yields_null_not_error() {
    let mut e = engine();
    let got = rows(&mut e, "SELECT salary / 0 FROM emp WHERE id = 1");
    assert_eq!(got[0][0], Value::Null);
}

#[test]
fn select_without_from() {
    let mut e = engine();
    let got = rows(&mut e, "SELECT 1 + 2 AS three");
    assert_eq!(got, vec![vec![Value::Int(3)]]);
}

#[test]
fn self_join_with_aliases() {
    let mut e = engine();
    // Pairs of eng employees with different ids.
    let got = rows(
        &mut e,
        "SELECT a.id, b.id FROM emp a, emp b
         WHERE a.dept = 'eng' AND b.dept = 'eng' AND a.id < b.id",
    );
    assert_eq!(got, vec![vec![Value::Int(1), Value::Int(2)]]);
}

#[test]
fn subquery_cache_keeps_correlated_subqueries_correct() {
    // Each row compares against a *correlated* subquery; the cache must not
    // leak one row's result into another's.
    let mut e = engine();
    let got = rows(
        &mut e,
        "SELECT id FROM emp e WHERE salary = (SELECT MAX(salary) FROM emp x WHERE x.dept = e.dept) ORDER BY id",
    );
    // Max per dept: eng→120 (id 2), ops→90 (id 3), hr→80 (id 5).
    assert_eq!(
        got.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
        vec![Value::Int(2), Value::Int(3), Value::Int(5)]
    );
}

#[test]
fn subquery_cache_consistent_for_uncorrelated() {
    // Uncorrelated: every row sees the same MIN; exactly the reservation
    // pattern of §3.4.
    let mut e = engine();
    let got = rows(&mut e, "SELECT id FROM emp WHERE salary = (SELECT MIN(salary) FROM emp)");
    assert_eq!(got, vec![vec![Value::Int(5)]]);
}

#[test]
fn update_with_uncorrelated_subquery_snapshot_semantics() {
    // The MIN is computed against the pre-statement state; the cache must
    // not observe rows mutated earlier in the same statement.
    let mut e = engine();
    e.execute("db", "UPDATE emp SET salary = 0 WHERE salary = (SELECT MIN(salary) FROM emp)")
        .unwrap();
    let got = rows(&mut e, "SELECT id FROM emp WHERE salary = 0");
    assert_eq!(got, vec![vec![Value::Int(5)]]);
}
