//! Abstract syntax tree for MSQL.
//!
//! The tree covers plain SQL plus every MSQL construct used by the ICDE'93
//! paper. Names are [`WildName`]s throughout: after parsing they may contain
//! `%` wildcards; the multidatabase translator replaces them with concrete
//! names before any statement is shipped to a local database system.

use crate::ident::WildName;

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// SQL NULL.
    Null,
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal (`TRUE`/`FALSE`).
    Bool(bool),
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// Equality `=`.
    Eq,
    /// Inequality `<>`.
    NotEq,
    /// Less than.
    Lt,
    /// Less than or equal.
    LtEq,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    GtEq,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// String concatenation `||`.
    Concat,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Concat => "||",
        }
    }

    /// True for comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// A (possibly qualified, possibly wild) column reference:
/// `[database.][table.]column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional database qualifier.
    pub database: Option<WildName>,
    /// Optional table (or semantic-variable) qualifier.
    pub table: Option<WildName>,
    /// Column name (or semantic-variable component).
    pub column: WildName,
}

impl ColumnRef {
    /// An unqualified column reference.
    pub fn bare(column: impl Into<WildName>) -> Self {
        ColumnRef { database: None, table: None, column: column.into() }
    }

    /// A `table.column` reference.
    pub fn with_table(table: impl Into<WildName>, column: impl Into<WildName>) -> Self {
        ColumnRef { database: None, table: Some(table.into()), column: column.into() }
    }

    /// A fully qualified `database.table.column` reference.
    pub fn full(
        database: impl Into<WildName>,
        table: impl Into<WildName>,
        column: impl Into<WildName>,
    ) -> Self {
        ColumnRef {
            database: Some(database.into()),
            table: Some(table.into()),
            column: column.into(),
        }
    }

    /// True if any component carries a `%` wildcard.
    pub fn is_multiple(&self) -> bool {
        self.database.as_ref().map(WildName::is_multiple).unwrap_or(false)
            || self.table.as_ref().map(WildName::is_multiple).unwrap_or(false)
            || self.column.is_multiple()
    }
}

/// Aggregate function kinds recognised by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateKind {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
}

impl AggregateKind {
    /// Parses an aggregate name, case-insensitively.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggregateKind::Count),
            "sum" => Some(AggregateKind::Sum),
            "avg" => Some(AggregateKind::Avg),
            "min" => Some(AggregateKind::Min),
            "max" => Some(AggregateKind::Max),
            _ => None,
        }
    }

    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateKind::Count => "COUNT",
            AggregateKind::Sum => "SUM",
            AggregateKind::Avg => "AVG",
            AggregateKind::Min => "MIN",
            AggregateKind::Max => "MAX",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Aggregate call, e.g. `MIN(snu)`. `COUNT(*)` has `arg == None`.
    Aggregate {
        /// Which aggregate.
        kind: AggregateKind,
        /// Argument; `None` means `*`.
        arg: Option<Box<Expr>>,
        /// Whether `DISTINCT` was specified.
        distinct: bool,
    },
    /// Scalar function call (e.g. `UPPER(x)`); the multidatabase layer also
    /// uses these for MSQL's dynamic attribute transformations.
    Function {
        /// Function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Scalar subquery: `( SELECT ... )` used as a value.
    Subquery(Box<Select>),
    /// `expr IN (e1, e2, ...)`.
    InList {
        /// Probe expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr IN ( SELECT ... )`.
    InSubquery {
        /// Probe expression.
        expr: Box<Expr>,
        /// The subquery producing candidates.
        subquery: Box<Select>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Probe expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Probe expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr LIKE pattern` (pattern uses SQL `%`/`_`).
    Like {
        /// Probe expression.
        expr: Box<Expr>,
        /// Pattern expression (usually a string literal).
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `EXISTS ( SELECT ... )`.
    Exists {
        /// The subquery.
        subquery: Box<Select>,
        /// True for `NOT EXISTS`.
        negated: bool,
    },
}

impl Expr {
    /// Shorthand for a column expression.
    pub fn col(c: ColumnRef) -> Self {
        Expr::Column(c)
    }

    /// Shorthand for a literal.
    pub fn lit(l: Literal) -> Self {
        Expr::Literal(l)
    }

    /// Builds `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary { left: Box::new(self), op: BinaryOp::And, right: Box::new(other) }
    }

    /// Visits every column reference in the expression tree.
    pub fn walk_columns<'a>(&'a self, f: &mut impl FnMut(&'a ColumnRef)) {
        match self {
            Expr::Column(c) => f(c),
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } => expr.walk_columns(f),
            Expr::Binary { left, right, .. } => {
                left.walk_columns(f);
                right.walk_columns(f);
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.walk_columns(f);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk_columns(f);
                }
            }
            Expr::Subquery(_) | Expr::Exists { .. } => {
                // Subquery scopes are resolved separately.
            }
            Expr::InList { expr, list, .. } => {
                expr.walk_columns(f);
                for e in list {
                    e.walk_columns(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk_columns(f),
            Expr::Between { expr, low, high, .. } => {
                expr.walk_columns(f);
                low.walk_columns(f);
                high.walk_columns(f);
            }
            Expr::IsNull { expr, .. } => expr.walk_columns(f),
            Expr::Like { expr, pattern, .. } => {
                expr.walk_columns(f);
                pattern.walk_columns(f);
            }
        }
    }

    /// True if the expression (outside of nested subqueries) contains any
    /// multiple identifier.
    pub fn has_multiple_identifier(&self) -> bool {
        let mut found = false;
        self.walk_columns(&mut |c| {
            if c.is_multiple() {
                found = true;
            }
        });
        found
    }

    /// True if the expression contains an aggregate call at any depth
    /// (outside nested subqueries).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column(_) | Expr::Literal(_) | Expr::Subquery(_) | Expr::Exists { .. } => false,
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Function { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
        }
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `table.*`.
    QualifiedWildcard(WildName),
    /// An expression, optionally aliased, optionally marked *optional* with
    /// MSQL's `~` designator (schema-heterogeneity resolution, paper §2).
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<String>,
        /// True when prefixed with `~`: databases lacking the column still
        /// participate, producing a table without it.
        optional: bool,
    },
}

/// A table reference in a FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Optional database qualifier (`avis.cars`).
    pub database: Option<WildName>,
    /// Table (or multitable / semantic-variable) name; may be wild.
    pub table: WildName,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// An unqualified table reference.
    pub fn named(table: impl Into<WildName>) -> Self {
        TableRef { database: None, table: table.into(), alias: None }
    }

    /// The name this table is known by inside the query (alias if present).
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or_else(|| self.table.as_str())
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Key expression.
    pub expr: Expr,
    /// Direction.
    pub order: SortOrder,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// FROM tables (implicit cross join, restricted by WHERE — SQL-89 style,
    /// as in the paper's examples).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT n` row cap, applied after ORDER BY and DISTINCT.
    pub limit: Option<u64>,
}

impl Select {
    /// An empty SELECT skeleton used by builders and tests.
    pub fn new() -> Self {
        Select {
            distinct: false,
            items: Vec::new(),
            from: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        }
    }
}

impl Default for Select {
    fn default() -> Self {
        Select::new()
    }
}

/// Source of rows for INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (..), (..)`.
    Values(Vec<Vec<Expr>>),
    /// `INSERT ... SELECT`.
    Select(Box<Select>),
}

/// An INSERT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table (possibly database-qualified, possibly wild).
    pub table: TableRef,
    /// Explicit column list, if given.
    pub columns: Vec<WildName>,
    /// Row source.
    pub source: InsertSource,
}

/// One `SET col = expr` assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Target column (may be wild before expansion).
    pub column: WildName,
    /// New value.
    pub value: Expr,
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: TableRef,
    /// SET assignments.
    pub assignments: Vec<Assignment>,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: TableRef,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
}

/// SQL column types supported by the engine (the GDD stores name, type and
/// width, exactly the information the paper lists in §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeName {
    /// `INT` / `INTEGER`.
    Int,
    /// `FLOAT` / `REAL` / `NUMERIC`.
    Float,
    /// `CHAR(width)` / `VARCHAR(width)`; width 0 means unbounded.
    Char(u32),
    /// `BOOLEAN`.
    Bool,
    /// `DATE` (stored as ISO-8601 text).
    Date,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub type_name: TypeName,
    /// Whether NULLs are forbidden.
    pub not_null: bool,
}

/// CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Target (possibly database-qualified) table name.
    pub table: TableRef,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
}

/// DROP TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct DropTable {
    /// Target table.
    pub table: TableRef,
}

/// The physical shape requested by `CREATE INDEX ... USING <method>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexMethod {
    /// `USING HASH`: equality/`IN` probes only.
    Hash,
    /// `USING BTREE` (the default): equality, `IN`, and range probes.
    Btree,
}

/// `CREATE INDEX <name> ON <table> (<column>) [USING HASH|BTREE]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Index name.
    pub name: String,
    /// Target (possibly database-qualified) table.
    pub table: TableRef,
    /// The single indexed column.
    pub column: String,
    /// Physical shape; defaults to `Btree` when `USING` is omitted.
    pub method: IndexMethod,
}

/// `DROP INDEX <name> ON <table>`.
#[derive(Debug, Clone, PartialEq)]
pub struct DropIndex {
    /// Index name.
    pub name: String,
    /// The table the index belongs to.
    pub table: TableRef,
}

/// One element of a USE scope: a database (or multidatabase) name with an
/// optional alias and the ICDE'93 `VITAL` designator.
#[derive(Debug, Clone, PartialEq)]
pub struct UseElement {
    /// Database name.
    pub database: WildName,
    /// `(db alias)` alias, if given.
    pub alias: Option<String>,
    /// True when designated `VITAL` (paper §3.2).
    pub vital: bool,
}

/// The `USE` statement defining the current query scope (paper §2, extended
/// in §3.2 with `VITAL`).
#[derive(Debug, Clone, PartialEq)]
pub struct UseStatement {
    /// True for `USE CURRENT ...`, which extends rather than replaces the
    /// scope.
    pub current: bool,
    /// Scope elements in declaration order.
    pub elements: Vec<UseElement>,
}

impl UseStatement {
    /// The vital set: names (alias if present) of all VITAL elements.
    pub fn vital_set(&self) -> Vec<&str> {
        self.elements
            .iter()
            .filter(|e| e.vital)
            .map(|e| e.alias.as_deref().unwrap_or_else(|| e.database.as_str()))
            .collect()
    }
}

/// An explicit semantic variable: `LET car.type.status BE
/// cars.cartype.carst vehicle.vty.vstat` (paper §2).
///
/// `names` is the variable path introduced on the left of `BE`; `bindings`
/// holds one concrete path per database in scope, in USE order.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticVariable {
    /// The variable path (e.g. `["car", "type", "status"]`).
    pub names: Vec<String>,
    /// Per-database bindings (e.g. `[["cars","cartype","carst"],
    /// ["vehicle","vty","vstat"]]`).
    pub bindings: Vec<Vec<String>>,
}

/// A LET statement introducing one or more semantic variables.
#[derive(Debug, Clone, PartialEq)]
pub struct LetStatement {
    /// The variables.
    pub variables: Vec<SemanticVariable>,
}

/// A compensation clause: `COMP <db|alias> <subquery>` (paper §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct CompClause {
    /// Database (or alias) whose subquery this compensates.
    pub database: WildName,
    /// The compensating statement, expressed in the local database's own
    /// names (it is shipped verbatim).
    pub statement: Box<Statement>,
}

/// The body of an MSQL manipulation statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    /// A retrieval query.
    Select(Select),
    /// A multiple insert.
    Insert(Insert),
    /// A multiple update.
    Update(Update),
    /// A multiple delete.
    Delete(Delete),
}

/// A full MSQL manipulation statement: optional USE scope, LET declarations,
/// a body, and optional COMP clauses (grammar of §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct MsqlQuery {
    /// The scope, if the query carries its own USE.
    pub use_clause: Option<UseStatement>,
    /// Semantic-variable declarations.
    pub lets: Vec<LetStatement>,
    /// The statement body.
    pub body: QueryBody,
    /// Compensation clauses, one per non-2PC vital database.
    pub comps: Vec<CompClause>,
}

/// One acceptable termination state: a conjunction of database names/aliases
/// whose subtransactions must commit (paper §3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptableState {
    /// The conjunction, e.g. `["continental", "national"]`.
    pub databases: Vec<WildName>,
}

/// `BEGIN MULTITRANSACTION ... COMMIT <states> END MULTITRANSACTION`
/// (paper §3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct Multitransaction {
    /// The component MSQL queries, in program order.
    pub queries: Vec<MsqlQuery>,
    /// Acceptable termination states in preference order; an implicit OR is
    /// assumed between them.
    pub acceptable_states: Vec<AcceptableState>,
}

/// Commit behaviour a service advertises for a statement class
/// (`COMMIT`/`NOCOMMIT` in the INCORPORATE grammar, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitCapability {
    /// The LDBMS automatically commits the operation (no visible
    /// prepared-to-commit state).
    AutoCommit,
    /// The LDBMS exposes a two-phase-commit interface for the operation.
    TwoPhase,
}

/// `INCORPORATE SERVICE` statement (paper §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Incorporate {
    /// Service (LDBMS) name.
    pub service: String,
    /// `SITE <site>`, if given.
    pub site: Option<String>,
    /// Whether the LDBMS supports multiple databases (`CONNECT`) or a single
    /// default one (`NOCONNECT`).
    pub multi_database: bool,
    /// Default commit mode for DML.
    pub commit_mode: CommitCapability,
    /// Commit mode for CREATE statements, if it differs.
    pub create_mode: Option<CommitCapability>,
    /// Commit mode for INSERT statements, if it differs.
    pub insert_mode: Option<CommitCapability>,
    /// Commit mode for DROP statements, if it differs.
    pub drop_mode: Option<CommitCapability>,
}

/// What an IMPORT statement imports.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportItem {
    /// All public tables of the database.
    AllPublicTables,
    /// One table, optionally restricted to specific columns.
    Table {
        /// The table name.
        table: String,
        /// Columns to import; empty means the whole definition.
        columns: Vec<String>,
    },
    /// One view, optionally restricted to specific columns.
    View {
        /// The view name.
        view: String,
        /// Columns to import; empty means the whole definition.
        columns: Vec<String>,
    },
}

/// `IMPORT DATABASE <db> FROM SERVICE <service> ...` (paper §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Database whose schema is imported.
    pub database: String,
    /// Service hosting it.
    pub service: String,
    /// What to import.
    pub item: ImportItem,
}

/// Events an interdatabase trigger can fire on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerEvent {
    /// After a committed UPDATE.
    Update,
    /// After a committed INSERT.
    Insert,
    /// After a committed DELETE.
    Delete,
}

impl TriggerEvent {
    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            TriggerEvent::Update => "UPDATE",
            TriggerEvent::Insert => "INSERT",
            TriggerEvent::Delete => "DELETE",
        }
    }
}

/// `CREATE TRIGGER <name> ON <db>.<table> AFTER <event> EXECUTE <stmt>` —
/// MSQL's interdatabase triggers (§2: "definition of interdatabase
/// triggers"). The action is a full MSQL statement executed at the
/// multidatabase level.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTrigger {
    /// Trigger name (unique in the federation).
    pub name: String,
    /// Watched database.
    pub database: WildName,
    /// Watched table.
    pub table: WildName,
    /// Firing event.
    pub event: TriggerEvent,
    /// The MSQL statement to execute when the trigger fires.
    pub action: Box<Statement>,
}

/// Any top-level statement.
// Variant sizes are dominated by `Query`; statements are parsed once and
// moved rarely, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A manipulation statement (optionally with USE/LET/COMP attached).
    Query(MsqlQuery),
    /// A standalone USE changing the session scope.
    Use(UseStatement),
    /// A standalone LET adding session semantic variables.
    Let(LetStatement),
    /// A multitransaction block.
    Multitransaction(Multitransaction),
    /// Service incorporation.
    Incorporate(Incorporate),
    /// Schema import.
    Import(Import),
    /// `CREATE DATABASE <name>`.
    CreateDatabase(String),
    /// `DROP DATABASE <name>`.
    DropDatabase(String),
    /// `CREATE TABLE`.
    CreateTable(CreateTable),
    /// `DROP TABLE`.
    DropTable(DropTable),
    /// `CREATE INDEX`.
    CreateIndex(CreateIndex),
    /// `DROP INDEX`.
    DropIndex(DropIndex),
    /// Interdatabase trigger definition.
    CreateTrigger(CreateTrigger),
    /// `DROP TRIGGER <name>`.
    DropTrigger(String),
    /// Global `COMMIT` — a synchronization point for the vital set (§3.2.2).
    Commit,
    /// Global `ROLLBACK`.
    Rollback,
    /// `EXPLAIN <statement>`: execute the target with tracing and return the
    /// measured profile instead of its outcome.
    Explain(Box<Statement>),
    /// `ANALYZE [<table>]`: collect optimizer statistics for one table, or —
    /// without a target — for every table of the database in scope.
    Analyze(Option<TableRef>),
}

impl Statement {
    /// Wraps a bare SELECT into a statement.
    pub fn select(s: Select) -> Statement {
        Statement::Query(MsqlQuery {
            use_clause: None,
            lets: Vec::new(),
            body: QueryBody::Select(s),
            comps: Vec::new(),
        })
    }

    /// Wraps a bare UPDATE into a statement.
    pub fn update(u: Update) -> Statement {
        Statement::Query(MsqlQuery {
            use_clause: None,
            lets: Vec::new(),
            body: QueryBody::Update(u),
            comps: Vec::new(),
        })
    }
}

/// A parsed script: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// The statements in source order.
    pub statements: Vec<Statement>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_wildcard_detection() {
        assert!(ColumnRef::bare("%code").is_multiple());
        assert!(!ColumnRef::bare("code").is_multiple());
        assert!(ColumnRef::with_table("flight%", "rate").is_multiple());
        assert!(ColumnRef::full("avis%", "cars", "rate").is_multiple());
    }

    #[test]
    fn vital_set_uses_aliases() {
        let use_stmt = UseStatement {
            current: false,
            elements: vec![
                UseElement {
                    database: "continental".into(),
                    alias: Some("cont".into()),
                    vital: true,
                },
                UseElement { database: "delta".into(), alias: None, vital: false },
                UseElement { database: "united".into(), alias: None, vital: true },
            ],
        };
        assert_eq!(use_stmt.vital_set(), vec!["cont", "united"]);
    }

    #[test]
    fn expr_walk_columns_sees_nested() {
        let e = Expr::Binary {
            left: Box::new(Expr::col(ColumnRef::bare("a"))),
            op: BinaryOp::And,
            right: Box::new(Expr::IsNull {
                expr: Box::new(Expr::col(ColumnRef::bare("b%"))),
                negated: false,
            }),
        };
        let mut seen = Vec::new();
        e.walk_columns(&mut |c| seen.push(c.column.as_str().to_string()));
        assert_eq!(seen, vec!["a", "b%"]);
        assert!(e.has_multiple_identifier());
    }

    #[test]
    fn contains_aggregate_detects_nesting() {
        let agg = Expr::Aggregate {
            kind: AggregateKind::Min,
            arg: Some(Box::new(Expr::col(ColumnRef::bare("snu")))),
            distinct: false,
        };
        let e = Expr::Binary {
            left: Box::new(Expr::lit(Literal::Int(1))),
            op: BinaryOp::Add,
            right: Box::new(agg),
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::lit(Literal::Int(1)).contains_aggregate());
    }

    #[test]
    fn table_ref_binding_name_prefers_alias() {
        let mut t = TableRef::named("cars");
        assert_eq!(t.binding_name(), "cars");
        t.alias = Some("c".into());
        assert_eq!(t.binding_name(), "c");
    }

    #[test]
    fn aggregate_kind_from_name() {
        assert_eq!(AggregateKind::from_name("min"), Some(AggregateKind::Min));
        assert_eq!(AggregateKind::from_name("CoUnT"), Some(AggregateKind::Count));
        assert_eq!(AggregateKind::from_name("median"), None);
    }
}
