//! Parse errors and source spans.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for end-of-input errors.
    pub fn point(pos: usize) -> Self {
        Span { start: pos, end: pos }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Extracts the spanned slice of `source`, clamped to the source length.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        let start = self.start.min(source.len());
        let end = self.end.min(source.len());
        &source[start..end]
    }

    /// 1-based (line, column) of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// An error produced by the lexer or parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the input the problem was detected.
    pub span: Span,
}

impl ParseError {
    /// Creates an error with the given message and location.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span }
    }

    /// Renders the error with line/column information for `source`.
    pub fn display_with_source(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let snippet = self.span.slice(source);
        if snippet.is_empty() {
            format!("{} at line {line}, column {col}", self.message)
        } else {
            format!("{} at line {line}, column {col} (near {snippet:?})", self.message)
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn span_slice_clamps() {
        let s = Span::new(2, 100);
        assert_eq!(s.slice("hello"), "llo");
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        let sp = Span::new(6, 7); // 'e'
        assert_eq!(sp.line_col(src), (3, 1));
        let sp2 = Span::new(4, 5); // 'd'
        assert_eq!(sp2.line_col(src), (2, 2));
    }

    #[test]
    fn error_display_includes_snippet() {
        let err = ParseError::new("unexpected token", Span::new(0, 3));
        let msg = err.display_with_source("FOO bar");
        assert!(msg.contains("unexpected token"));
        assert!(msg.contains("FOO"));
        assert!(msg.contains("line 1"));
    }

    #[test]
    fn point_span_is_empty() {
        let sp = Span::point(4);
        assert_eq!(sp.slice("abcdefg"), "");
    }
}
