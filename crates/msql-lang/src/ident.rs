//! MSQL *multiple identifiers*.
//!
//! In MSQL an identifier may contain the wild character `%`, which "stands
//! for any sequence of zero or more characters" (paper §2). A name containing
//! `%` is a **multiple identifier**: during query expansion it is matched
//! against the names registered in the Global Data Dictionary and replaced by
//! each matching concrete name. Identifier matching is ASCII
//! case-insensitive, as in SQL.

use std::fmt;

/// An identifier that may contain `%` wildcards.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WildName(String);

impl WildName {
    /// Wraps a raw identifier, normalising to lowercase (SQL identifiers are
    /// case-insensitive; MSQL's dictionaries store lowercase names).
    pub fn new(name: impl Into<String>) -> Self {
        WildName(name.into().to_ascii_lowercase())
    }

    /// The normalised text of the identifier, wildcards included.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if this is a *multiple* identifier (contains at least one `%`).
    pub fn is_multiple(&self) -> bool {
        self.0.contains('%')
    }

    /// Matches a concrete name against this possibly-wild identifier.
    ///
    /// `%` matches any (possibly empty) character sequence; all other
    /// characters must match exactly (case-insensitively).
    pub fn matches(&self, candidate: &str) -> bool {
        let cand = candidate.to_ascii_lowercase();
        wild_match(self.0.as_bytes(), cand.as_bytes())
    }

    /// Returns the concrete name if this identifier has no wildcard.
    pub fn as_concrete(&self) -> Option<&str> {
        if self.is_multiple() {
            None
        } else {
            Some(&self.0)
        }
    }
}

impl fmt::Display for WildName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for WildName {
    fn from(s: &str) -> Self {
        WildName::new(s)
    }
}

impl From<String> for WildName {
    fn from(s: String) -> Self {
        WildName::new(s)
    }
}

/// Iterative wildcard matcher: `%` matches any sequence of bytes.
///
/// Uses the classic two-pointer backtracking algorithm, which is linear in
/// practice and never recurses (so adversarial patterns cannot blow the
/// stack).
fn wild_match(pattern: &[u8], text: &[u8]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut star_t = 0usize;
    while t < text.len() {
        if p < pattern.len() && pattern[p] == b'%' {
            star = Some(p);
            star_t = t;
            p += 1;
        } else if p < pattern.len() && pattern[p] == text[t] {
            p += 1;
            t += 1;
        } else if let Some(sp) = star {
            // Backtrack: let the last `%` absorb one more character.
            p = sp + 1;
            star_t += 1;
            t = star_t;
        } else {
            return false;
        }
    }
    while p < pattern.len() && pattern[p] == b'%' {
        p += 1;
    }
    p == pattern.len()
}

/// Reference implementation of the wildcard match, used by property tests.
/// Exponential in the worst case; correct by construction.
pub fn wild_match_reference(pattern: &str, text: &str) -> bool {
    fn go(p: &[u8], t: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'%') => (0..=t.len()).any(|k| go(&p[1..], &t[k..])),
            Some(&c) => t.first() == Some(&c) && go(&p[1..], &t[1..]),
        }
    }
    go(pattern.to_ascii_lowercase().as_bytes(), text.to_ascii_lowercase().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_names_match_exactly() {
        let n = WildName::new("code");
        assert!(n.matches("code"));
        assert!(n.matches("CODE"));
        assert!(!n.matches("vcode"));
        assert!(!n.is_multiple());
        assert_eq!(n.as_concrete(), Some("code"));
    }

    #[test]
    fn paper_example_percent_code() {
        // §2: `%code` refers to both `code` and `vcode`.
        let n = WildName::new("%code");
        assert!(n.matches("code"));
        assert!(n.matches("vcode"));
        assert!(!n.matches("codex"));
        assert!(n.is_multiple());
        assert_eq!(n.as_concrete(), None);
    }

    #[test]
    fn paper_example_flight_percent() {
        // §3.2: `flight%` matches `flights`, `flight` across the airline DBs.
        let n = WildName::new("flight%");
        assert!(n.matches("flight"));
        assert!(n.matches("flights"));
        assert!(!n.matches("fligh"));
        assert!(!n.matches("aflight"));
    }

    #[test]
    fn interior_and_multiple_wildcards() {
        let n = WildName::new("s%t%");
        assert!(n.matches("st"));
        assert!(n.matches("sxt"));
        assert!(n.matches("sxty"));
        assert!(n.matches("seatstatus")); // s...t...
        assert!(!n.matches("ts"));
    }

    #[test]
    fn bare_percent_matches_everything() {
        let n = WildName::new("%");
        assert!(n.matches(""));
        assert!(n.matches("anything"));
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        let n = WildName::new("");
        assert!(n.matches(""));
        assert!(!n.matches("x"));
    }

    #[test]
    fn adjacent_percents_collapse() {
        let n = WildName::new("a%%b");
        assert!(n.matches("ab"));
        assert!(n.matches("axxb"));
        assert!(!n.matches("a"));
    }

    #[test]
    fn matcher_agrees_with_reference_on_corner_cases() {
        for (p, t) in [
            ("%a%a%", "aa"),
            ("%a%a%", "a"),
            ("a%b%c", "abc"),
            ("a%b%c", "aXbYc"),
            ("a%b%c", "ac"),
            ("%%%", ""),
            ("x%", ""),
        ] {
            assert_eq!(
                WildName::new(p).matches(t),
                wild_match_reference(p, t),
                "pattern={p} text={t}"
            );
        }
    }

    #[test]
    fn display_shows_normalised_text() {
        assert_eq!(WildName::new("Flight%").to_string(), "flight%");
    }
}
