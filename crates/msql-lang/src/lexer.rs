//! Hand-written lexer for MSQL.
//!
//! The only departure from a plain SQL lexer is that `%` is an identifier
//! character whenever it is adjacent to an identifier (or starts one followed
//! by an identifier character): `%code`, `flight%`, `ra%te` are single
//! *multiple identifier* tokens. A `%` that stands alone is an error — MSQL
//! has no modulo operator and `LIKE` patterns keep their `%` inside string
//! literals.

use crate::error::{ParseError, Span};
use crate::token::{Token, TokenKind};

/// Streaming lexer over a source string.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b'%'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'%' || b == b'$' || b == b'#'
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0 }
    }

    /// Tokenizes the entire input, ending with an [`TokenKind::Eof`] token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // `--` line comment
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // `{ ... }` comment, as used in DOL program listings
                Some(b'{') => {
                    let start = self.pos;
                    self.pos += 1;
                    loop {
                        match self.bump() {
                            Some(b'}') => break,
                            Some(_) => {}
                            None => {
                                return Err(ParseError::new(
                                    "unterminated `{ }` comment",
                                    Span::new(start, self.pos),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia()?;
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, Span::point(self.pos)));
        };

        // String literal.
        if b == b'\'' {
            return self.lex_string(start);
        }
        // Number.
        if b.is_ascii_digit() {
            return self.lex_number(start);
        }
        // Identifier / multiple identifier. A leading `%` only starts an
        // identifier when followed by an identifier character (so `%code`
        // lexes as one token) — a bare `%` is rejected below.
        if is_ident_start(b) && (b != b'%' || self.peek2().map(is_ident_continue).unwrap_or(false))
        {
            while let Some(c) = self.peek() {
                if is_ident_continue(c) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = &self.src[start..self.pos];
            return Ok(Token::new(TokenKind::Ident(text.to_string()), Span::new(start, self.pos)));
        }

        // Punctuation and operators.
        self.pos += 1;
        let kind = match b {
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b';' => TokenKind::Semicolon,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'*' => TokenKind::Star,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'/' => TokenKind::Slash,
            b'~' => TokenKind::Tilde,
            b'=' => TokenKind::Eq,
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::NotEq
                } else {
                    return Err(ParseError::new(
                        "expected `=` after `!`",
                        Span::new(start, self.pos),
                    ));
                }
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    TokenKind::LtEq
                }
                Some(b'>') => {
                    self.pos += 1;
                    TokenKind::NotEq
                }
                _ => TokenKind::Lt,
            },
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    TokenKind::Concat
                } else {
                    return Err(ParseError::new("expected `||`", Span::new(start, self.pos)));
                }
            }
            b'%' => {
                return Err(ParseError::new(
                    "stray `%`: the wildcard must be part of an identifier (e.g. `%code`)",
                    Span::new(start, self.pos),
                ))
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character {:?}", other as char),
                    Span::new(start, self.pos),
                ))
            }
        };
        Ok(Token::new(kind, Span::new(start, self.pos)))
    }

    fn lex_string(&mut self, start: usize) -> Result<Token, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'\''));
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(b'\'') => {
                    self.pos += 1;
                    // `''` escapes a quote.
                    if self.peek() == Some(b'\'') {
                        self.pos += 1;
                        value.push('\'');
                    } else {
                        return Ok(Token::new(
                            TokenKind::StringLit(value),
                            Span::new(start, self.pos),
                        ));
                    }
                }
                Some(b) if b < 0x80 => {
                    value.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 character: decode it whole.
                    let ch = self.src[self.pos..].chars().next().expect("peek guaranteed a byte");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ))
                }
            }
        }
    }

    fn lex_number(&mut self, start: usize) -> Result<Token, ParseError> {
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let mut is_float = false;
        // Fractional part — only when the dot is followed by a digit, so that
        // `avis.cars` does not swallow the dot.
        if self.peek() == Some(b'.') && self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            is_float = true;
            self.pos += 1;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut look = self.pos + 1;
            if matches!(self.bytes.get(look), Some(b'+') | Some(b'-')) {
                look += 1;
            }
            if self.bytes.get(look).map(|c| c.is_ascii_digit()).unwrap_or(false) {
                is_float = true;
                self.pos = look;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start, self.pos);
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| ParseError::new(format!("invalid float literal {text:?}"), span))?;
            Ok(Token::new(TokenKind::Float(v), span))
        } else {
            let v: i64 = text.parse().map_err(|_| {
                ParseError::new(format!("integer literal {text:?} out of range"), span)
            })?;
            Ok(Token::new(TokenKind::Int(v), span))
        }
    }
}

/// Convenience: tokenize `src` in one call.
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let ks = kinds("SELECT a, b FROM t WHERE x = 1");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Int(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn multiple_identifiers_lex_as_single_tokens() {
        assert_eq!(
            kinds("%code flight% ra%te"),
            vec![
                TokenKind::Ident("%code".into()),
                TokenKind::Ident("flight%".into()),
                TokenKind::Ident("ra%te".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn stray_percent_is_an_error() {
        let err = tokenize("a % b").unwrap_err();
        assert!(err.message.contains("stray"));
    }

    #[test]
    fn tilde_is_its_own_token() {
        assert_eq!(
            kinds("~rate"),
            vec![TokenKind::Tilde, TokenKind::Ident("rate".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn string_literals_unescape_quotes() {
        assert_eq!(
            kinds("'San Antonio' 'it''s'"),
            vec![
                TokenKind::StringLit("San Antonio".into()),
                TokenKind::StringLit("it's".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(
            kinds("42 1.1 2e3 7.5e-2"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(1.1),
                TokenKind::Float(2e3),
                TokenKind::Float(7.5e-2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn qualified_name_keeps_dots_separate() {
        assert_eq!(
            kinds("avis.cars.rate"),
            vec![
                TokenKind::Ident("avis".into()),
                TokenKind::Dot,
                TokenKind::Ident("cars".into()),
                TokenKind::Dot,
                TokenKind::Ident("rate".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn number_dot_ident_does_not_merge() {
        // `t1.c` style where table ends with a digit is handled by ident rules;
        // `1.x` lexes as Int(1), Dot, Ident(x).
        assert_eq!(
            kinds("1.x"),
            vec![TokenKind::Int(1), TokenKind::Dot, TokenKind::Ident("x".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= <> != ="),
            vec![
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_comments_are_skipped() {
        assert_eq!(
            kinds("a -- comment here\n b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn brace_comments_are_skipped() {
        assert_eq!(
            kinds("a { update for continental } b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_brace_comment_errors() {
        assert!(tokenize("a { oops").is_err());
    }

    #[test]
    fn spans_point_at_source() {
        let toks = tokenize("SELECT x").unwrap();
        assert_eq!(toks[0].span.slice("SELECT x"), "SELECT");
        assert_eq!(toks[1].span.slice("SELECT x"), "x");
    }

    #[test]
    fn concat_operator() {
        assert_eq!(
            kinds("a || b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Concat,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lone_pipe_is_error() {
        assert!(tokenize("a | b").is_err());
    }
}
