//! # msql-lang
//!
//! Lexer, AST, parser and printer for **MSQL** — the multidatabase extension
//! of SQL described in Litwin's *"MSQL: A Multidatabase Language"* and
//! extended by Suardi, Rusinkiewicz & Litwin in *"Execution of Extended
//! Multidatabase SQL"* (ICDE 1993).
//!
//! The crate covers:
//!
//! * plain SQL: `SELECT` (joins, aggregates, scalar subqueries, `ORDER BY`,
//!   `GROUP BY`/`HAVING`), `INSERT`, `UPDATE`, `DELETE`, `CREATE`/`DROP
//!   TABLE`, `CREATE`/`DROP DATABASE`;
//! * MSQL scoping and naming: `USE` (with aliases and `VITAL` designators),
//!   `LET ... BE ...` semantic variables, implicit semantic variables built
//!   from `%` wildcards (`%code`, `flight%`), optional columns (`~rate`),
//!   database-qualified names (`avis.cars.rate`);
//! * the ICDE'93 transactional extensions: `COMP` compensation clauses,
//!   `BEGIN MULTITRANSACTION ... COMMIT <acceptable states> ... END
//!   MULTITRANSACTION`, `INCORPORATE SERVICE`, `IMPORT DATABASE`, and global
//!   `COMMIT`/`ROLLBACK`.
//!
//! The parser is a hand-written recursive-descent parser over a hand-written
//! lexer; both track byte spans so that errors point at the offending source.
//! [`print`] renders any AST node back to canonical text, and for every
//! fully-qualified (wildcard-free) statement the output is plain SQL that a
//! local database system can execute — this is how the multidatabase layer
//! ships subqueries to LDBSs.
//!
//! ## Quick example
//!
//! ```
//! use msql_lang::parse_script;
//!
//! let script = parse_script(
//!     "USE avis national
//!      LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
//!      SELECT %code, type, ~rate FROM car WHERE status = 'available'",
//! ).unwrap();
//! assert_eq!(script.statements.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod ident;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::*;
pub use error::{ParseError, Span};
pub use ident::WildName;
pub use lexer::Lexer;
pub use parser::{parse_expr, parse_script, parse_statement, Parser};
pub use printer::print;
