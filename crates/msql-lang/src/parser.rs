//! Recursive-descent parser for MSQL.
//!
//! Grammar notes (following the paper's examples and the grammar fragments it
//! gives in §3.1–§3.4):
//!
//! * a *manipulation statement* is `[USE ...] [LET ...]* <body> [COMP ...]*`;
//!   a `USE`/`LET` not followed by a body stands alone and updates the
//!   session scope;
//! * `USE [CURRENT] ( db alias ) VITAL db2 ...` — parentheses introduce an
//!   alias; `VITAL` follows the element it designates;
//! * `LET a.b.c BE x.y.z u.v.w` — one binding path per database in scope;
//! * `COMP <db|alias> <statement>` attaches a compensating statement;
//! * `BEGIN MULTITRANSACTION <queries> COMMIT <state> [, <state>]* END
//!   MULTITRANSACTION` where each state is `db AND db AND ...`;
//! * keywords are contextual: any keyword can be used as an identifier where
//!   no ambiguity arises (the paper's schemas use column names like `day`).

use crate::ast::*;
use crate::error::{ParseError, Span};
use crate::ident::WildName;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Keywords that terminate an alias position or a binding list.
const RESERVED_CONTINUATIONS: &[&str] = &[
    "where",
    "group",
    "having",
    "order",
    "from",
    "set",
    "values",
    "and",
    "or",
    "not",
    "use",
    "let",
    "select",
    "insert",
    "update",
    "delete",
    "comp",
    "begin",
    "end",
    "commit",
    "rollback",
    "create",
    "drop",
    "incorporate",
    "import",
    "union",
    "vital",
    "be",
    "as",
    "on",
    "into",
    "limit",
];

/// The MSQL parser.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Statements already produced but not yet returned (a standalone
    /// `USE ... LET ...` pair yields two statements).
    pending: std::collections::VecDeque<Statement>,
}

impl Parser {
    /// Creates a parser for `src`.
    pub fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser { tokens: tokenize(src)?, pos: 0, pending: std::collections::VecDeque::new() })
    }

    // ---------------------------------------------------------------- cursor

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(ParseError::new(format!("expected `{kind}`, found `{}`", self.peek()), self.span()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected keyword `{}`, found `{}`", kw.to_uppercase(), self.peek()),
                self.span(),
            ))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_kw(kw)
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                Err(ParseError::new(format!("expected identifier, found `{other}`"), self.span()))
            }
        }
    }

    /// An identifier usable as an alias: an Ident that is not a reserved
    /// continuation keyword.
    fn try_alias(&mut self) -> Option<String> {
        if let TokenKind::Ident(s) = self.peek() {
            let lower = s.to_ascii_lowercase();
            if !RESERVED_CONTINUATIONS.contains(&lower.as_str()) && !s.contains('%') {
                let s = s.clone();
                self.bump();
                return Some(s);
            }
        }
        None
    }

    // ------------------------------------------------------------ top level

    /// Parses a whole script.
    pub fn parse_script(&mut self) -> Result<Script, ParseError> {
        let mut statements = Vec::new();
        loop {
            while self.eat(&TokenKind::Semicolon) {}
            if self.at_eof() && self.pending.is_empty() {
                break;
            }
            statements.push(self.parse_statement()?);
        }
        Ok(Script { statements })
    }

    /// Parses one top-level statement.
    pub fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        if let Some(stmt) = self.pending.pop_front() {
            return Ok(stmt);
        }
        if self.peek_kw("use") || self.peek_kw("let") {
            return self.parse_scoped_query_or_scope_change();
        }
        if self.peek_kw("select")
            || self.peek_kw("insert")
            || self.peek_kw("update")
            || self.peek_kw("delete")
        {
            let q = self.parse_msql_query(None, Vec::new())?;
            return Ok(Statement::Query(q));
        }
        if self.peek_kw("begin") {
            return self.parse_multitransaction();
        }
        if self.peek_kw("incorporate") {
            return self.parse_incorporate();
        }
        if self.peek_kw("import") {
            return self.parse_import();
        }
        if self.peek_kw("create") {
            return self.parse_create();
        }
        if self.peek_kw("drop") {
            return self.parse_drop();
        }
        if self.eat_kw("commit") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("rollback") {
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("explain") {
            let inner = self.parse_statement()?;
            return Ok(Statement::Explain(Box::new(inner)));
        }
        if self.eat_kw("analyze") {
            let _ = self.eat_kw("table");
            let table = if matches!(self.peek(), TokenKind::Ident(_)) && !self.starts_statement() {
                Some(self.parse_table_ref()?)
            } else {
                None
            };
            return Ok(Statement::Analyze(table));
        }
        Err(ParseError::new(format!("unexpected token `{}`", self.peek()), self.span()))
    }

    /// `USE`/`LET` either prefix a manipulation statement or stand alone.
    fn parse_scoped_query_or_scope_change(&mut self) -> Result<Statement, ParseError> {
        let use_clause = if self.peek_kw("use") { Some(self.parse_use()?) } else { None };
        let mut lets = Vec::new();
        while self.peek_kw("let") {
            lets.push(self.parse_let()?);
        }
        let has_body = self.peek_kw("select")
            || self.peek_kw("insert")
            || self.peek_kw("update")
            || self.peek_kw("delete");
        if has_body {
            let q = self.parse_msql_query(use_clause, lets)?;
            return Ok(Statement::Query(q));
        }
        // Standalone scope manipulation: USE and each LET become separate
        // statements (extra ones are queued).
        let mut produced: Vec<Statement> = Vec::new();
        if let Some(u) = use_clause {
            produced.push(Statement::Use(u));
        }
        for l in lets {
            produced.push(Statement::Let(l));
        }
        let mut it = produced.into_iter();
        let first = it.next().ok_or_else(|| ParseError::new("expected USE or LET", self.span()))?;
        self.pending.extend(it);
        Ok(first)
    }

    fn parse_msql_query(
        &mut self,
        use_clause: Option<UseStatement>,
        lets: Vec<LetStatement>,
    ) -> Result<MsqlQuery, ParseError> {
        let body = if self.peek_kw("select") {
            QueryBody::Select(self.parse_select()?)
        } else if self.peek_kw("insert") {
            QueryBody::Insert(self.parse_insert()?)
        } else if self.peek_kw("update") {
            QueryBody::Update(self.parse_update()?)
        } else if self.peek_kw("delete") {
            QueryBody::Delete(self.parse_delete()?)
        } else {
            return Err(ParseError::new("expected SELECT, INSERT, UPDATE or DELETE", self.span()));
        };
        self.eat(&TokenKind::Semicolon);
        let mut comps = Vec::new();
        while self.peek_kw("comp") {
            comps.push(self.parse_comp()?);
            self.eat(&TokenKind::Semicolon);
        }
        Ok(MsqlQuery { use_clause, lets, body, comps })
    }

    // ----------------------------------------------------------------- USE

    fn parse_use(&mut self) -> Result<UseStatement, ParseError> {
        self.expect_kw("use")?;
        let current = self.eat_kw("current");
        let mut elements = Vec::new();
        loop {
            if self.eat(&TokenKind::LParen) {
                let database = WildName::new(self.expect_ident()?);
                let alias = self.try_alias();
                self.expect(&TokenKind::RParen)?;
                let vital = self.eat_kw("vital");
                elements.push(UseElement { database, alias, vital });
            } else if matches!(self.peek(), TokenKind::Ident(_)) && !self.starts_statement() {
                let database = WildName::new(self.expect_ident()?);
                let vital = self.eat_kw("vital");
                elements.push(UseElement { database, alias: None, vital });
            } else {
                break;
            }
        }
        if elements.is_empty() {
            return Err(ParseError::new("USE requires at least one database", self.span()));
        }
        Ok(UseStatement { current, elements })
    }

    fn starts_statement(&self) -> bool {
        for kw in [
            "select",
            "insert",
            "update",
            "delete",
            "let",
            "use",
            "begin",
            "commit",
            "rollback",
            "create",
            "drop",
            "incorporate",
            "import",
            "comp",
            "end",
        ] {
            if self.peek_kw(kw) {
                return true;
            }
        }
        false
    }

    // ----------------------------------------------------------------- LET

    fn parse_let(&mut self) -> Result<LetStatement, ParseError> {
        self.expect_kw("let")?;
        let mut variables = Vec::new();
        loop {
            let names = self.parse_dotted_path()?;
            self.expect_kw("be")?;
            let mut bindings = Vec::new();
            loop {
                bindings.push(self.parse_dotted_path()?);
                // Binding lists end at a statement keyword, comma, or EOF.
                if self.at_eof()
                    || self.starts_statement()
                    || self.peek() == &TokenKind::Comma
                    || !matches!(self.peek(), TokenKind::Ident(_))
                {
                    break;
                }
            }
            if bindings.is_empty() {
                return Err(ParseError::new("LET requires at least one binding", self.span()));
            }
            variables.push(SemanticVariable { names, bindings });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(LetStatement { variables })
    }

    fn parse_dotted_path(&mut self) -> Result<Vec<String>, ParseError> {
        let mut parts = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Dot) {
            parts.push(self.expect_ident()?);
        }
        Ok(parts)
    }

    // ---------------------------------------------------------------- COMP

    fn parse_comp(&mut self) -> Result<CompClause, ParseError> {
        self.expect_kw("comp")?;
        let database = WildName::new(self.expect_ident()?);
        let statement = if self.peek_kw("select") {
            Statement::select(self.parse_select()?)
        } else if self.peek_kw("update") {
            Statement::update(self.parse_update()?)
        } else if self.peek_kw("insert") {
            Statement::Query(MsqlQuery {
                use_clause: None,
                lets: Vec::new(),
                body: QueryBody::Insert(self.parse_insert()?),
                comps: Vec::new(),
            })
        } else if self.peek_kw("delete") {
            Statement::Query(MsqlQuery {
                use_clause: None,
                lets: Vec::new(),
                body: QueryBody::Delete(self.parse_delete()?),
                comps: Vec::new(),
            })
        } else {
            return Err(ParseError::new("COMP requires a compensating statement", self.span()));
        };
        Ok(CompClause { database, statement: Box::new(statement) })
    }

    // ------------------------------------------------------ multitransaction

    fn parse_multitransaction(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("begin")?;
        self.expect_kw("multitransaction")?;
        let mut queries = Vec::new();
        loop {
            while self.eat(&TokenKind::Semicolon) {}
            if self.peek_kw("commit") {
                break;
            }
            if self.at_eof() {
                return Err(ParseError::new(
                    "multitransaction is missing its COMMIT statement",
                    self.span(),
                ));
            }
            let use_clause = if self.peek_kw("use") { Some(self.parse_use()?) } else { None };
            let mut lets = Vec::new();
            while self.peek_kw("let") {
                lets.push(self.parse_let()?);
            }
            queries.push(self.parse_msql_query(use_clause, lets)?);
        }
        self.expect_kw("commit")?;
        let mut acceptable_states = Vec::new();
        while !self.peek_kw("end") {
            if self.at_eof() {
                return Err(ParseError::new(
                    "multitransaction is missing END MULTITRANSACTION",
                    self.span(),
                ));
            }
            let mut databases = vec![WildName::new(self.expect_ident()?)];
            while self.eat_kw("and") {
                databases.push(WildName::new(self.expect_ident()?));
            }
            acceptable_states.push(AcceptableState { databases });
            self.eat(&TokenKind::Comma);
            while self.eat(&TokenKind::Semicolon) {}
        }
        self.expect_kw("end")?;
        self.expect_kw("multitransaction")?;
        if acceptable_states.is_empty() {
            return Err(ParseError::new(
                "COMMIT requires at least one acceptable termination state",
                self.span(),
            ));
        }
        Ok(Statement::Multitransaction(Multitransaction { queries, acceptable_states }))
    }

    // ----------------------------------------------------------- incorporate

    fn parse_commit_capability(&mut self) -> Result<CommitCapability, ParseError> {
        if self.eat_kw("commit") {
            Ok(CommitCapability::AutoCommit)
        } else if self.eat_kw("nocommit") {
            Ok(CommitCapability::TwoPhase)
        } else {
            Err(ParseError::new("expected COMMIT or NOCOMMIT", self.span()))
        }
    }

    fn parse_incorporate(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("incorporate")?;
        self.expect_kw("service")?;
        let service = self.expect_ident()?;
        let site = if self.eat_kw("site") { Some(self.expect_ident()?) } else { None };
        self.expect_kw("connectmode")?;
        let multi_database = if self.eat_kw("connect") {
            true
        } else if self.eat_kw("noconnect") {
            false
        } else {
            return Err(ParseError::new("expected CONNECT or NOCONNECT", self.span()));
        };
        self.expect_kw("commitmode")?;
        let commit_mode = self.parse_commit_capability()?;
        let mut create_mode = None;
        let mut insert_mode = None;
        let mut drop_mode = None;
        loop {
            if self.eat_kw("create") {
                create_mode = Some(self.parse_commit_capability()?);
            } else if self.eat_kw("insert") {
                insert_mode = Some(self.parse_commit_capability()?);
            } else if self.eat_kw("drop") {
                drop_mode = Some(self.parse_commit_capability()?);
            } else {
                break;
            }
        }
        Ok(Statement::Incorporate(Incorporate {
            service,
            site,
            multi_database,
            commit_mode,
            create_mode,
            insert_mode,
            drop_mode,
        }))
    }

    // ---------------------------------------------------------------- import

    fn parse_import(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("import")?;
        self.expect_kw("database")?;
        let database = self.expect_ident()?;
        self.expect_kw("from")?;
        self.expect_kw("service")?;
        let service = self.expect_ident()?;
        let item = if self.eat_kw("table") {
            let table = self.expect_ident()?;
            let columns = self.parse_import_columns()?;
            ImportItem::Table { table, columns }
        } else if self.eat_kw("view") {
            let view = self.expect_ident()?;
            let columns = self.parse_import_columns()?;
            ImportItem::View { view, columns }
        } else {
            ImportItem::AllPublicTables
        };
        Ok(Statement::Import(Import { database, service, item }))
    }

    fn parse_import_columns(&mut self) -> Result<Vec<String>, ParseError> {
        if !self.eat_kw("column") {
            return Ok(Vec::new());
        }
        let mut cols = Vec::new();
        // Either a parenthesised list or a bare sequence.
        if self.eat(&TokenKind::LParen) {
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        } else {
            loop {
                cols.push(self.expect_ident()?);
                let comma = self.eat(&TokenKind::Comma);
                let next_is_column =
                    matches!(self.peek(), TokenKind::Ident(_)) && !self.starts_statement();
                if !comma && !next_is_column {
                    break;
                }
            }
        }
        Ok(cols)
    }

    // ------------------------------------------------------------------ DDL

    fn parse_create(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("create")?;
        if self.eat_kw("database") {
            let name = self.expect_ident()?;
            return Ok(Statement::CreateDatabase(name));
        }
        if self.eat_kw("trigger") {
            let name = self.expect_ident()?;
            self.expect_kw("on")?;
            let database = WildName::new(self.expect_ident()?);
            self.expect(&TokenKind::Dot)?;
            let table = WildName::new(self.expect_ident()?);
            self.expect_kw("after")?;
            let event = if self.eat_kw("update") {
                TriggerEvent::Update
            } else if self.eat_kw("insert") {
                TriggerEvent::Insert
            } else if self.eat_kw("delete") {
                TriggerEvent::Delete
            } else {
                return Err(ParseError::new("expected UPDATE, INSERT or DELETE", self.span()));
            };
            self.expect_kw("execute")?;
            let action = Box::new(self.parse_statement()?);
            return Ok(Statement::CreateTrigger(CreateTrigger {
                name,
                database,
                table,
                event,
                action,
            }));
        }
        if self.eat_kw("index") {
            let name = self.expect_ident()?;
            self.expect_kw("on")?;
            let table = self.parse_table_ref()?;
            self.expect(&TokenKind::LParen)?;
            let column = self.expect_ident()?;
            self.expect(&TokenKind::RParen)?;
            let method = if self.eat_kw("using") {
                if self.eat_kw("hash") {
                    IndexMethod::Hash
                } else if self.eat_kw("btree") {
                    IndexMethod::Btree
                } else {
                    return Err(ParseError::new("expected HASH or BTREE", self.span()));
                }
            } else {
                IndexMethod::Btree
            };
            return Ok(Statement::CreateIndex(CreateIndex { name, table, column, method }));
        }
        self.expect_kw("table")?;
        let table = self.parse_table_ref()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let type_name = self.parse_type_name()?;
            let mut not_null = false;
            if self.eat_kw("not") {
                self.expect_kw("null")?;
                not_null = true;
            }
            columns.push(ColumnDef { name, type_name, not_null });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateTable(CreateTable { table, columns }))
    }

    fn parse_type_name(&mut self) -> Result<TypeName, ParseError> {
        let name = self.expect_ident()?.to_ascii_lowercase();
        match name.as_str() {
            "int" | "integer" | "smallint" | "bigint" => Ok(TypeName::Int),
            "float" | "real" | "double" | "numeric" | "decimal" => {
                // optional (p[,s]) precision, ignored
                if self.eat(&TokenKind::LParen) {
                    self.expect_number()?;
                    if self.eat(&TokenKind::Comma) {
                        self.expect_number()?;
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                Ok(TypeName::Float)
            }
            "char" | "varchar" | "character" | "text" | "string" => {
                let mut width = 0u32;
                if self.eat(&TokenKind::LParen) {
                    width = self.expect_number()? as u32;
                    self.expect(&TokenKind::RParen)?;
                }
                Ok(TypeName::Char(width))
            }
            "bool" | "boolean" => Ok(TypeName::Bool),
            "date" => Ok(TypeName::Date),
            other => Err(ParseError::new(format!("unknown type name `{other}`"), self.span())),
        }
    }

    fn expect_number(&mut self) -> Result<i64, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            other => Err(ParseError::new(format!("expected number, found `{other}`"), self.span())),
        }
    }

    fn parse_drop(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("drop")?;
        if self.eat_kw("database") {
            let name = self.expect_ident()?;
            return Ok(Statement::DropDatabase(name));
        }
        if self.eat_kw("trigger") {
            let name = self.expect_ident()?;
            return Ok(Statement::DropTrigger(name));
        }
        if self.eat_kw("index") {
            let name = self.expect_ident()?;
            self.expect_kw("on")?;
            let table = self.parse_table_ref()?;
            return Ok(Statement::DropIndex(DropIndex { name, table }));
        }
        self.expect_kw("table")?;
        let table = self.parse_table_ref()?;
        Ok(Statement::DropTable(DropTable { table }))
    }

    // ---------------------------------------------------------------- SELECT

    /// Parses a SELECT statement (entry point also used for subqueries).
    pub fn parse_select(&mut self) -> Result<Select, ParseError> {
        self.expect_kw("select")?;
        let distinct = if self.eat_kw("distinct") {
            true
        } else {
            let _ = self.eat_kw("all");
            false
        };
        let mut items = vec![self.parse_select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.parse_select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            from.push(self.parse_table_ref()?);
            while self.eat(&TokenKind::Comma) {
                from.push(self.parse_table_ref()?);
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.parse_expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_kw("having") { Some(self.parse_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let order = if self.eat_kw("desc") {
                    SortOrder::Desc
                } else {
                    let _ = self.eat_kw("asc");
                    SortOrder::Asc
                };
                order_by.push(OrderByItem { expr, order });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            let n = self.expect_number()?;
            if n < 0 {
                return Err(ParseError::new(format!("negative LIMIT `{n}`"), self.span()));
            }
            Some(n as u64)
        } else {
            None
        };
        Ok(Select { distinct, items, from, where_clause, group_by, having, order_by, limit })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.peek_at(1) == &TokenKind::Dot && self.peek_at(2) == &TokenKind::Star {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(WildName::new(name)));
            }
        }
        let optional = self.eat(&TokenKind::Tilde);
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("as") { Some(self.expect_ident()?) } else { self.try_alias() };
        Ok(SelectItem::Expr { expr, alias, optional })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let first = WildName::new(self.expect_ident()?);
        let (database, table) = if self.eat(&TokenKind::Dot) {
            (Some(first), WildName::new(self.expect_ident()?))
        } else {
            (None, first)
        };
        let alias = self.try_alias();
        Ok(TableRef { database, table, alias })
    }

    // ------------------------------------------------------------------ DML

    fn parse_insert(&mut self) -> Result<Insert, ParseError> {
        self.expect_kw("insert")?;
        let _ = self.eat_kw("into");
        let table = self.parse_table_ref()?;
        let mut columns = Vec::new();
        if self.peek() == &TokenKind::LParen && !self.peek_at(1).is_kw("select") {
            self.expect(&TokenKind::LParen)?;
            loop {
                columns.push(WildName::new(self.expect_ident()?));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let source = if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen)?;
                let mut row = vec![self.parse_expr()?];
                while self.eat(&TokenKind::Comma) {
                    row.push(self.parse_expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                rows.push(row);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek_kw("select") {
            InsertSource::Select(Box::new(self.parse_select()?))
        } else if self.peek() == &TokenKind::LParen && self.peek_at(1).is_kw("select") {
            self.expect(&TokenKind::LParen)?;
            let sel = self.parse_select()?;
            self.expect(&TokenKind::RParen)?;
            InsertSource::Select(Box::new(sel))
        } else {
            return Err(ParseError::new("expected VALUES or SELECT", self.span()));
        };
        Ok(Insert { table, columns, source })
    }

    fn parse_update(&mut self) -> Result<Update, ParseError> {
        self.expect_kw("update")?;
        let table = self.parse_table_ref()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let column = WildName::new(self.expect_ident()?);
            self.expect(&TokenKind::Eq)?;
            let value = self.parse_expr()?;
            assignments.push(Assignment { column, value });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        Ok(Update { table, assignments, where_clause })
    }

    fn parse_delete(&mut self) -> Result<Delete, ParseError> {
        self.expect_kw("delete")?;
        let _ = self.eat_kw("from");
        let table = self.parse_table_ref()?;
        let where_clause = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        Ok(Delete { table, where_clause })
    }

    // ---------------------------------------------------------- expressions

    /// Parses an expression (public entry point for tests and tools).
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.peek_kw("and") {
            // Do not consume the AND of `BETWEEN x AND y` — handled there.
            self.bump();
            let right = self.parse_not()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = self.eat_kw("not");
        if self.eat_kw("in") {
            self.expect(&TokenKind::LParen)?;
            if self.peek_kw("select") {
                let sub = self.parse_select()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if negated {
            return Err(ParseError::new("expected IN, BETWEEN or LIKE after NOT", self.span()));
        }
        let op = match self.peek() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_additive()?;
        Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) })
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                TokenKind::Concat => BinaryOp::Concat,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Int(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::LParen => {
                self.bump();
                if self.peek_kw("select") {
                    let sel = self.parse_select()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Subquery(Box::new(sel)));
                }
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                // Structural keywords can never begin an expression; treating
                // them as column names would swallow a missing operand (e.g.
                // `SELECT FROM t`).
                if matches!(
                    lower.as_str(),
                    "from" | "where" | "group" | "having" | "order" | "set" | "values" | "select"
                ) {
                    return Err(ParseError::new(
                        format!("expected expression, found keyword `{name}`"),
                        self.span(),
                    ));
                }
                if lower == "null" {
                    self.bump();
                    return Ok(Expr::Literal(Literal::Null));
                }
                if lower == "true" {
                    self.bump();
                    return Ok(Expr::Literal(Literal::Bool(true)));
                }
                if lower == "false" {
                    self.bump();
                    return Ok(Expr::Literal(Literal::Bool(false)));
                }
                if lower == "exists" && self.peek_at(1) == &TokenKind::LParen {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let sub = self.parse_select()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Exists { subquery: Box::new(sub), negated: false });
                }
                // Function or aggregate call.
                if self.peek_at(1) == &TokenKind::LParen {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    if let Some(kind) = AggregateKind::from_name(&lower) {
                        if self.eat(&TokenKind::Star) {
                            self.expect(&TokenKind::RParen)?;
                            return Ok(Expr::Aggregate { kind, arg: None, distinct: false });
                        }
                        let distinct = self.eat_kw("distinct");
                        let arg = self.parse_expr()?;
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::Aggregate { kind, arg: Some(Box::new(arg)), distinct });
                    }
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        args.push(self.parse_expr()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Function { name: lower, args });
                }
                // Column reference: up to three dotted components.
                self.bump();
                let mut parts = vec![name];
                while self.eat(&TokenKind::Dot) && parts.len() < 3 {
                    parts.push(self.expect_ident()?);
                }
                let col = match parts.len() {
                    1 => ColumnRef::bare(parts.remove(0)),
                    2 => {
                        let c = parts.pop().unwrap();
                        let t = parts.pop().unwrap();
                        ColumnRef::with_table(t, c)
                    }
                    _ => {
                        let c = parts.pop().unwrap();
                        let t = parts.pop().unwrap();
                        let d = parts.pop().unwrap();
                        ColumnRef::full(d, t, c)
                    }
                };
                Ok(Expr::Column(col))
            }
            other => Err(ParseError::new(
                format!("unexpected token `{other}` in expression"),
                self.span(),
            )),
        }
    }
}

/// Parses a full script.
pub fn parse_script(src: &str) -> Result<Script, ParseError> {
    Parser::new(src)?.parse_script()
}

/// Parses exactly one statement; trailing input is an error.
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(src)?;
    let stmt = p.parse_statement()?;
    while p.eat(&TokenKind::Semicolon) {}
    if !p.at_eof() || !p.pending.is_empty() {
        return Err(ParseError::new("trailing input after statement", p.span()));
    }
    Ok(stmt)
}

/// Parses exactly one expression; trailing input is an error.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.parse_expr()?;
    if !p.at_eof() {
        return Err(ParseError::new("trailing input after expression", p.span()));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(src: &str) -> MsqlQuery {
        match parse_statement(src).unwrap() {
            Statement::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_section2_query() {
        let q = query(
            "USE avis national
             LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
             SELECT %code, type, ~rate FROM car WHERE status = 'available'",
        );
        let use_clause = q.use_clause.unwrap();
        assert_eq!(use_clause.elements.len(), 2);
        assert_eq!(use_clause.elements[0].database.as_str(), "avis");
        assert!(!use_clause.elements[0].vital);
        assert_eq!(q.lets.len(), 1);
        let var = &q.lets[0].variables[0];
        assert_eq!(var.names, vec!["car", "type", "status"]);
        assert_eq!(var.bindings.len(), 2);
        assert_eq!(var.bindings[0], vec!["cars", "cartype", "carst"]);
        let QueryBody::Select(sel) = &q.body else { panic!() };
        assert_eq!(sel.items.len(), 3);
        match &sel.items[2] {
            SelectItem::Expr { optional, .. } => assert!(optional),
            other => panic!("expected optional item, got {other:?}"),
        }
        match &sel.items[0] {
            SelectItem::Expr { expr: Expr::Column(c), .. } => {
                assert_eq!(c.column.as_str(), "%code");
                assert!(c.is_multiple());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_paper_vital_update() {
        let q = query(
            "USE continental VITAL delta united VITAL
             UPDATE flight%
             SET rate% = rate% * 1.1
             WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
        );
        let u = q.use_clause.unwrap();
        assert_eq!(u.vital_set(), vec!["continental", "united"]);
        let QueryBody::Update(up) = &q.body else { panic!() };
        assert_eq!(up.table.table.as_str(), "flight%");
        assert_eq!(up.assignments.len(), 1);
        assert!(up.assignments[0].column.is_multiple());
        assert!(up.where_clause.is_some());
    }

    #[test]
    fn parses_comp_clause() {
        let q = query(
            "USE continental VITAL delta united VITAL
             UPDATE flight% SET rate% = rate% * 1.1
             WHERE sour% = 'Houston' AND dest% = 'San Antonio'
             COMP continental
             UPDATE flights SET rate = rate / 1.1
             WHERE source = 'Houston' AND destination = 'San Antonio'",
        );
        assert_eq!(q.comps.len(), 1);
        assert_eq!(q.comps[0].database.as_str(), "continental");
        match q.comps[0].statement.as_ref() {
            Statement::Query(inner) => {
                let QueryBody::Update(u) = &inner.body else { panic!() };
                assert_eq!(u.table.table.as_str(), "flights");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_paper_multitransaction() {
        let stmt = parse_statement(
            "BEGIN MULTITRANSACTION
               USE continental delta
               LET fltab.snu.sstat.clname BE
                   f838.seatnu.seatstatus.clientname
                   f747.snu.sstat.passname
               UPDATE fltab
               SET sstat = 'TAKEN', clname = 'wenders'
               WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
               USE avis national
               LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat
               UPDATE cartab
               SET cstat = 'TAKEN', client = 'wenders'
               WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'FREE');
               COMMIT
                 continental AND national
                 delta AND avis
             END MULTITRANSACTION",
        )
        .unwrap();
        let Statement::Multitransaction(m) = stmt else { panic!("{stmt:?}") };
        assert_eq!(m.queries.len(), 2);
        assert_eq!(m.acceptable_states.len(), 2);
        assert_eq!(
            m.acceptable_states[0].databases.iter().map(|d| d.as_str()).collect::<Vec<_>>(),
            vec!["continental", "national"]
        );
        assert_eq!(
            m.acceptable_states[1].databases.iter().map(|d| d.as_str()).collect::<Vec<_>>(),
            vec!["delta", "avis"]
        );
        // Scalar subquery inside the first UPDATE.
        let QueryBody::Update(u) = &m.queries[0].body else { panic!() };
        let w = u.where_clause.as_ref().unwrap();
        match w {
            Expr::Binary { right, .. } => assert!(matches!(**right, Expr::Subquery(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_incorporate() {
        let stmt = parse_statement(
            "INCORPORATE SERVICE oracle1 SITE site1
             CONNECTMODE CONNECT
             COMMITMODE NOCOMMIT
             CREATE COMMIT
             INSERT NOCOMMIT
             DROP COMMIT",
        )
        .unwrap();
        let Statement::Incorporate(inc) = stmt else { panic!() };
        assert_eq!(inc.service, "oracle1");
        assert_eq!(inc.site.as_deref(), Some("site1"));
        assert!(inc.multi_database);
        assert_eq!(inc.commit_mode, CommitCapability::TwoPhase);
        assert_eq!(inc.create_mode, Some(CommitCapability::AutoCommit));
        assert_eq!(inc.insert_mode, Some(CommitCapability::TwoPhase));
        assert_eq!(inc.drop_mode, Some(CommitCapability::AutoCommit));
    }

    #[test]
    fn parses_import_variants() {
        let s1 = parse_statement("IMPORT DATABASE avis FROM SERVICE ingres1").unwrap();
        let Statement::Import(i1) = s1 else { panic!() };
        assert_eq!(i1.item, ImportItem::AllPublicTables);

        let s2 = parse_statement("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars").unwrap();
        let Statement::Import(i2) = s2 else { panic!() };
        assert_eq!(i2.item, ImportItem::Table { table: "cars".into(), columns: vec![] });

        let s3 = parse_statement(
            "IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars COLUMN (code, rate)",
        )
        .unwrap();
        let Statement::Import(i3) = s3 else { panic!() };
        assert_eq!(
            i3.item,
            ImportItem::Table { table: "cars".into(), columns: vec!["code".into(), "rate".into()] }
        );
    }

    #[test]
    fn parses_use_with_aliases() {
        let stmt = parse_statement("USE (continental cont) VITAL (delta d) united").unwrap();
        let Statement::Use(u) = stmt else { panic!() };
        assert_eq!(u.elements[0].alias.as_deref(), Some("cont"));
        assert!(u.elements[0].vital);
        assert_eq!(u.elements[1].alias.as_deref(), Some("d"));
        assert!(!u.elements[1].vital);
        assert_eq!(u.elements[2].alias, None);
    }

    #[test]
    fn parses_use_current() {
        let stmt = parse_statement("USE CURRENT avis").unwrap();
        let Statement::Use(u) = stmt else { panic!() };
        assert!(u.current);
    }

    #[test]
    fn parses_create_table() {
        let stmt = parse_statement(
            "CREATE TABLE avis.cars (code INT NOT NULL, cartype CHAR(16), rate FLOAT, carst CHAR(10))",
        )
        .unwrap();
        let Statement::CreateTable(ct) = stmt else { panic!() };
        assert_eq!(ct.table.database.as_ref().unwrap().as_str(), "avis");
        assert_eq!(ct.columns.len(), 4);
        assert!(ct.columns[0].not_null);
        assert_eq!(ct.columns[1].type_name, TypeName::Char(16));
    }

    #[test]
    fn parses_analyze_forms() {
        let s = parse_statement("ANALYZE").unwrap();
        assert!(matches!(s, Statement::Analyze(None)));

        let s = parse_statement("ANALYZE cars").unwrap();
        let Statement::Analyze(Some(t)) = s else { panic!() };
        assert_eq!(t.table.as_str(), "cars");
        assert!(t.database.is_none());

        // Optional TABLE keyword and a database qualifier.
        let s = parse_statement("ANALYZE TABLE avis.cars").unwrap();
        let Statement::Analyze(Some(t)) = s else { panic!() };
        assert_eq!(t.database.as_ref().unwrap().as_str(), "avis");
        assert_eq!(t.table.as_str(), "cars");
    }

    #[test]
    fn analyze_print_parse_roundtrip() {
        for sql in ["ANALYZE", "ANALYZE cars", "ANALYZE avis.cars"] {
            let stmt = parse_statement(sql).unwrap();
            let printed = crate::printer::print(&stmt);
            assert_eq!(printed, sql, "printer is canonical");
            let reparsed = parse_statement(&printed).unwrap();
            assert_eq!(crate::printer::print(&reparsed), printed, "roundtrip is stable");
        }
    }

    #[test]
    fn parses_insert_forms() {
        let s =
            parse_statement("INSERT INTO cars (code, rate) VALUES (1, 10.5), (2, NULL)").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let QueryBody::Insert(ins) = q.body else { panic!() };
        assert_eq!(ins.columns.len(), 2);
        let InsertSource::Values(rows) = ins.source else { panic!() };
        assert_eq!(rows.len(), 2);

        let s2 =
            parse_statement("INSERT INTO archive SELECT * FROM cars WHERE carst = 'old'").unwrap();
        let Statement::Query(q2) = s2 else { panic!() };
        let QueryBody::Insert(ins2) = q2.body else { panic!() };
        assert!(matches!(ins2.source, InsertSource::Select(_)));
    }

    #[test]
    fn parses_delete() {
        let s = parse_statement("DELETE FROM cars WHERE rate > 100").unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(q.body, QueryBody::Delete(_)));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("a + b * c = d OR e AND NOT f").unwrap();
        // OR at top.
        let Expr::Binary { op: BinaryOp::Or, left, right } = e else { panic!() };
        let Expr::Binary { op: BinaryOp::Eq, left: add, .. } = *left else { panic!() };
        let Expr::Binary { op: BinaryOp::Add, right: mul, .. } = *add else { panic!() };
        assert!(matches!(*mul, Expr::Binary { op: BinaryOp::Mul, .. }));
        let Expr::Binary { op: BinaryOp::And, right: not_f, .. } = *right else { panic!() };
        assert!(matches!(*not_f, Expr::Unary { op: UnaryOp::Not, .. }));
    }

    #[test]
    fn between_and_binds_to_between() {
        let e = parse_expr("x BETWEEN 1 AND 10 AND y = 2").unwrap();
        let Expr::Binary { op: BinaryOp::And, left, .. } = e else { panic!() };
        assert!(matches!(*left, Expr::Between { .. }));
    }

    #[test]
    fn parses_in_list_and_subquery() {
        assert!(matches!(parse_expr("x IN (1, 2, 3)").unwrap(), Expr::InList { .. }));
        assert!(matches!(
            parse_expr("x NOT IN (SELECT y FROM t)").unwrap(),
            Expr::InSubquery { negated: true, .. }
        ));
    }

    #[test]
    fn parses_like_and_is_null() {
        assert!(matches!(parse_expr("name LIKE 'a%'").unwrap(), Expr::Like { negated: false, .. }));
        assert!(matches!(
            parse_expr("rate IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn parses_aggregates() {
        let e = parse_expr("MIN(snu)").unwrap();
        assert!(matches!(e, Expr::Aggregate { kind: AggregateKind::Min, .. }));
        let c = parse_expr("COUNT(*)").unwrap();
        assert!(matches!(c, Expr::Aggregate { kind: AggregateKind::Count, arg: None, .. }));
        let d = parse_expr("COUNT(DISTINCT code)").unwrap();
        assert!(matches!(d, Expr::Aggregate { distinct: true, .. }));
    }

    #[test]
    fn parses_exists() {
        let e = parse_expr("EXISTS (SELECT 1 FROM t)").unwrap();
        assert!(matches!(e, Expr::Exists { negated: false, .. }));
    }

    #[test]
    fn parses_group_by_having_order_by() {
        let s = parse_statement(
            "SELECT cartype, COUNT(*) n FROM cars GROUP BY cartype HAVING COUNT(*) > 1 ORDER BY n DESC, cartype",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let QueryBody::Select(sel) = q.body else { panic!() };
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.order_by.len(), 2);
        assert_eq!(sel.order_by[0].order, SortOrder::Desc);
    }

    #[test]
    fn select_distinct_and_qualified_wildcard() {
        let s = parse_statement("SELECT DISTINCT c.* FROM cars c").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let QueryBody::Select(sel) = q.body else { panic!() };
        assert!(sel.distinct);
        assert!(matches!(&sel.items[0], SelectItem::QualifiedWildcard(w) if w.as_str() == "c"));
        assert_eq!(sel.from[0].alias.as_deref(), Some("c"));
    }

    #[test]
    fn script_with_multiple_statements() {
        let script = parse_script(
            "USE avis national;
             SELECT code FROM cars;
             COMMIT",
        )
        .unwrap();
        assert_eq!(script.statements.len(), 3);
        assert!(matches!(script.statements[0], Statement::Use(_)));
        assert!(matches!(script.statements[2], Statement::Commit));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("FLURB x").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("UPDATE t SET").is_err());
        assert!(parse_statement("USE").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_statement("SELECT a FROM t extra garbage ,").is_err());
    }

    #[test]
    fn rejects_empty_multitransaction_states() {
        assert!(parse_statement(
            "BEGIN MULTITRANSACTION SELECT a FROM t; COMMIT END MULTITRANSACTION"
        )
        .is_err());
    }

    #[test]
    fn keyword_column_names_are_allowed() {
        // The appendix schemas use `day` as a column; contextual keywords must
        // parse as identifiers.
        let s = parse_statement("SELECT day, rate FROM flights WHERE day = 'mon'").unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(q.body, QueryBody::Select(_)));
    }

    #[test]
    fn db_qualified_table_in_from() {
        let s = parse_statement("SELECT code FROM avis.cars").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let QueryBody::Select(sel) = q.body else { panic!() };
        assert_eq!(sel.from[0].database.as_ref().unwrap().as_str(), "avis");
        assert_eq!(sel.from[0].table.as_str(), "cars");
    }

    #[test]
    fn three_part_column_reference() {
        let e = parse_expr("avis.cars.rate").unwrap();
        let Expr::Column(c) = e else { panic!() };
        assert_eq!(c.database.unwrap().as_str(), "avis");
        assert_eq!(c.table.unwrap().as_str(), "cars");
        assert_eq!(c.column.as_str(), "rate");
    }

    #[test]
    fn standalone_let_statement() {
        let s = parse_statement("LET car.type BE cars.cartype vehicle.vty").unwrap();
        let Statement::Let(l) = s else { panic!() };
        assert_eq!(l.variables[0].bindings.len(), 2);
    }
}
