//! Rendering AST nodes back to MSQL/SQL text.
//!
//! The printer emits canonical text with minimal parentheses: printing any
//! parsed statement and reparsing the output yields an identical AST (this is
//! checked by property tests). For statements whose names have been fully
//! qualified by the translator, the output is plain SQL that an LDBS can
//! execute — the multidatabase layer uses exactly this path to ship
//! subqueries to local database systems.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders any statement to text.
pub fn print(stmt: &Statement) -> String {
    let mut out = String::new();
    write_statement(&mut out, stmt);
    out
}

/// Renders an expression to text.
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

/// Renders a SELECT to text.
pub fn print_select(sel: &Select) -> String {
    let mut out = String::new();
    write_select(&mut out, sel);
    out
}

fn write_statement(out: &mut String, stmt: &Statement) {
    match stmt {
        Statement::Query(q) => write_query(out, q),
        Statement::Use(u) => write_use(out, u),
        Statement::Let(l) => write_let(out, l),
        Statement::Multitransaction(m) => write_multitransaction(out, m),
        Statement::Incorporate(inc) => write_incorporate(out, inc),
        Statement::Import(imp) => write_import(out, imp),
        Statement::CreateDatabase(name) => {
            let _ = write!(out, "CREATE DATABASE {name}");
        }
        Statement::DropDatabase(name) => {
            let _ = write!(out, "DROP DATABASE {name}");
        }
        Statement::CreateTable(ct) => write_create_table(out, ct),
        Statement::DropTable(dt) => {
            out.push_str("DROP TABLE ");
            write_table_name(out, &dt.table);
        }
        Statement::CreateIndex(ci) => {
            let _ = write!(out, "CREATE INDEX {} ON ", ci.name);
            write_table_name(out, &ci.table);
            let method = match ci.method {
                IndexMethod::Hash => "HASH",
                IndexMethod::Btree => "BTREE",
            };
            let _ = write!(out, " ({}) USING {method}", ci.column);
        }
        Statement::DropIndex(di) => {
            let _ = write!(out, "DROP INDEX {} ON ", di.name);
            write_table_name(out, &di.table);
        }
        Statement::CreateTrigger(t) => {
            let _ = write!(
                out,
                "CREATE TRIGGER {} ON {}.{} AFTER {} EXECUTE ",
                t.name,
                t.database,
                t.table,
                t.event.name()
            );
            write_statement(out, &t.action);
        }
        Statement::DropTrigger(name) => {
            let _ = write!(out, "DROP TRIGGER {name}");
        }
        Statement::Commit => out.push_str("COMMIT"),
        Statement::Rollback => out.push_str("ROLLBACK"),
        Statement::Explain(inner) => {
            out.push_str("EXPLAIN ");
            write_statement(out, inner);
        }
        Statement::Analyze(table) => {
            out.push_str("ANALYZE");
            if let Some(t) = table {
                out.push(' ');
                write_table_name(out, t);
            }
        }
    }
}

fn write_query(out: &mut String, q: &MsqlQuery) {
    if let Some(u) = &q.use_clause {
        write_use(out, u);
        out.push('\n');
    }
    for l in &q.lets {
        write_let(out, l);
        out.push('\n');
    }
    match &q.body {
        QueryBody::Select(s) => write_select(out, s),
        QueryBody::Insert(i) => write_insert(out, i),
        QueryBody::Update(u) => write_update(out, u),
        QueryBody::Delete(d) => write_delete(out, d),
    }
    for comp in &q.comps {
        let _ = write!(out, "\nCOMP {}\n", comp.database);
        write_statement(out, &comp.statement);
    }
}

fn write_use(out: &mut String, u: &UseStatement) {
    out.push_str("USE");
    if u.current {
        out.push_str(" CURRENT");
    }
    for e in &u.elements {
        out.push(' ');
        match &e.alias {
            Some(a) => {
                let _ = write!(out, "({} {a})", e.database);
            }
            None => {
                let _ = write!(out, "{}", e.database);
            }
        }
        if e.vital {
            out.push_str(" VITAL");
        }
    }
}

fn write_let(out: &mut String, l: &LetStatement) {
    out.push_str("LET ");
    for (i, v) in l.variables.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.names.join("."));
        out.push_str(" BE");
        for b in &v.bindings {
            out.push(' ');
            out.push_str(&b.join("."));
        }
    }
}

fn write_multitransaction(out: &mut String, m: &Multitransaction) {
    out.push_str("BEGIN MULTITRANSACTION\n");
    for q in &m.queries {
        write_query(out, q);
        out.push_str(";\n");
    }
    out.push_str("COMMIT\n");
    for (i, state) in m.acceptable_states.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        let names: Vec<&str> = state.databases.iter().map(|d| d.as_str()).collect();
        out.push_str(&names.join(" AND "));
    }
    out.push_str("\nEND MULTITRANSACTION");
}

fn cap(c: CommitCapability) -> &'static str {
    match c {
        CommitCapability::AutoCommit => "COMMIT",
        CommitCapability::TwoPhase => "NOCOMMIT",
    }
}

fn write_incorporate(out: &mut String, inc: &Incorporate) {
    let _ = write!(out, "INCORPORATE SERVICE {}", inc.service);
    if let Some(site) = &inc.site {
        let _ = write!(out, " SITE {site}");
    }
    let _ = write!(
        out,
        " CONNECTMODE {} COMMITMODE {}",
        if inc.multi_database { "CONNECT" } else { "NOCONNECT" },
        cap(inc.commit_mode)
    );
    if let Some(m) = inc.create_mode {
        let _ = write!(out, " CREATE {}", cap(m));
    }
    if let Some(m) = inc.insert_mode {
        let _ = write!(out, " INSERT {}", cap(m));
    }
    if let Some(m) = inc.drop_mode {
        let _ = write!(out, " DROP {}", cap(m));
    }
}

fn write_import(out: &mut String, imp: &Import) {
    let _ = write!(out, "IMPORT DATABASE {} FROM SERVICE {}", imp.database, imp.service);
    match &imp.item {
        ImportItem::AllPublicTables => {}
        ImportItem::Table { table, columns } => {
            let _ = write!(out, " TABLE {table}");
            if !columns.is_empty() {
                let _ = write!(out, " COLUMN ({})", columns.join(", "));
            }
        }
        ImportItem::View { view, columns } => {
            let _ = write!(out, " VIEW {view}");
            if !columns.is_empty() {
                let _ = write!(out, " COLUMN ({})", columns.join(", "));
            }
        }
    }
}

fn type_name_text(t: TypeName) -> String {
    match t {
        TypeName::Int => "INT".to_string(),
        TypeName::Float => "FLOAT".to_string(),
        TypeName::Char(0) => "CHAR".to_string(),
        TypeName::Char(w) => format!("CHAR({w})"),
        TypeName::Bool => "BOOLEAN".to_string(),
        TypeName::Date => "DATE".to_string(),
    }
}

fn write_create_table(out: &mut String, ct: &CreateTable) {
    out.push_str("CREATE TABLE ");
    write_table_name(out, &ct.table);
    out.push_str(" (");
    for (i, c) in ct.columns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", c.name, type_name_text(c.type_name));
        if c.not_null {
            out.push_str(" NOT NULL");
        }
    }
    out.push(')');
}

fn write_table_name(out: &mut String, t: &TableRef) {
    if let Some(db) = &t.database {
        let _ = write!(out, "{db}.");
    }
    let _ = write!(out, "{}", t.table);
}

fn write_table_ref(out: &mut String, t: &TableRef) {
    write_table_name(out, t);
    if let Some(a) = &t.alias {
        let _ = write!(out, " {a}");
    }
}

fn write_select(out: &mut String, sel: &Select) {
    out.push_str("SELECT ");
    if sel.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in sel.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(t) => {
                let _ = write!(out, "{t}.*");
            }
            SelectItem::Expr { expr, alias, optional } => {
                if *optional {
                    out.push('~');
                }
                write_expr(out, expr, 0);
                if let Some(a) = alias {
                    let _ = write!(out, " AS {a}");
                }
            }
        }
    }
    if !sel.from.is_empty() {
        out.push_str(" FROM ");
        for (i, t) in sel.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_table_ref(out, t);
        }
    }
    if let Some(w) = &sel.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w, 0);
    }
    if !sel.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, e) in sel.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, e, 0);
        }
    }
    if let Some(h) = &sel.having {
        out.push_str(" HAVING ");
        write_expr(out, h, 0);
    }
    if !sel.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, o) in sel.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, &o.expr, 0);
            if o.order == SortOrder::Desc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(n) = sel.limit {
        let _ = write!(out, " LIMIT {n}");
    }
}

fn write_insert(out: &mut String, ins: &Insert) {
    out.push_str("INSERT INTO ");
    write_table_name(out, &ins.table);
    if !ins.columns.is_empty() {
        out.push_str(" (");
        for (i, c) in ins.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c}");
        }
        out.push(')');
    }
    match &ins.source {
        InsertSource::Values(rows) => {
            out.push_str(" VALUES ");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('(');
                for (j, e) in row.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, e, 0);
                }
                out.push(')');
            }
        }
        InsertSource::Select(sel) => {
            out.push(' ');
            write_select(out, sel);
        }
    }
}

fn write_update(out: &mut String, up: &Update) {
    out.push_str("UPDATE ");
    write_table_ref(out, &up.table);
    out.push_str(" SET ");
    for (i, a) in up.assignments.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} = ", a.column);
        write_expr(out, &a.value, 0);
    }
    if let Some(w) = &up.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w, 0);
    }
}

fn write_delete(out: &mut String, del: &Delete) {
    out.push_str("DELETE FROM ");
    write_table_ref(out, &del.table);
    if let Some(w) = &del.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w, 0);
    }
}

/// Precedence levels used to decide where parentheses are needed. Higher
/// binds tighter; mirrors the parser's grammar.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            op if op.is_comparison() => 4,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Concat => 5,
            BinaryOp::Mul | BinaryOp::Div => 6,
            _ => unreachable!(),
        },
        Expr::Unary { op: UnaryOp::Not, .. } => 3,
        Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::IsNull { .. }
        | Expr::Like { .. } => 4,
        Expr::Unary { op: UnaryOp::Neg, .. } => 7,
        _ => 8,
    }
}

fn write_child(out: &mut String, child: &Expr, min_prec: u8) {
    if precedence(child) < min_prec {
        out.push('(');
        write_expr(out, child, 0);
        out.push(')');
    } else {
        write_expr(out, child, 0);
    }
}

fn write_expr(out: &mut String, e: &Expr, _depth: usize) {
    match e {
        Expr::Column(c) => {
            if let Some(db) = &c.database {
                let _ = write!(out, "{db}.");
            }
            if let Some(t) = &c.table {
                let _ = write!(out, "{t}.");
            }
            let _ = write!(out, "{}", c.column);
        }
        Expr::Literal(l) => write_literal(out, l),
        Expr::Unary { op: UnaryOp::Not, expr } => {
            out.push_str("NOT ");
            write_child(out, expr, 3);
        }
        Expr::Unary { op: UnaryOp::Neg, expr } => {
            out.push('-');
            // Parenthesise unless the operand is primary: `--x` would lex as
            // a comment, and `-a + b` must not re-associate.
            if precedence(expr) < 8 {
                out.push('(');
                write_expr(out, expr, 0);
                out.push(')');
            } else {
                write_expr(out, expr, 0);
            }
        }
        Expr::Binary { left, op, right } => {
            let p = precedence(e);
            // Comparisons are non-associative (both operands are parsed at
            // the additive level), so an equal-precedence child needs parens
            // on either side; for left-associative operators only the right
            // child does.
            let left_min = if op.is_comparison() { p + 1 } else { p };
            write_child(out, left, left_min);
            let _ = write!(out, " {} ", op.symbol());
            write_child(out, right, p + 1);
        }
        Expr::Aggregate { kind, arg, distinct } => {
            let _ = write!(out, "{}(", kind.name());
            if *distinct {
                out.push_str("DISTINCT ");
            }
            match arg {
                Some(a) => write_expr(out, a, 0),
                None => out.push('*'),
            }
            out.push(')');
        }
        Expr::Function { name, args } => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        Expr::Subquery(sel) => {
            out.push('(');
            write_select(out, sel);
            out.push(')');
        }
        Expr::InList { expr, list, negated } => {
            write_child(out, expr, 5);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            for (i, e) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, e, 0);
            }
            out.push(')');
        }
        Expr::InSubquery { expr, subquery, negated } => {
            write_child(out, expr, 5);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            write_select(out, subquery);
            out.push(')');
        }
        Expr::Between { expr, low, high, negated } => {
            write_child(out, expr, 5);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" BETWEEN ");
            write_child(out, low, 5);
            out.push_str(" AND ");
            write_child(out, high, 5);
        }
        Expr::IsNull { expr, negated } => {
            write_child(out, expr, 5);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::Like { expr, pattern, negated } => {
            write_child(out, expr, 5);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" LIKE ");
            write_child(out, pattern, 5);
        }
        Expr::Exists { subquery, negated } => {
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            write_select(out, subquery);
            out.push(')');
        }
    }
}

fn write_literal(out: &mut String, l: &Literal) {
    match l {
        Literal::Null => out.push_str("NULL"),
        Literal::Int(v) => {
            if *v < 0 {
                // Negative literals only arise from folded ASTs; print in a
                // reparseable form (unary minus over a positive literal).
                let _ = write!(out, "-({})", v.unsigned_abs());
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Literal::Float(v) => {
            if *v < 0.0 {
                let _ = write!(out, "-({:?})", -v);
            } else {
                let _ = write!(out, "{v:?}");
            }
        }
        Literal::Str(s) => {
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        Literal::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_statement};

    fn roundtrip_stmt(src: &str) {
        let ast = parse_statement(src).unwrap();
        let printed = print(&ast);
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(ast, reparsed, "printed: {printed}");
    }

    fn roundtrip_expr(src: &str) {
        let ast = parse_expr(src).unwrap();
        let printed = print_expr(&ast);
        let reparsed =
            parse_expr(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(ast, reparsed, "printed: {printed}");
    }

    #[test]
    fn roundtrips_paper_queries() {
        roundtrip_stmt(
            "USE avis national
             LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
             SELECT %code, type, ~rate FROM car WHERE status = 'available'",
        );
        roundtrip_stmt(
            "USE continental VITAL delta united VITAL
             UPDATE flight% SET rate% = rate% * 1.1
             WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
        );
        roundtrip_stmt(
            "USE continental VITAL delta united VITAL
             UPDATE flight% SET rate% = rate% * 1.1
             WHERE sour% = 'Houston' AND dest% = 'San Antonio'
             COMP continental
             UPDATE flights SET rate = rate / 1.1
             WHERE source = 'Houston' AND destination = 'San Antonio'",
        );
    }

    #[test]
    fn roundtrips_multitransaction() {
        roundtrip_stmt(
            "BEGIN MULTITRANSACTION
               USE continental delta
               UPDATE fltab SET sstat = 'TAKEN'
               WHERE snu = (SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
               COMMIT continental AND national, delta AND avis
             END MULTITRANSACTION",
        );
    }

    #[test]
    fn roundtrips_ddl_and_admin() {
        roundtrip_stmt("CREATE TABLE avis.cars (code INT NOT NULL, cartype CHAR(16), rate FLOAT)");
        roundtrip_stmt("DROP TABLE avis.cars");
        roundtrip_stmt("CREATE DATABASE avis");
        roundtrip_stmt(
            "INCORPORATE SERVICE oracle1 SITE site1 CONNECTMODE CONNECT COMMITMODE NOCOMMIT CREATE COMMIT",
        );
        roundtrip_stmt("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars COLUMN (code, rate)");
        roundtrip_stmt("USE (continental cont) VITAL delta");
        roundtrip_stmt("CREATE INDEX cars_code ON avis.cars (code) USING BTREE");
        roundtrip_stmt("CREATE INDEX cars_carst ON cars (carst) USING HASH");
        roundtrip_stmt("DROP INDEX cars_code ON avis.cars");
    }

    #[test]
    fn create_index_defaults_to_btree() {
        // `USING` omitted parses as BTREE; the printer always emits the
        // method so the printed form is canonical.
        let stmt = crate::parse_statement("CREATE INDEX i ON cars (code)").unwrap();
        assert_eq!(print(&stmt), "CREATE INDEX i ON cars (code) USING BTREE");
    }

    #[test]
    fn roundtrips_dml() {
        roundtrip_stmt("INSERT INTO cars (code, rate) VALUES (1, 10.5), (2, NULL)");
        roundtrip_stmt("INSERT INTO archive SELECT * FROM cars WHERE carst = 'old'");
        roundtrip_stmt("DELETE FROM cars WHERE rate > 100");
    }

    #[test]
    fn roundtrips_tricky_expressions() {
        roundtrip_expr("a + b * c");
        roundtrip_expr("(a + b) * c");
        roundtrip_expr("a - (b - c)");
        roundtrip_expr("NOT (a OR b) AND c");
        roundtrip_expr("x BETWEEN 1 AND 10 AND y = 2");
        roundtrip_expr("a IN (1, 2) OR b NOT IN (SELECT x FROM t)");
        roundtrip_expr("name NOT LIKE 'a%' AND rate IS NOT NULL");
        roundtrip_expr("-(a + b) * 2");
        roundtrip_expr("COUNT(DISTINCT x) > 3");
        roundtrip_expr("EXISTS (SELECT 1 FROM t WHERE t.x = 1)");
        roundtrip_expr("'it''s' || 'fine'");
    }

    #[test]
    fn negative_literals_reparse() {
        let e = Expr::Literal(Literal::Int(-5));
        let printed = print_expr(&e);
        let back = parse_expr(&printed).unwrap();
        // -5 reparses as Neg(5); check it evaluates the same way by shape.
        assert!(matches!(back, Expr::Unary { op: UnaryOp::Neg, .. }));
    }

    #[test]
    fn printed_select_is_plain_sql() {
        let s = parse_statement(
            "SELECT code, rate FROM cars WHERE carst = 'available' ORDER BY rate DESC",
        )
        .unwrap();
        assert_eq!(
            print(&s),
            "SELECT code, rate FROM cars WHERE carst = 'available' ORDER BY rate DESC"
        );
    }

    #[test]
    fn not_prints_without_redundant_parens() {
        roundtrip_expr("NOT a = b");
        let e = parse_expr("NOT a = b").unwrap();
        assert_eq!(print_expr(&e), "NOT a = b");
    }

    #[test]
    fn double_negation_does_not_lex_as_comment() {
        let e = Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::Literal(Literal::Int(3))),
            }),
        };
        let printed = print_expr(&e);
        assert!(parse_expr(&printed).is_ok(), "printed: {printed}");
    }
}
