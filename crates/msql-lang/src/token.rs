//! Token definitions shared by the lexer and parser.

use crate::error::Span;
use std::fmt;

/// The kind of a lexical token.
///
/// Keywords are not distinguished at the lexer level: MSQL (like SQL) treats
/// keywords case-insensitively and most of them are contextual (`VITAL`,
/// `COMP`, `SERVICE`, ...), so the lexer emits [`TokenKind::Ident`] and the
/// parser matches keywords by spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword. May contain `%` wildcard characters, which mark
    /// an MSQL *multiple identifier* (e.g. `flight%`, `%code`).
    Ident(String),
    /// A single-quoted string literal, with quotes removed and `''` unescaped.
    StringLit(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `~` — MSQL optional-column designator.
    Tilde,
    /// `||` — string concatenation.
    Concat,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if the token is an identifier spelled like `kw` (ASCII
    /// case-insensitive). Used for keyword matching.
    pub fn is_kw(&self, kw: &str) -> bool {
        match self {
            TokenKind::Ident(s) => s.eq_ignore_ascii_case(kw),
            _ => false,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Tilde => write!(f, "~"),
            TokenKind::Concat => write!(f, "||"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexical token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Source location of the token.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_match_is_case_insensitive() {
        let t = TokenKind::Ident("SeLeCt".into());
        assert!(t.is_kw("select"));
        assert!(t.is_kw("SELECT"));
        assert!(!t.is_kw("from"));
    }

    #[test]
    fn non_ident_never_matches_keyword() {
        assert!(!TokenKind::Comma.is_kw("select"));
        assert!(!TokenKind::StringLit("select".into()).is_kw("select"));
    }

    #[test]
    fn display_roundtrips_punctuation() {
        assert_eq!(TokenKind::NotEq.to_string(), "<>");
        assert_eq!(TokenKind::Concat.to_string(), "||");
        assert_eq!(TokenKind::Tilde.to_string(), "~");
    }
}
