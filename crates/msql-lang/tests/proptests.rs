//! Property tests for the MSQL language layer.
//!
//! * the iterative `%` wildcard matcher agrees with an exponential reference
//!   implementation;
//! * printing any generated expression/statement and reparsing the output
//!   yields an identical AST (print → parse roundtrip).

use msql_lang::ident::wild_match_reference;
use msql_lang::printer::{print, print_expr};
use msql_lang::*;
use proptest::prelude::*;

// ---------------------------------------------------------------- wildcards

fn pattern_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            3 => prop::sample::select(vec!["a", "b", "c", "d"]),
            1 => Just("%"),
        ],
        0..8,
    )
    .prop_map(|parts| parts.concat())
}

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop::sample::select(vec!["a", "b", "c", "d"]), 0..10)
        .prop_map(|parts| parts.concat())
}

proptest! {
    #[test]
    fn wildcard_matcher_agrees_with_reference(p in pattern_strategy(), t in text_strategy()) {
        let fast = WildName::new(p.clone()).matches(&t);
        let slow = wild_match_reference(&p, &t);
        prop_assert_eq!(fast, slow, "pattern={} text={}", p, t);
    }

    #[test]
    fn wildcard_always_matches_own_expansion(
        prefix in text_strategy(),
        middle in text_strategy(),
        suffix in text_strategy(),
    ) {
        // For pattern `prefix%suffix`, any `prefix ++ middle ++ suffix` matches.
        let pattern = format!("{prefix}%{suffix}");
        let text = format!("{prefix}{middle}{suffix}");
        prop_assert!(WildName::new(pattern).matches(&text));
    }
}

// ------------------------------------------------------------- AST roundtrip

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.as_str(),
            "select"
                | "from"
                | "where"
                | "group"
                | "having"
                | "order"
                | "and"
                | "or"
                | "not"
                | "in"
                | "between"
                | "like"
                | "is"
                | "null"
                | "true"
                | "false"
                | "exists"
                | "use"
                | "let"
                | "be"
                | "comp"
                | "begin"
                | "end"
                | "commit"
                | "rollback"
                | "create"
                | "drop"
                | "insert"
                | "update"
                | "delete"
                | "set"
                | "values"
                | "into"
                | "as"
                | "by"
                | "distinct"
                | "all"
                | "asc"
                | "desc"
                | "vital"
                | "min"
                | "max"
                | "sum"
                | "avg"
                | "count"
                | "import"
                | "database"
                | "table"
                | "union"
                | "current"
                | "service"
                | "site"
                | "view"
                | "column"
                | "on"
                | "limit"
        )
    })
}

fn wildident_strategy() -> impl Strategy<Value = String> {
    (ident_strategy(), prop::bool::ANY, prop::bool::ANY).prop_map(|(base, pre, post)| {
        let mut s = String::new();
        if pre {
            s.push('%');
        }
        s.push_str(&base);
        if post {
            s.push('%');
        }
        s
    })
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        (0i64..10_000).prop_map(Literal::Int),
        (0u32..100_000).prop_map(|v| Literal::Float(v as f64 / 100.0)),
        "[a-zA-Z '0-9]{0,12}".prop_map(Literal::Str),
        prop::bool::ANY.prop_map(Literal::Bool),
    ]
}

fn column_strategy() -> impl Strategy<Value = ColumnRef> {
    (prop::option::of(ident_strategy()), prop::option::of(ident_strategy()), wildident_strategy())
        .prop_map(|(db, table, col)| match (db, table) {
            (Some(d), Some(t)) => ColumnRef::full(d, t, col),
            (_, Some(t)) => ColumnRef::with_table(t, col),
            _ => ColumnRef::bare(col),
        })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal_strategy().prop_map(Expr::Literal),
        column_strategy().prop_map(Expr::Column),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(l, r, sel)| {
                let op = match sel % 13 {
                    0 => BinaryOp::Or,
                    1 => BinaryOp::And,
                    2 => BinaryOp::Eq,
                    3 => BinaryOp::NotEq,
                    4 => BinaryOp::Lt,
                    5 => BinaryOp::LtEq,
                    6 => BinaryOp::Gt,
                    7 => BinaryOp::GtEq,
                    8 => BinaryOp::Add,
                    9 => BinaryOp::Sub,
                    10 => BinaryOp::Mul,
                    11 => BinaryOp::Div,
                    _ => BinaryOp::Concat,
                };
                Expr::Binary { left: Box::new(l), op, right: Box::new(r) }
            }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Neg, expr: Box::new(e) }),
            (inner.clone(), prop::bool::ANY)
                .prop_map(|(e, n)| Expr::IsNull { expr: Box::new(e), negated: n }),
            (inner.clone(), inner.clone(), inner.clone(), prop::bool::ANY).prop_map(
                |(e, lo, hi, n)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: n,
                }
            ),
            (inner.clone(), proptest::collection::vec(inner.clone(), 1..3), prop::bool::ANY)
                .prop_map(|(e, list, n)| Expr::InList { expr: Box::new(e), list, negated: n }),
            (ident_strategy(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::Function { name, args }),
            (inner, any::<u8>(), prop::bool::ANY).prop_map(|(e, k, d)| {
                let kind = match k % 5 {
                    0 => AggregateKind::Count,
                    1 => AggregateKind::Sum,
                    2 => AggregateKind::Avg,
                    3 => AggregateKind::Min,
                    _ => AggregateKind::Max,
                };
                Expr::Aggregate { kind, arg: Some(Box::new(e)), distinct: d }
            }),
        ]
    })
}

/// Negative literals print as `-(n)` and reparse as unary negation; normalise
/// both sides so structural comparison is meaningful.
fn normalise(e: &Expr) -> Expr {
    match e {
        Expr::Unary { op: UnaryOp::Neg, expr } => match normalise(expr) {
            Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
            Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
            inner => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) },
        },
        Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(normalise(expr)) },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(normalise(left)),
            op: *op,
            right: Box::new(normalise(right)),
        },
        Expr::Aggregate { kind, arg, distinct } => Expr::Aggregate {
            kind: *kind,
            arg: arg.as_ref().map(|a| Box::new(normalise(a))),
            distinct: *distinct,
        },
        Expr::Function { name, args } => {
            Expr::Function { name: name.clone(), args: args.iter().map(normalise).collect() }
        }
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(normalise(expr)),
            list: list.iter().map(normalise).collect(),
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(normalise(expr)),
            low: Box::new(normalise(low)),
            high: Box::new(normalise(high)),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(normalise(expr)), negated: *negated }
        }
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(normalise(expr)),
            pattern: Box::new(normalise(pattern)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_print_parse_roundtrip(e in expr_strategy()) {
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse {printed:?}: {err}"));
        prop_assert_eq!(normalise(&e), normalise(&reparsed), "printed: {}", printed);
    }
}

fn select_strategy() -> impl Strategy<Value = Select> {
    (
        prop::bool::ANY,
        proptest::collection::vec(
            (expr_strategy(), prop::option::of(ident_strategy()), prop::bool::ANY)
                .prop_map(|(expr, alias, optional)| SelectItem::Expr { expr, alias, optional }),
            1..4,
        ),
        proptest::collection::vec(
            (
                prop::option::of(ident_strategy()),
                ident_strategy(),
                prop::option::of(ident_strategy()),
            )
                .prop_map(|(db, t, alias)| TableRef {
                    database: db.map(WildName::new),
                    table: WildName::new(t),
                    alias,
                }),
            1..3,
        ),
        prop::option::of(expr_strategy()),
        proptest::collection::vec(
            (expr_strategy(), prop::bool::ANY).prop_map(|(expr, desc)| OrderByItem {
                expr,
                order: if desc { SortOrder::Desc } else { SortOrder::Asc },
            }),
            0..3,
        ),
        prop::option::of(0u64..20),
    )
        .prop_map(|(distinct, items, from, where_clause, order_by, limit)| Select {
            distinct,
            items,
            from,
            where_clause,
            group_by: Vec::new(),
            having: None,
            order_by,
            limit,
        })
}

fn normalise_select(s: &Select) -> Select {
    Select {
        distinct: s.distinct,
        items: s
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Expr { expr, alias, optional } => SelectItem::Expr {
                    expr: normalise(expr),
                    alias: alias.clone(),
                    optional: *optional,
                },
                other => other.clone(),
            })
            .collect(),
        from: s.from.clone(),
        where_clause: s.where_clause.as_ref().map(normalise),
        group_by: s.group_by.iter().map(normalise).collect(),
        having: s.having.as_ref().map(normalise),
        order_by: s
            .order_by
            .iter()
            .map(|o| OrderByItem { expr: normalise(&o.expr), order: o.order })
            .collect(),
        limit: s.limit,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn select_print_parse_roundtrip(s in select_strategy()) {
        let stmt = Statement::select(s.clone());
        let printed = print(&stmt);
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse {printed:?}: {err}"));
        let Statement::Query(q) = reparsed else { panic!("not a query: {printed}") };
        let QueryBody::Select(back) = q.body else { panic!("not a select: {printed}") };
        prop_assert_eq!(normalise_select(&s), normalise_select(&back), "printed: {}", printed);
    }
}
