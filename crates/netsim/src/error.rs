//! Network errors.

use std::fmt;

/// Errors raised by the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination site is not registered.
    UnknownSite(String),
    /// The two sites are currently partitioned from each other.
    Partitioned {
        /// Sending site.
        from: String,
        /// Receiving site.
        to: String,
    },
    /// The message was dropped by stochastic failure injection.
    Dropped,
    /// No message arrived within the timeout.
    Timeout,
    /// The endpoint's network has shut down.
    Disconnected,
    /// A site with this name is already registered.
    DuplicateSite(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownSite(s) => write!(f, "unknown site `{s}`"),
            NetError::Partitioned { from, to } => {
                write!(f, "network partition between `{from}` and `{to}`")
            }
            NetError::Dropped => write!(f, "message dropped"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Disconnected => write!(f, "network disconnected"),
            NetError::DuplicateSite(s) => write!(f, "site `{s}` already registered"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_sites() {
        let e = NetError::Partitioned { from: "hub".into(), to: "site1".into() };
        let s = e.to_string();
        assert!(s.contains("hub") && s.contains("site1"));
    }
}
