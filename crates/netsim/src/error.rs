//! Network errors and their transient/terminal classification.

use std::fmt;

/// Whether a network fault is worth retrying.
///
/// *Transient* faults (timeouts, injected drops, latency spikes beyond the
/// receive deadline, partitions — which heal) may succeed on a resend.
/// *Terminal* faults (unknown or deregistered sites, closed endpoints) will
/// fail identically forever; callers should give up immediately and report
/// the peer as unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Retrying may succeed (lossy or slow link).
    Transient,
    /// Retrying cannot succeed (the peer is gone).
    Terminal,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => f.write_str("transient"),
            FaultKind::Terminal => f.write_str("terminal"),
        }
    }
}

/// Errors raised by the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination site is not registered.
    UnknownSite(String),
    /// The two sites are currently partitioned from each other.
    Partitioned {
        /// Sending site.
        from: String,
        /// Receiving site.
        to: String,
    },
    /// The message was dropped by stochastic failure injection.
    Dropped,
    /// No message arrived within the timeout.
    Timeout,
    /// The endpoint's network has shut down.
    Disconnected,
    /// A site with this name is already registered.
    DuplicateSite(String),
}

impl NetError {
    /// Classifies this fault for retry decisions.
    pub fn fault_kind(&self) -> FaultKind {
        match self {
            NetError::Timeout | NetError::Dropped | NetError::Partitioned { .. } => {
                FaultKind::Transient
            }
            NetError::UnknownSite(_) | NetError::Disconnected | NetError::DuplicateSite(_) => {
                FaultKind::Terminal
            }
        }
    }

    /// True when a resend might succeed.
    pub fn is_transient(&self) -> bool {
        self.fault_kind() == FaultKind::Transient
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownSite(s) => write!(f, "unknown site `{s}`"),
            NetError::Partitioned { from, to } => {
                write!(f, "network partition between `{from}` and `{to}`")
            }
            NetError::Dropped => write!(f, "message dropped"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Disconnected => write!(f, "network disconnected"),
            NetError::DuplicateSite(s) => write!(f, "site `{s}` already registered"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_sites() {
        let e = NetError::Partitioned { from: "hub".into(), to: "site1".into() };
        let s = e.to_string();
        assert!(s.contains("hub") && s.contains("site1"));
    }

    #[test]
    fn classification_matches_retry_semantics() {
        assert!(NetError::Timeout.is_transient());
        assert!(NetError::Dropped.is_transient());
        assert!(NetError::Partitioned { from: "a".into(), to: "b".into() }.is_transient());
        assert_eq!(NetError::UnknownSite("x".into()).fault_kind(), FaultKind::Terminal);
        assert_eq!(NetError::Disconnected.fault_kind(), FaultKind::Terminal);
        assert_eq!(NetError::DuplicateSite("x".into()).fault_kind(), FaultKind::Terminal);
    }
}
