//! One-way latency model.

use std::collections::HashMap;
use std::time::Duration;

/// Latency model: a base one-way delay plus per-link overrides. Links are
/// directional; an override for `(a, b)` does not affect `(b, a)`.
#[derive(Debug, Clone, Default)]
pub struct LatencyModel {
    /// Delay applied to every link without an override.
    pub base: Duration,
    overrides: HashMap<(String, String), Duration>,
    /// Injected extra delay per link, added on top of the base/override
    /// (fault injection: latency spikes).
    spikes: HashMap<(String, String), Duration>,
}

impl LatencyModel {
    /// Zero latency everywhere (unit tests).
    pub fn instant() -> Self {
        LatencyModel::default()
    }

    /// Uniform latency on all links.
    pub fn uniform(base: Duration) -> Self {
        LatencyModel { base, ..LatencyModel::default() }
    }

    /// Sets a directional per-link override.
    pub fn set_link(&mut self, from: &str, to: &str, latency: Duration) {
        self.overrides.insert((from.to_string(), to.to_string()), latency);
    }

    /// Sets the same override in both directions.
    pub fn set_link_symmetric(&mut self, a: &str, b: &str, latency: Duration) {
        self.set_link(a, b, latency);
        self.set_link(b, a, latency);
    }

    /// Injects an extra directional delay on top of the link's normal
    /// latency (a fault-injection latency spike).
    pub fn inject_spike(&mut self, from: &str, to: &str, extra: Duration) {
        self.spikes.insert((from.to_string(), to.to_string()), extra);
    }

    /// Removes an injected spike.
    pub fn clear_spike(&mut self, from: &str, to: &str) {
        self.spikes.remove(&(from.to_string(), to.to_string()));
    }

    /// The one-way delay from `from` to `to`, including any injected spike.
    pub fn delay(&self, from: &str, to: &str) -> Duration {
        let key = (from.to_string(), to.to_string());
        let normal = self.overrides.get(&key).copied().unwrap_or(self.base);
        normal + self.spikes.get(&key).copied().unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_applies_without_override() {
        let m = LatencyModel::uniform(Duration::from_millis(3));
        assert_eq!(m.delay("a", "b"), Duration::from_millis(3));
    }

    #[test]
    fn overrides_are_directional() {
        let mut m = LatencyModel::uniform(Duration::from_millis(3));
        m.set_link("a", "b", Duration::from_millis(10));
        assert_eq!(m.delay("a", "b"), Duration::from_millis(10));
        assert_eq!(m.delay("b", "a"), Duration::from_millis(3));
    }

    #[test]
    fn symmetric_override() {
        let mut m = LatencyModel::instant();
        m.set_link_symmetric("a", "b", Duration::from_millis(7));
        assert_eq!(m.delay("a", "b"), Duration::from_millis(7));
        assert_eq!(m.delay("b", "a"), Duration::from_millis(7));
    }

    #[test]
    fn spikes_stack_on_normal_latency_and_clear() {
        let mut m = LatencyModel::uniform(Duration::from_millis(3));
        m.inject_spike("a", "b", Duration::from_millis(40));
        assert_eq!(m.delay("a", "b"), Duration::from_millis(43));
        assert_eq!(m.delay("b", "a"), Duration::from_millis(3), "spikes are directional");
        m.clear_spike("a", "b");
        assert_eq!(m.delay("a", "b"), Duration::from_millis(3));
    }
}
