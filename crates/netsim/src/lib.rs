//! # netsim — simulated multi-site network
//!
//! Stand-in for the TCP/IP + ISODE communication substrate of the Narada
//! environment (paper §4.1). The multidatabase engine and the Local Access
//! Managers run at named *sites* and exchange text messages ("messages, data
//! and command files" in the paper's words) through this crate.
//!
//! Features the reproduction needs:
//!
//! * **mailbox endpoints** — register a site, get an [`Endpoint`] with
//!   blocking/timeout receive;
//! * **latency model** — a base one-way delay plus per-link overrides;
//!   delivery time is enforced at the receiver, so messages in flight overlap
//!   (this is what makes parallel vs. serial subquery execution measurable,
//!   experiment B7);
//! * **failure injection** — per-link partitions and seeded stochastic drops,
//!   producing the timeout-driven abort paths of §3.2;
//! * **traffic accounting** — message and byte counts per link, used by the
//!   benchmarks to count 2PC rounds (experiment B3).

pub mod error;
pub mod latency;
pub mod message;
pub mod network;
pub mod pool;
pub mod stats;

pub use error::{FaultKind, NetError};
pub use latency::LatencyModel;
pub use message::{Body, Message};
pub use network::{Endpoint, Network};
pub use pool::{BufferPool, PooledBuf};
pub use stats::NetStats;
