//! Messages exchanged between sites.

use std::time::Instant;

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending site.
    pub from: String,
    /// Receiving site.
    pub to: String,
    /// Message body (the reproduction ships text: SQL, DOL commands, status
    /// codes, serialized result tables).
    pub body: String,
    /// Monotonically increasing per-network sequence number.
    pub seq: u64,
}

/// Internal wire representation: a message plus its earliest delivery time.
#[derive(Debug, Clone)]
pub(crate) struct Envelope {
    pub message: Message,
    pub deliver_at: Instant,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn envelope_carries_delivery_time() {
        let m = Message { from: "a".into(), to: "b".into(), body: "hi".into(), seq: 1 };
        let e =
            Envelope { message: m.clone(), deliver_at: Instant::now() + Duration::from_millis(5) };
        assert_eq!(e.message, m);
        assert!(e.deliver_at > Instant::now());
    }
}
