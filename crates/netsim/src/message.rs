//! Messages exchanged between sites.

use crate::pool::PooledBuf;
use std::time::Instant;

/// A message payload: line-oriented text (the default and debug format) or a
/// binary frame leased from a [`crate::pool::BufferPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// UTF-8 text (SQL, DOL commands, status codes, serialized tables).
    Text(String),
    /// A length-prefixed binary frame (see `mdbs::codec`).
    Binary(PooledBuf),
}

impl Body {
    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        match self {
            Body::Text(s) => s.len(),
            Body::Binary(b) => b.len(),
        }
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The text payload, if this is a text body.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Body::Text(s) => Some(s),
            Body::Binary(_) => None,
        }
    }

    /// The binary payload, if this is a binary body.
    pub fn as_binary(&self) -> Option<&[u8]> {
        match self {
            Body::Text(_) => None,
            Body::Binary(b) => Some(b),
        }
    }

    /// True for binary bodies.
    pub fn is_binary(&self) -> bool {
        matches!(self, Body::Binary(_))
    }

    /// The text payload; panics on a binary body. Convenience for tests and
    /// text-only call sites.
    pub fn as_str(&self) -> &str {
        self.as_text().expect("binary body has no text form")
    }
}

impl From<String> for Body {
    fn from(s: String) -> Self {
        Body::Text(s)
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Self {
        Body::Text(s.to_string())
    }
}

impl From<&String> for Body {
    fn from(s: &String) -> Self {
        Body::Text(s.clone())
    }
}

impl From<PooledBuf> for Body {
    fn from(b: PooledBuf) -> Self {
        Body::Binary(b)
    }
}

impl From<Vec<u8>> for Body {
    fn from(b: Vec<u8>) -> Self {
        Body::Binary(PooledBuf::detached(b))
    }
}

impl PartialEq<str> for Body {
    fn eq(&self, other: &str) -> bool {
        self.as_text() == Some(other)
    }
}

impl PartialEq<&str> for Body {
    fn eq(&self, other: &&str) -> bool {
        self.as_text() == Some(*other)
    }
}

impl PartialEq<String> for Body {
    fn eq(&self, other: &String) -> bool {
        self.as_text() == Some(other.as_str())
    }
}

impl std::fmt::Display for Body {
    /// Text bodies render verbatim; binary bodies render as a size tag
    /// (frames are not printable).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Body::Text(s) => f.write_str(s),
            Body::Binary(b) => write!(f, "<binary {} bytes>", b.len()),
        }
    }
}

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending site.
    pub from: String,
    /// Receiving site.
    pub to: String,
    /// Message body: text or a binary frame.
    pub body: Body,
    /// Monotonically increasing per-network sequence number.
    pub seq: u64,
}

/// Internal wire representation: a message plus its earliest delivery time.
#[derive(Debug, Clone)]
pub(crate) struct Envelope {
    pub message: Message,
    pub deliver_at: Instant,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn envelope_carries_delivery_time() {
        let m = Message { from: "a".into(), to: "b".into(), body: "hi".into(), seq: 1 };
        let e =
            Envelope { message: m.clone(), deliver_at: Instant::now() + Duration::from_millis(5) };
        assert_eq!(e.message, m);
        assert!(e.deliver_at > Instant::now());
    }

    #[test]
    fn body_text_compat_surface() {
        let b = Body::from("hello");
        assert_eq!(b, "hello");
        assert_eq!(b, "hello".to_string());
        assert_eq!(b.as_str(), "hello");
        assert_eq!(b.len(), 5);
        assert!(!b.is_binary());
        assert_eq!(format!("{b}"), "hello");
    }

    #[test]
    fn body_binary_surface() {
        let b = Body::from(vec![0xB1u8, 0x01]);
        assert!(b.is_binary());
        assert_eq!(b.as_binary(), Some(&[0xB1u8, 0x01][..]));
        assert_eq!(b.as_text(), None);
        assert_eq!(b.len(), 2);
        assert_eq!(format!("{b}"), "<binary 2 bytes>");
        assert_ne!(b, Body::from("text"));
    }
}
