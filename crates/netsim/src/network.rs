//! The network fabric and site endpoints.

use crate::error::NetError;
use crate::latency::LatencyModel;
use crate::message::{Body, Envelope, Message};
use crate::stats::NetStats;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use obs::{LogicalClock, MetricsRegistry};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Observability hook: every send advances the logical clock (so traces see
/// network activity as time) and feeds the `net.*` metric series.
#[derive(Clone, Default)]
struct Probe {
    clock: LogicalClock,
    metrics: MetricsRegistry,
}

#[derive(Default)]
struct Fabric {
    probe: RwLock<Option<Probe>>,
    sites: RwLock<HashMap<String, Sender<Envelope>>>,
    latency: RwLock<LatencyModel>,
    partitions: RwLock<HashSet<(String, String)>>,
    drop_probability: RwLock<f64>,
    link_drop_probability: RwLock<HashMap<(String, String), f64>>,
    /// Deterministic injection: the next N messages on a link are dropped.
    forced_drops: RwLock<HashMap<(String, String), u64>>,
    rng: Mutex<Option<StdRng>>,
    stats: Mutex<NetStats>,
    seq: AtomicU64,
}

/// A simulated network shared by all sites of the federation. Cloning is
/// cheap (shared fabric).
#[derive(Clone, Default)]
pub struct Network {
    fabric: Arc<Fabric>,
}

impl Network {
    /// Creates a network with no latency and no failures.
    pub fn new() -> Self {
        Network::default()
    }

    /// Creates a network with a seeded RNG for stochastic drops.
    pub fn with_seed(seed: u64) -> Self {
        let net = Network::default();
        *net.fabric.rng.lock() = Some(StdRng::seed_from_u64(seed));
        net
    }

    /// Registers a site and returns its endpoint.
    pub fn register(&self, name: &str) -> Result<Endpoint, NetError> {
        let (tx, rx) = unbounded();
        let mut sites = self.fabric.sites.write();
        if sites.contains_key(name) {
            return Err(NetError::DuplicateSite(name.to_string()));
        }
        sites.insert(name.to_string(), tx);
        Ok(Endpoint { name: name.to_string(), rx, fabric: Arc::clone(&self.fabric) })
    }

    /// Removes a site; pending messages to it are lost.
    pub fn deregister(&self, name: &str) {
        self.fabric.sites.write().remove(name);
    }

    /// Installs a latency model.
    pub fn set_latency(&self, model: LatencyModel) {
        *self.fabric.latency.write() = model;
    }

    /// Sets the probability that any message is silently dropped.
    pub fn set_drop_probability(&self, p: f64) {
        *self.fabric.drop_probability.write() = p.clamp(0.0, 1.0);
        self.ensure_rng();
    }

    /// Sets a directional per-link drop probability. Where both a global
    /// and a link probability apply, the larger wins. Either endpoint may be
    /// the wildcard `"*"`, matching any site — useful to degrade every link
    /// touching one site when the peers (e.g. ephemeral client endpoints)
    /// are not known in advance. An exact link entry takes precedence over a
    /// wildcard one.
    pub fn set_link_drop_probability(&self, from: &str, to: &str, p: f64) {
        self.fabric
            .link_drop_probability
            .write()
            .insert((from.to_string(), to.to_string()), p.clamp(0.0, 1.0));
        self.ensure_rng();
    }

    /// Sets the same drop probability in both directions.
    pub fn set_link_drop_probability_symmetric(&self, a: &str, b: &str, p: f64) {
        self.set_link_drop_probability(a, b, p);
        self.set_link_drop_probability(b, a, p);
    }

    /// Removes a per-link drop probability.
    pub fn clear_link_drop_probability(&self, from: &str, to: &str) {
        self.fabric.link_drop_probability.write().remove(&(from.to_string(), to.to_string()));
    }

    /// Deterministically drops the next `count` messages sent on the
    /// `from → to` link, then restores normal delivery. Used to lose a
    /// specific message (e.g. exactly one commit ack) without randomness.
    /// Either endpoint may be the wildcard `"*"`; an exact link entry is
    /// consumed before a wildcard one.
    pub fn drop_next(&self, from: &str, to: &str, count: u64) {
        self.fabric.forced_drops.write().insert((from.to_string(), to.to_string()), count);
    }

    /// Injects an extra directional delay (latency spike) on a link,
    /// stacking on top of the installed latency model.
    pub fn inject_link_delay(&self, from: &str, to: &str, extra: Duration) {
        self.fabric.latency.write().inject_spike(from, to, extra);
    }

    /// Clears an injected latency spike.
    pub fn clear_link_delay(&self, from: &str, to: &str) {
        self.fabric.latency.write().clear_spike(from, to);
    }

    fn ensure_rng(&self) {
        let mut rng = self.fabric.rng.lock();
        if rng.is_none() {
            *rng = Some(StdRng::seed_from_u64(0));
        }
    }

    /// Partitions two sites (both directions refuse sends).
    pub fn partition(&self, a: &str, b: &str) {
        let mut p = self.fabric.partitions.write();
        p.insert((a.to_string(), b.to_string()));
        p.insert((b.to_string(), a.to_string()));
    }

    /// Heals a partition.
    pub fn heal(&self, a: &str, b: &str) {
        let mut p = self.fabric.partitions.write();
        p.remove(&(a.to_string(), b.to_string()));
        p.remove(&(b.to_string(), a.to_string()));
    }

    /// Attaches an observability probe: every delivered or dropped message
    /// ticks `clock` once and increments the `net.messages` / `net.bytes` /
    /// `net.dropped` / `net.refused` counters in `metrics`.
    pub fn attach_probe(&self, clock: LogicalClock, metrics: MetricsRegistry) {
        *self.fabric.probe.write() = Some(Probe { clock, metrics });
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        self.fabric.stats.lock().clone()
    }

    /// Resets the traffic counters (between benchmark iterations).
    pub fn reset_stats(&self) {
        *self.fabric.stats.lock() = NetStats::default();
    }
}

/// A site's handle on the network: send to any site, receive from a private
/// mailbox.
pub struct Endpoint {
    name: String,
    rx: Receiver<Envelope>,
    fabric: Arc<Fabric>,
}

impl Endpoint {
    /// This endpoint's site name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ticks the attached probe (if any) and bumps one `net.*` counter.
    /// Exactly one clock tick per observable network event — golden traces
    /// pin tick-derived spans, so the per-format byte counters below ride on
    /// the same event without extra ticks.
    fn probe_event(&self, counter: &str, body: Option<&Body>) {
        if let Some(probe) = self.fabric.probe.read().as_ref() {
            probe.clock.tick();
            probe.metrics.counter_add(counter, 1);
            if let Some(body) = body {
                if !body.is_empty() {
                    probe.metrics.counter_add("net.bytes", body.len() as u64);
                    let variant = match body {
                        Body::Text(_) => "net.bytes_text",
                        Body::Binary(_) => "net.bytes_binary",
                    };
                    probe.metrics.counter_add(variant, body.len() as u64);
                }
            }
        }
    }

    /// Sends a message. Fails fast on partitions and unknown sites; a
    /// stochastic drop is reported as success (the sender cannot tell — it
    /// will observe a receive timeout instead), mirroring real datagram
    /// behaviour.
    pub fn send(&self, to: &str, body: impl Into<Body>) -> Result<(), NetError> {
        let body = body.into();
        if self.fabric.partitions.read().contains(&(self.name.clone(), to.to_string())) {
            self.fabric.stats.lock().refused += 1;
            self.probe_event("net.refused", None);
            return Err(NetError::Partitioned { from: self.name.clone(), to: to.to_string() });
        }
        let sites = self.fabric.sites.read();
        let tx = sites.get(to).ok_or_else(|| NetError::UnknownSite(to.to_string()))?;
        let link = (self.name.clone(), to.to_string());
        // Exact match first, then wildcard sender, then wildcard receiver.
        let link_keys =
            [link.clone(), ("*".to_string(), to.to_string()), (self.name.clone(), "*".to_string())];
        // Deterministic forced drop (highest precedence).
        {
            let mut forced = self.fabric.forced_drops.write();
            for key in &link_keys {
                if let Some(remaining) = forced.get_mut(key) {
                    if *remaining > 0 {
                        *remaining -= 1;
                        if *remaining == 0 {
                            forced.remove(key);
                        }
                        self.fabric.stats.lock().record_drop(&self.name, to);
                        self.probe_event("net.dropped", None);
                        return Ok(());
                    }
                }
            }
        }
        // Stochastic drop: the larger of the global and per-link rates.
        let p = {
            let global = *self.fabric.drop_probability.read();
            let map = self.fabric.link_drop_probability.read();
            let per_link = link_keys.iter().find_map(|key| map.get(key).copied()).unwrap_or(0.0);
            global.max(per_link)
        };
        if p > 0.0 {
            let mut rng = self.fabric.rng.lock();
            if let Some(rng) = rng.as_mut() {
                if rng.gen_bool(p) {
                    self.fabric.stats.lock().record_drop(&self.name, to);
                    self.probe_event("net.dropped", None);
                    return Ok(());
                }
            }
        }
        let delay = self.fabric.latency.read().delay(&self.name, to);
        let seq = self.fabric.seq.fetch_add(1, Ordering::Relaxed);
        let message = Message { from: self.name.clone(), to: to.to_string(), body, seq };
        self.fabric.stats.lock().record_send(&self.name, to, message.body.len());
        self.probe_event("net.messages", Some(&message.body));
        let envelope = Envelope { message, deliver_at: Instant::now() + delay };
        tx.send(envelope).map_err(|_| NetError::Disconnected)?;
        Ok(())
    }

    /// Receives the next message, waiting at most `timeout`. Honours each
    /// message's simulated delivery time.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, NetError> {
        let deadline = Instant::now() + timeout;
        let envelope = match self.rx.recv_deadline(deadline) {
            Ok(e) => e,
            Err(RecvTimeoutError::Timeout) => return Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => return Err(NetError::Disconnected),
        };
        // Wait out the simulated flight time (senders enqueue instantly).
        let now = Instant::now();
        if envelope.deliver_at > now {
            std::thread::sleep(envelope.deliver_at - now);
        }
        Ok(envelope.message)
    }

    /// Receives with a generous default timeout (tests, servers).
    pub fn recv(&self) -> Result<Message, NetError> {
        self.recv_timeout(Duration::from_secs(10))
    }

    /// True when a message is ready in the mailbox (may still be in
    /// simulated flight).
    pub fn has_mail(&self) -> bool {
        !self.rx.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        a.send("b", "hello").unwrap();
        let m = b.recv().unwrap();
        assert_eq!(m.from, "a");
        assert_eq!(m.body, "hello");
    }

    #[test]
    fn unknown_site_is_an_error() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        assert!(matches!(a.send("ghost", "x"), Err(NetError::UnknownSite(_))));
    }

    #[test]
    fn duplicate_site_rejected() {
        let net = Network::new();
        let _a = net.register("a").unwrap();
        assert!(matches!(net.register("a"), Err(NetError::DuplicateSite(_))));
    }

    #[test]
    fn messages_preserve_order_per_link() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        for i in 0..10 {
            a.send("b", format!("m{i}")).unwrap();
        }
        for i in 0..10 {
            assert_eq!(b.recv().unwrap().body, format!("m{i}"));
        }
    }

    #[test]
    fn partition_refuses_sends_and_heals() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        net.partition("a", "b");
        assert!(matches!(a.send("b", "x"), Err(NetError::Partitioned { .. })));
        assert!(matches!(b.send("a", "x"), Err(NetError::Partitioned { .. })));
        net.heal("a", "b");
        a.send("b", "x").unwrap();
        assert_eq!(b.recv().unwrap().body, "x");
        assert_eq!(net.stats().refused, 2);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let net = Network::with_seed(7);
        net.set_drop_probability(1.0);
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        a.send("b", "x").unwrap(); // sender cannot tell
        assert!(matches!(b.recv_timeout(Duration::from_millis(20)), Err(NetError::Timeout)));
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn per_link_drop_probability_only_affects_that_link() {
        let net = Network::with_seed(11);
        net.set_link_drop_probability("a", "b", 1.0);
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        a.send("b", "lost").unwrap();
        assert!(matches!(b.recv_timeout(Duration::from_millis(20)), Err(NetError::Timeout)));
        // The reverse direction is unaffected.
        b.send("a", "ok").unwrap();
        assert_eq!(a.recv().unwrap().body, "ok");
        assert_eq!(net.stats().link_dropped("a", "b"), 1);
        assert_eq!(net.stats().link_dropped("b", "a"), 0);
        net.clear_link_drop_probability("a", "b");
        a.send("b", "healed").unwrap();
        assert_eq!(b.recv().unwrap().body, "healed");
    }

    #[test]
    fn wildcard_link_drop_matches_any_peer() {
        let net = Network::with_seed(3);
        net.set_link_drop_probability("*", "b", 1.0);
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        let c = net.register("c").unwrap();
        a.send("b", "x").unwrap();
        c.send("b", "y").unwrap();
        assert!(matches!(b.recv_timeout(Duration::from_millis(20)), Err(NetError::Timeout)));
        assert_eq!(net.stats().dropped, 2, "both senders hit the wildcard link");
        // Other destinations are unaffected.
        b.send("a", "ok").unwrap();
        assert_eq!(a.recv().unwrap().body, "ok");
        // An exact entry takes precedence over the wildcard.
        net.set_link_drop_probability("a", "b", 0.0);
        a.send("b", "through").unwrap();
        assert_eq!(b.recv().unwrap().body, "through");
    }

    #[test]
    fn wildcard_forced_drop_loses_next_outgoing_message() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        net.drop_next("a", "*", 1);
        a.send("b", "lost").unwrap();
        a.send("b", "kept").unwrap();
        assert_eq!(b.recv().unwrap().body, "kept");
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn drop_next_loses_exactly_n_messages() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        net.drop_next("a", "b", 2);
        a.send("b", "one").unwrap();
        a.send("b", "two").unwrap();
        a.send("b", "three").unwrap();
        assert_eq!(b.recv().unwrap().body, "three");
        assert!(matches!(b.recv_timeout(Duration::from_millis(10)), Err(NetError::Timeout)));
        assert_eq!(net.stats().dropped, 2);
    }

    #[test]
    fn injected_delay_spikes_slow_one_link() {
        let net = Network::new();
        net.inject_link_delay("a", "b", Duration::from_millis(30));
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        let start = Instant::now();
        a.send("b", "x").unwrap();
        b.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
        net.clear_link_delay("a", "b");
        let start = Instant::now();
        a.send("b", "y").unwrap();
        b.recv().unwrap();
        assert!(start.elapsed() < Duration::from_millis(25));
    }

    #[test]
    fn latency_delays_delivery() {
        let net = Network::new();
        let mut model = LatencyModel::instant();
        model.set_link("a", "b", Duration::from_millis(30));
        net.set_latency(model);
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        let start = Instant::now();
        a.send("b", "x").unwrap();
        b.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn latency_overlaps_for_messages_in_flight() {
        // Two messages sent at once through 30 ms links arrive ~together,
        // not serially — the property parallel plans rely on.
        let net = Network::new();
        net.set_latency(LatencyModel::uniform(Duration::from_millis(30)));
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        let start = Instant::now();
        a.send("b", "one").unwrap();
        a.send("b", "two").unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(30));
        assert!(elapsed < Duration::from_millis(55), "elapsed {elapsed:?}");
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let _b = net.register("b").unwrap();
        a.send("b", "12345").unwrap();
        a.send("b", "1").unwrap();
        let s = net.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 6);
        assert_eq!(s.link_messages("a", "b"), 2);
        net.reset_stats();
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn probe_ticks_clock_and_counts_traffic() {
        let net = Network::new();
        let clock = LogicalClock::new();
        let metrics = MetricsRegistry::new();
        net.attach_probe(clock.clone(), metrics.clone());
        let a = net.register("a").unwrap();
        let _b = net.register("b").unwrap();
        a.send("b", "12345").unwrap();
        net.drop_next("a", "b", 1);
        a.send("b", "lost").unwrap();
        assert_eq!(clock.now(), 2, "one tick per observable network event");
        assert_eq!(metrics.counter("net.messages"), 1);
        assert_eq!(metrics.counter("net.bytes"), 5);
        assert_eq!(metrics.counter("net.bytes_text"), 5);
        assert_eq!(metrics.counter("net.bytes_binary"), 0);
        assert_eq!(metrics.counter("net.dropped"), 1);
    }

    #[test]
    fn binary_bodies_ship_and_count_separately() {
        let net = Network::new();
        let clock = LogicalClock::new();
        let metrics = MetricsRegistry::new();
        net.attach_probe(clock.clone(), metrics.clone());
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        let pool = crate::pool::BufferPool::new(4);
        let mut frame = pool.lease();
        frame.extend_from_slice(&[0xB1, 0x01, 0x00]);
        a.send("b", frame).unwrap();
        let m = b.recv().unwrap();
        assert_eq!(m.body.as_binary(), Some(&[0xB1u8, 0x01, 0x00][..]));
        assert_eq!(metrics.counter("net.bytes"), 3);
        assert_eq!(metrics.counter("net.bytes_binary"), 3);
        assert_eq!(metrics.counter("net.bytes_text"), 0);
        assert_eq!(clock.now(), 1, "format does not change tick accounting");
        drop(m);
        assert_eq!(pool.idle(), 1, "receiver-side drop refills the sender's pool");
    }

    #[test]
    fn timeout_when_no_mail() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        assert!(matches!(a.recv_timeout(Duration::from_millis(10)), Err(NetError::Timeout)));
    }

    #[test]
    fn cross_thread_usage() {
        let net = Network::new();
        let server = net.register("server").unwrap();
        let client = net.register("client").unwrap();
        let handle = std::thread::spawn(move || {
            let m = server.recv().unwrap();
            server.send(&m.from, format!("echo:{}", m.body)).unwrap();
        });
        client.send("server", "ping").unwrap();
        let reply = client.recv().unwrap();
        assert_eq!(reply.body, "echo:ping");
        handle.join().unwrap();
    }
}
