//! The network fabric and site endpoints.

use crate::error::NetError;
use crate::latency::LatencyModel;
use crate::message::{Envelope, Message};
use crate::stats::NetStats;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Default)]
struct Fabric {
    sites: RwLock<HashMap<String, Sender<Envelope>>>,
    latency: RwLock<LatencyModel>,
    partitions: RwLock<HashSet<(String, String)>>,
    drop_probability: RwLock<f64>,
    rng: Mutex<Option<StdRng>>,
    stats: Mutex<NetStats>,
    seq: AtomicU64,
}

/// A simulated network shared by all sites of the federation. Cloning is
/// cheap (shared fabric).
#[derive(Clone, Default)]
pub struct Network {
    fabric: Arc<Fabric>,
}

impl Network {
    /// Creates a network with no latency and no failures.
    pub fn new() -> Self {
        Network::default()
    }

    /// Creates a network with a seeded RNG for stochastic drops.
    pub fn with_seed(seed: u64) -> Self {
        let net = Network::default();
        *net.fabric.rng.lock() = Some(StdRng::seed_from_u64(seed));
        net
    }

    /// Registers a site and returns its endpoint.
    pub fn register(&self, name: &str) -> Result<Endpoint, NetError> {
        let (tx, rx) = unbounded();
        let mut sites = self.fabric.sites.write();
        if sites.contains_key(name) {
            return Err(NetError::DuplicateSite(name.to_string()));
        }
        sites.insert(name.to_string(), tx);
        Ok(Endpoint { name: name.to_string(), rx, fabric: Arc::clone(&self.fabric) })
    }

    /// Removes a site; pending messages to it are lost.
    pub fn deregister(&self, name: &str) {
        self.fabric.sites.write().remove(name);
    }

    /// Installs a latency model.
    pub fn set_latency(&self, model: LatencyModel) {
        *self.fabric.latency.write() = model;
    }

    /// Sets the probability that any message is silently dropped.
    pub fn set_drop_probability(&self, p: f64) {
        *self.fabric.drop_probability.write() = p.clamp(0.0, 1.0);
        let mut rng = self.fabric.rng.lock();
        if rng.is_none() {
            *rng = Some(StdRng::seed_from_u64(0));
        }
    }

    /// Partitions two sites (both directions refuse sends).
    pub fn partition(&self, a: &str, b: &str) {
        let mut p = self.fabric.partitions.write();
        p.insert((a.to_string(), b.to_string()));
        p.insert((b.to_string(), a.to_string()));
    }

    /// Heals a partition.
    pub fn heal(&self, a: &str, b: &str) {
        let mut p = self.fabric.partitions.write();
        p.remove(&(a.to_string(), b.to_string()));
        p.remove(&(b.to_string(), a.to_string()));
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        self.fabric.stats.lock().clone()
    }

    /// Resets the traffic counters (between benchmark iterations).
    pub fn reset_stats(&self) {
        *self.fabric.stats.lock() = NetStats::default();
    }
}

/// A site's handle on the network: send to any site, receive from a private
/// mailbox.
pub struct Endpoint {
    name: String,
    rx: Receiver<Envelope>,
    fabric: Arc<Fabric>,
}

impl Endpoint {
    /// This endpoint's site name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends a message. Fails fast on partitions and unknown sites; a
    /// stochastic drop is reported as success (the sender cannot tell — it
    /// will observe a receive timeout instead), mirroring real datagram
    /// behaviour.
    pub fn send(&self, to: &str, body: impl Into<String>) -> Result<(), NetError> {
        let body = body.into();
        if self.fabric.partitions.read().contains(&(self.name.clone(), to.to_string())) {
            self.fabric.stats.lock().refused += 1;
            return Err(NetError::Partitioned { from: self.name.clone(), to: to.to_string() });
        }
        let sites = self.fabric.sites.read();
        let tx = sites
            .get(to)
            .ok_or_else(|| NetError::UnknownSite(to.to_string()))?;
        // Stochastic drop.
        let p = *self.fabric.drop_probability.read();
        if p > 0.0 {
            let mut rng = self.fabric.rng.lock();
            if let Some(rng) = rng.as_mut() {
                if rng.gen_bool(p) {
                    let mut stats = self.fabric.stats.lock();
                    stats.dropped += 1;
                    return Ok(());
                }
            }
        }
        let delay = self.fabric.latency.read().delay(&self.name, to);
        let seq = self.fabric.seq.fetch_add(1, Ordering::Relaxed);
        let message = Message { from: self.name.clone(), to: to.to_string(), body, seq };
        self.fabric.stats.lock().record_send(&self.name, to, message.body.len());
        let envelope = Envelope { message, deliver_at: Instant::now() + delay };
        tx.send(envelope).map_err(|_| NetError::Disconnected)?;
        Ok(())
    }

    /// Receives the next message, waiting at most `timeout`. Honours each
    /// message's simulated delivery time.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, NetError> {
        let deadline = Instant::now() + timeout;
        let envelope = match self.rx.recv_deadline(deadline) {
            Ok(e) => e,
            Err(RecvTimeoutError::Timeout) => return Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => return Err(NetError::Disconnected),
        };
        // Wait out the simulated flight time (senders enqueue instantly).
        let now = Instant::now();
        if envelope.deliver_at > now {
            std::thread::sleep(envelope.deliver_at - now);
        }
        Ok(envelope.message)
    }

    /// Receives with a generous default timeout (tests, servers).
    pub fn recv(&self) -> Result<Message, NetError> {
        self.recv_timeout(Duration::from_secs(10))
    }

    /// True when a message is ready in the mailbox (may still be in
    /// simulated flight).
    pub fn has_mail(&self) -> bool {
        !self.rx.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        a.send("b", "hello").unwrap();
        let m = b.recv().unwrap();
        assert_eq!(m.from, "a");
        assert_eq!(m.body, "hello");
    }

    #[test]
    fn unknown_site_is_an_error() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        assert!(matches!(a.send("ghost", "x"), Err(NetError::UnknownSite(_))));
    }

    #[test]
    fn duplicate_site_rejected() {
        let net = Network::new();
        let _a = net.register("a").unwrap();
        assert!(matches!(net.register("a"), Err(NetError::DuplicateSite(_))));
    }

    #[test]
    fn messages_preserve_order_per_link() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        for i in 0..10 {
            a.send("b", format!("m{i}")).unwrap();
        }
        for i in 0..10 {
            assert_eq!(b.recv().unwrap().body, format!("m{i}"));
        }
    }

    #[test]
    fn partition_refuses_sends_and_heals() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        net.partition("a", "b");
        assert!(matches!(a.send("b", "x"), Err(NetError::Partitioned { .. })));
        assert!(matches!(b.send("a", "x"), Err(NetError::Partitioned { .. })));
        net.heal("a", "b");
        a.send("b", "x").unwrap();
        assert_eq!(b.recv().unwrap().body, "x");
        assert_eq!(net.stats().refused, 2);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let net = Network::with_seed(7);
        net.set_drop_probability(1.0);
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        a.send("b", "x").unwrap(); // sender cannot tell
        assert!(matches!(
            b.recv_timeout(Duration::from_millis(20)),
            Err(NetError::Timeout)
        ));
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn latency_delays_delivery() {
        let net = Network::new();
        let mut model = LatencyModel::instant();
        model.set_link("a", "b", Duration::from_millis(30));
        net.set_latency(model);
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        let start = Instant::now();
        a.send("b", "x").unwrap();
        b.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn latency_overlaps_for_messages_in_flight() {
        // Two messages sent at once through 30 ms links arrive ~together,
        // not serially — the property parallel plans rely on.
        let net = Network::new();
        net.set_latency(LatencyModel::uniform(Duration::from_millis(30)));
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        let start = Instant::now();
        a.send("b", "one").unwrap();
        a.send("b", "two").unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(30));
        assert!(elapsed < Duration::from_millis(55), "elapsed {elapsed:?}");
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let _b = net.register("b").unwrap();
        a.send("b", "12345").unwrap();
        a.send("b", "1").unwrap();
        let s = net.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 6);
        assert_eq!(s.link_messages("a", "b"), 2);
        net.reset_stats();
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn timeout_when_no_mail() {
        let net = Network::new();
        let a = net.register("a").unwrap();
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn cross_thread_usage() {
        let net = Network::new();
        let server = net.register("server").unwrap();
        let client = net.register("client").unwrap();
        let handle = std::thread::spawn(move || {
            let m = server.recv().unwrap();
            server.send(&m.from, format!("echo:{}", m.body)).unwrap();
        });
        client.send("server", "ping").unwrap();
        let reply = client.recv().unwrap();
        assert_eq!(reply.body, "echo:ping");
        handle.join().unwrap();
    }
}
