//! Lease-style buffer pool for hot-path message sends.
//!
//! The binary wire codec encodes every frame into a [`PooledBuf`] leased
//! from a [`BufferPool`]. The lease travels with the message: cloning a
//! `PooledBuf` (the fabric clones bodies into reply caches) copies the
//! bytes but keeps the pool handle, and *every* drop — sender side or
//! receiver side — clears the buffer and returns it to the pool, so a
//! steady-state request/reply loop reuses a small working set of
//! allocations instead of allocating per message.

use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    /// Buffers returned beyond this count are dropped instead of retained.
    capacity: usize,
    leases: AtomicU64,
    reuses: AtomicU64,
}

/// A bounded pool of byte buffers. Cloning shares the pool.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new(32)
    }
}

impl BufferPool {
    /// Creates a pool retaining at most `capacity` idle buffers.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                capacity,
                leases: AtomicU64::new(0),
                reuses: AtomicU64::new(0),
            }),
        }
    }

    /// Leases an empty buffer, reusing a returned one when available.
    pub fn lease(&self) -> PooledBuf {
        self.inner.leases.fetch_add(1, Ordering::Relaxed);
        let data = match self.inner.free.lock().pop() {
            Some(buf) => {
                self.inner.reuses.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => Vec::new(),
        };
        PooledBuf { data, pool: Some(Arc::clone(&self.inner)) }
    }

    /// Number of idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Total leases served since creation.
    pub fn leases(&self) -> u64 {
        self.inner.leases.load(Ordering::Relaxed)
    }

    /// Leases satisfied by a recycled buffer (no fresh allocation).
    pub fn reuses(&self) -> u64 {
        self.inner.reuses.load(Ordering::Relaxed)
    }
}

/// A byte buffer leased from a [`BufferPool`]. Dereferences to `Vec<u8>`.
/// On drop the storage is cleared (capacity kept) and handed back to the
/// pool; buffers created with [`PooledBuf::detached`] simply deallocate.
pub struct PooledBuf {
    data: Vec<u8>,
    pool: Option<Arc<PoolInner>>,
}

impl PooledBuf {
    /// Wraps an owned vector with no backing pool.
    pub fn detached(data: Vec<u8>) -> Self {
        PooledBuf { data, pool: None }
    }

    /// Extracts the bytes, bypassing the return-to-pool path.
    pub fn into_vec(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.data)
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.data
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            let mut data = std::mem::take(&mut self.data);
            let mut free = pool.free.lock();
            if free.len() < pool.capacity {
                data.clear();
                free.push(data);
            }
        }
    }
}

impl Clone for PooledBuf {
    /// Copies the bytes but shares the pool, so the clone's eventual drop
    /// (possibly at the receiving site) also refills the pool.
    fn clone(&self) -> Self {
        PooledBuf { data: self.data.clone(), pool: self.pool.clone() }
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBuf({} bytes)", self.data.len())
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for PooledBuf {}

impl From<Vec<u8>> for PooledBuf {
    fn from(data: Vec<u8>) -> Self {
        PooledBuf::detached(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_returns_on_drop_and_reuses() {
        let pool = BufferPool::new(4);
        {
            let mut b = pool.lease();
            b.extend_from_slice(b"hello");
            assert_eq!(&b[..], b"hello");
        }
        assert_eq!(pool.idle(), 1);
        let b = pool.lease();
        assert!(b.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn clone_keeps_pool_so_both_sides_return() {
        let pool = BufferPool::new(4);
        let a = pool.lease();
        let b = a.clone();
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn capacity_bounds_retention() {
        let pool = BufferPool::new(1);
        let a = pool.lease();
        let b = pool.lease();
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn detached_buffers_skip_the_pool() {
        let pool = BufferPool::new(4);
        drop(PooledBuf::detached(vec![1, 2, 3]));
        assert_eq!(pool.idle(), 0);
        let owned = pool.lease();
        assert_eq!(owned.into_vec(), Vec::<u8>::new());
        assert_eq!(pool.idle(), 0, "into_vec bypasses return");
    }
}
