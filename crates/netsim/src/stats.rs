//! Traffic accounting.

use std::collections::HashMap;

/// Aggregate and per-link traffic counters. Snapshots are taken via
/// [`crate::Network::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages accepted for delivery.
    pub messages: u64,
    /// Total body bytes accepted for delivery.
    pub bytes: u64,
    /// Messages dropped by failure injection.
    pub dropped: u64,
    /// Sends refused because of a partition.
    pub refused: u64,
    /// Per-link `(from, to) → message count`.
    pub per_link: HashMap<(String, String), u64>,
    /// Per-link `(from, to) → dropped count` (stochastic and forced drops).
    pub per_link_dropped: HashMap<(String, String), u64>,
}

impl NetStats {
    /// Messages sent from `from` to `to`.
    pub fn link_messages(&self, from: &str, to: &str) -> u64 {
        self.per_link.get(&(from.to_string(), to.to_string())).copied().unwrap_or(0)
    }

    /// Messages dropped on the `from → to` link.
    pub fn link_dropped(&self, from: &str, to: &str) -> u64 {
        self.per_link_dropped.get(&(from.to_string(), to.to_string())).copied().unwrap_or(0)
    }

    pub(crate) fn record_send(&mut self, from: &str, to: &str, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        *self.per_link.entry((from.to_string(), to.to_string())).or_insert(0) += 1;
    }

    pub(crate) fn record_drop(&mut self, from: &str, to: &str) {
        self.dropped += 1;
        *self.per_link_dropped.entry((from.to_string(), to.to_string())).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_updates_all_counters() {
        let mut s = NetStats::default();
        s.record_send("a", "b", 10);
        s.record_send("a", "b", 5);
        s.record_send("b", "a", 1);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 16);
        assert_eq!(s.link_messages("a", "b"), 2);
        assert_eq!(s.link_messages("b", "a"), 1);
        assert_eq!(s.link_messages("a", "c"), 0);
    }

    #[test]
    fn record_drop_tracks_totals_and_links() {
        let mut s = NetStats::default();
        s.record_drop("a", "b");
        s.record_drop("a", "b");
        s.record_drop("b", "a");
        assert_eq!(s.dropped, 3);
        assert_eq!(s.link_dropped("a", "b"), 2);
        assert_eq!(s.link_dropped("b", "a"), 1);
        assert_eq!(s.link_dropped("a", "c"), 0);
    }
}
