//! Property tests for the simulated network: per-link FIFO ordering, drop
//! accounting, and partition symmetry under arbitrary traffic patterns.

use netsim::{NetError, Network};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn per_link_fifo_ordering(bodies in proptest::collection::vec(".{0,30}", 1..20)) {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        for body in &bodies {
            a.send("b", body.clone()).unwrap();
        }
        for body in &bodies {
            let m = b.recv_timeout(Duration::from_secs(1)).unwrap();
            prop_assert_eq!(&m.body, body);
            prop_assert_eq!(m.from.as_str(), "a");
        }
        // Mailbox drained.
        prop_assert!(matches!(
            b.recv_timeout(Duration::from_millis(5)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn interleaved_senders_preserve_per_sender_order(
        pattern in proptest::collection::vec(any::<bool>(), 1..24)
    ) {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let b = net.register("b").unwrap();
        let sink = net.register("sink").unwrap();
        let (mut na, mut nb) = (0u32, 0u32);
        for from_a in &pattern {
            if *from_a {
                a.send("sink", format!("a{na}")).unwrap();
                na += 1;
            } else {
                b.send("sink", format!("b{nb}")).unwrap();
                nb += 1;
            }
        }
        let (mut next_a, mut next_b) = (0u32, 0u32);
        for _ in 0..pattern.len() {
            let m = sink.recv_timeout(Duration::from_secs(1)).unwrap();
            if m.from == "a" {
                prop_assert_eq!(m.body, format!("a{next_a}"));
                next_a += 1;
            } else {
                prop_assert_eq!(m.body, format!("b{next_b}"));
                next_b += 1;
            }
        }
        prop_assert_eq!((next_a, next_b), (na, nb));
    }

    #[test]
    fn stats_account_for_every_accepted_message(
        bodies in proptest::collection::vec(".{0,20}", 0..16)
    ) {
        let net = Network::new();
        let a = net.register("a").unwrap();
        let _b = net.register("b").unwrap();
        let mut bytes = 0u64;
        for body in &bodies {
            bytes += body.len() as u64;
            a.send("b", body.clone()).unwrap();
        }
        let stats = net.stats();
        prop_assert_eq!(stats.messages, bodies.len() as u64);
        prop_assert_eq!(stats.bytes, bytes);
        prop_assert_eq!(stats.link_messages("a", "b"), bodies.len() as u64);
        prop_assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn partitions_are_symmetric_and_heal(names in proptest::collection::vec("[a-z]{1,6}", 2..5)) {
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        prop_assume!(unique.len() >= 2);
        let net = Network::new();
        let endpoints: Vec<_> =
            unique.iter().map(|n| net.register(n).unwrap()).collect();
        let (x, y) = (&unique[0], &unique[1]);
        net.partition(x, y);
        let xy_blocked = matches!(endpoints[0].send(y, "m"), Err(NetError::Partitioned { .. }));
        let yx_blocked = matches!(endpoints[1].send(x, "m"), Err(NetError::Partitioned { .. }));
        prop_assert!(xy_blocked);
        prop_assert!(yx_blocked);
        // Third parties are unaffected.
        if unique.len() >= 3 {
            endpoints[0].send(&unique[2], "ok").unwrap();
        }
        net.heal(x, y);
        endpoints[0].send(y, "after").unwrap();
        let m = endpoints[1].recv_timeout(Duration::from_secs(1)).unwrap();
        prop_assert_eq!(m.body.as_str(), "after");
    }
}
