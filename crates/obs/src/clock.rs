//! Deterministic logical clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared monotonic tick counter. Cloning yields another handle onto the
/// same clock; ticks are totally ordered across all handles.
///
/// The clock only moves when something observable happens (a span opens or
/// closes, a message crosses the simulated network), so two runs of the same
/// serial program read identical tick values.
#[derive(Clone, Debug, Default)]
pub struct LogicalClock {
    ticks: Arc<AtomicU64>,
}

impl LogicalClock {
    /// Creates a clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock and returns the new tick.
    pub fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Reads the current tick without advancing.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_shared_and_monotonic() {
        let a = LogicalClock::new();
        let b = a.clone();
        assert_eq!(a.tick(), 1);
        assert_eq!(b.tick(), 2);
        assert_eq!(a.now(), 2);
    }
}
