//! Observability substrate for the extended-MSQL federation.
//!
//! Three pieces, all deterministic so traces can be snapshot-tested:
//!
//! * [`LogicalClock`] — a shared atomic tick counter. Every observable event
//!   (span start/end, network send) advances it; no wall-clock ever enters a
//!   trace, which is what makes golden-trace tests byte-identical run to run.
//! * [`Tracer`]/[`Span`] — hierarchical spans collected per statement. A
//!   [`Span`] is an owning guard (ends on drop); a [`SpanCtx`] is a cheap
//!   `Clone + Send` handle used to open children from other threads or from
//!   components that outlive the guard.
//! * [`MetricsRegistry`] — lock-cheap counters/gauges/histograms keyed by
//!   flat names with inline labels (`lam.rows{db=avis}`), rendered in sorted
//!   order for deterministic output.
//!
//! [`SpanTree`]/[`ExplainReport`] turn the raw records into the normalized
//! tree and per-LAM cost table behind the `EXPLAIN` statement.

pub mod clock;
pub mod metrics;
pub mod report;
pub mod span;

pub use clock::LogicalClock;
pub use metrics::{labeled, quantile, Histogram, MetricsRegistry, MetricsSnapshot};
pub use report::{
    ExplainReport, JoinSummary, LamCost, PlannerRow, PlannerSummary, PushdownRow, PushdownSummary,
    SpanNode, SpanTree, WireSummary,
};
pub use span::{Span, SpanCtx, SpanRecord, Tracer};
