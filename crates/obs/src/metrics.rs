//! Lock-cheap metrics registry with deterministic rendering.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Formats a labeled metric name, e.g. `labeled("lam.rows", "db", "avis")`
/// → `lam.rows{db=avis}`.
pub fn labeled(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}={value}}}")
}

/// Nearest-rank quantile of an ascending-sorted sample set, `q` in `[0, 1]`
/// (`0.5` = median, `0.99` = p99). Returns 0 for an empty slice. Histograms
/// stay cheap count/sum/min/max aggregates; callers that need tail latency
/// keep their raw samples and ask here.
pub fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate of observed values for one histogram series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum += value;
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Shared registry of counters, gauges and histograms. Cloning yields
/// another handle onto the same store; a single short mutex hold per update
/// keeps it cheap on the hot path.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at zero first if needed.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an absolute value.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.inner.lock().gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge (zero if never set).
    pub fn gauge(&self, name: &str) -> i64 {
        self.inner.lock().gauges.get(name).copied().unwrap_or(0)
    }

    /// Records one observation into a histogram series.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock();
        inner.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// Reads a histogram aggregate (all-zero if never observed).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner.lock().histograms.get(name).copied().unwrap_or_default()
    }

    /// Clears every series.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }

    /// Point-in-time copy of every series, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }
}

/// Sorted point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Renders every series, one per line, in sorted order — deterministic
    /// for a deterministic run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter   {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} min={} max={}\n",
                h.count, h.sum, h.min, h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_is_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&samples, 0.5), 50);
        assert_eq!(quantile(&samples, 0.99), 99);
        assert_eq!(quantile(&samples, 1.0), 100);
        assert_eq!(quantile(&samples, 0.0), 1);
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.99), 7);
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m.counter_add("net.messages", 2);
        m2.counter_add("net.messages", 3);
        assert_eq!(m.counter("net.messages"), 5);
    }

    #[test]
    fn histogram_tracks_min_max_sum() {
        let m = MetricsRegistry::new();
        m.observe("lat", 5);
        m.observe("lat", 1);
        m.observe("lat", 9);
        assert_eq!(m.histogram("lat"), Histogram { count: 3, sum: 15, min: 1, max: 9 });
    }

    #[test]
    fn render_is_sorted_and_labeled() {
        let m = MetricsRegistry::new();
        m.counter_add(&labeled("lam.rows", "db", "national"), 2);
        m.counter_add(&labeled("lam.rows", "db", "avis"), 2);
        m.gauge_set("ldbs.commits{db=avis}", 1);
        let text = m.snapshot().render();
        let avis = text.find("lam.rows{db=avis}").unwrap();
        let national = text.find("lam.rows{db=national}").unwrap();
        assert!(avis < national);
        assert!(text.contains("gauge     ldbs.commits{db=avis} = 1"));
    }
}
