//! Span-tree assembly, normalization and EXPLAIN rendering.

use std::collections::BTreeMap;

use crate::span::SpanRecord;

/// One node of an assembled span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Opening tick (normalized after [`SpanTree::normalize`]).
    pub start: u64,
    /// Closing tick.
    pub end: u64,
    /// Key/value annotations in insertion order.
    pub notes: Vec<(String, String)>,
    /// Child spans.
    pub children: Vec<SpanNode>,
}

/// A statement's spans assembled into a forest (usually a single root).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// Root spans in execution order.
    pub roots: Vec<SpanNode>,
}

impl SpanTree {
    /// Assembles the flat records of a tracer into a tree. Records arrive in
    /// id order, so a parent always precedes its children. A span still open
    /// at assembly time (end tick 0) is clamped to the latest tick observed,
    /// keeping durations well-defined.
    pub fn from_records(records: &[SpanRecord]) -> SpanTree {
        let horizon = records.iter().map(|r| r.start.max(r.end)).max().unwrap_or(0);
        fn build(records: &[SpanRecord], parent: Option<u64>, horizon: u64) -> Vec<SpanNode> {
            records
                .iter()
                .filter(|r| r.parent == parent)
                .map(|r| SpanNode {
                    name: r.name.clone(),
                    start: r.start,
                    end: if r.end == 0 { horizon } else { r.end },
                    notes: r.notes.clone(),
                    children: build(records, Some(r.id), horizon),
                })
                .collect()
        }
        SpanTree { roots: build(records, None, horizon) }
    }

    /// Makes the tree stable for snapshot comparison: children are sorted by
    /// `(start, name)` and every tick is densely renumbered so the first
    /// event is tick 0 and consecutive events differ by 1. Dense renumbering
    /// keeps goldens immune to unrelated clock traffic (connection setup,
    /// other statements) that merely shifts or stretches raw tick values.
    pub fn normalize(&mut self) {
        fn sort_children(nodes: &mut [SpanNode]) {
            nodes.sort_by(|a, b| a.start.cmp(&b.start).then_with(|| a.name.cmp(&b.name)));
            for n in nodes.iter_mut() {
                sort_children(&mut n.children);
            }
        }
        sort_children(&mut self.roots);

        let mut ticks = BTreeMap::new();
        fn collect(nodes: &[SpanNode], ticks: &mut BTreeMap<u64, u64>) {
            for n in nodes {
                ticks.insert(n.start, 0);
                ticks.insert(n.end, 0);
                collect(&n.children, ticks);
            }
        }
        collect(&self.roots, &mut ticks);
        for (dense, slot) in ticks.values_mut().enumerate() {
            *slot = dense as u64;
        }
        fn renumber(nodes: &mut [SpanNode], ticks: &BTreeMap<u64, u64>) {
            for n in nodes {
                n.start = ticks[&n.start];
                n.end = ticks[&n.end];
                renumber(&mut n.children, ticks);
            }
        }
        renumber(&mut self.roots, &ticks);
    }

    /// Renders the forest as an ASCII tree with `[start..end +duration]`
    /// logical timing and inline `{key=value}` notes.
    pub fn render(&self) -> String {
        fn line(out: &mut String, node: &SpanNode, prefix: &str, last: bool, root: bool) {
            let (branch, cont) = if root {
                (String::new(), String::new())
            } else if last {
                (format!("{prefix}└─ "), format!("{prefix}   "))
            } else {
                (format!("{prefix}├─ "), format!("{prefix}│  "))
            };
            out.push_str(&branch);
            out.push_str(&node.name);
            out.push_str(&format!(" [{}..{} +{}]", node.start, node.end, node.end - node.start));
            if !node.notes.is_empty() {
                let notes: Vec<String> =
                    node.notes.iter().map(|(k, v)| format!("{k}={v}")).collect();
                out.push_str(&format!(" {{{}}}", notes.join(" ")));
            }
            out.push('\n');
            for (i, child) in node.children.iter().enumerate() {
                line(out, child, &cont, i + 1 == node.children.len(), false);
            }
        }
        let mut out = String::new();
        for root in &self.roots {
            line(&mut out, root, "", true, true);
        }
        out
    }

    /// Depth-first visit of every node.
    pub fn visit(&self, f: &mut impl FnMut(&SpanNode)) {
        fn walk(nodes: &[SpanNode], f: &mut impl FnMut(&SpanNode)) {
            for n in nodes {
                f(n);
                walk(&n.children, f);
            }
        }
        walk(&self.roots, f);
    }
}

/// Aggregated cost of one LDBS as seen through its LAM spans.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LamCost {
    /// Database the LAM fronts.
    pub database: String,
    /// Number of DOL tasks executed against it.
    pub tasks: u64,
    /// Total LAM round-trip attempts (retries included).
    pub attempts: u64,
    /// Network faults absorbed while talking to it.
    pub faults: u64,
    /// Rows shipped back from it.
    pub rows: u64,
    /// Result payload bytes shipped back from it.
    pub bytes: u64,
    /// Logical ticks spent inside its task spans.
    pub latency: u64,
    /// Distinct local access paths (`probe`, `scan`) reported by its spans,
    /// in encounter order. Empty when the engine reported none.
    pub access: Vec<String>,
}

/// How a cross-database join was executed, as annotated on its `join` span.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JoinSummary {
    /// Strategy name (`hash`, `product`, optionally `semijoin+`-prefixed).
    pub strategy: String,
    /// Distinct join-key values shipped as semi-join filters.
    pub keys_shipped: u64,
    /// Partial-result bytes the semi-join reduction kept off the wire.
    pub bytes_saved: u64,
}

/// One partial dispatched under cost-based planning: the optimizer's row
/// estimate next to what the site actually returned.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlannerRow {
    /// Database the partial ran against.
    pub database: String,
    /// Rows the cost model predicted the partial would return.
    pub est_rows: u64,
    /// Rows the partial actually returned.
    pub actual_rows: u64,
}

/// Estimated-versus-actual accounting for a costed cross-database statement,
/// derived from `lam:partial:*` spans carrying an `est_rows` note. Absent
/// when the statement ran on the heuristic (statistics-free) path, so
/// renders and golden traces without ANALYZE are unchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlannerSummary {
    /// Per-database rows, sorted by database name.
    pub rows: Vec<PlannerRow>,
}

/// One site of an aggregate/top-k pushdown: the rows its rewritten (pre-
/// aggregated or limited) subquery actually shipped, next to what shipping
/// the full partial would have cost.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PushdownRow {
    /// Database the pushed subquery ran against.
    pub database: String,
    /// Rows the pushed site query shipped across the wire.
    pub shipped_rows: u64,
    /// Rows the *unpushed* subquery would have shipped: the measured
    /// baseline when the LAM reported one, the planner's estimate otherwise
    /// (0 when neither is known).
    pub unpushed_rows: u64,
}

/// Aggregate/top-k pushdown accounting, derived from `lam:partial:*` spans
/// carrying a `pushed` note. Absent when the statement took the classic
/// coordinator path, so existing renders and golden traces are unchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PushdownSummary {
    /// What was pushed: `agg` (decomposable aggregates) or `topk`
    /// (pure-product ORDER BY/LIMIT).
    pub kind: String,
    /// Per-database rows, sorted by database name.
    pub rows: Vec<PushdownRow>,
}

/// Wire-level accounting of one statement: which encoding its LAM traffic
/// used and how many payload bytes each format put on the (simulated) wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireSummary {
    /// Negotiated format label (`text` or `binary`).
    pub format: String,
    /// Bytes shipped as line-oriented text during the statement.
    pub bytes_text: u64,
    /// Bytes shipped as binary columnar frames during the statement.
    pub bytes_binary: u64,
}

/// The rendered product of an `EXPLAIN` statement: the statement's span tree
/// plus a per-LAM cost table derived from the task spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainReport {
    /// The statement text the report describes.
    pub statement: String,
    /// Normalized span tree.
    pub tree: SpanTree,
    /// Per-database cost rows, sorted by database name.
    pub costs: Vec<LamCost>,
    /// Join execution summary, when the statement ran a cross-database join.
    pub join: Option<JoinSummary>,
    /// Estimated-versus-actual planner rows — populated only when the
    /// statement ran under cost-based planning (fresh statistics present).
    pub planner: Option<PlannerSummary>,
    /// Aggregate/top-k pushdown accounting — populated only when the
    /// statement's sites pre-aggregated (or limited) before shipping.
    pub pushdown: Option<PushdownSummary>,
    /// Wire-format accounting — populated only when the statement shipped
    /// binary frames, so text-mode renders (and golden traces) are
    /// unchanged.
    pub wire: Option<WireSummary>,
}

impl ExplainReport {
    /// Builds a report from a normalized tree, deriving the cost table from
    /// `task:`/`lam:` spans annotated with `db`/`attempts`/`rows`/`bytes`.
    pub fn from_tree(statement: impl Into<String>, tree: SpanTree) -> ExplainReport {
        let mut by_db: BTreeMap<String, LamCost> = BTreeMap::new();
        let mut join: Option<JoinSummary> = None;
        let mut planned: BTreeMap<String, PlannerRow> = BTreeMap::new();
        let mut pushed_kind: Option<String> = None;
        let mut pushed: BTreeMap<String, PushdownRow> = BTreeMap::new();
        tree.visit(&mut |node| {
            let note =
                |key: &str| node.notes.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
            let num = |key: &str| note(key).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            if node.name.starts_with("lam:partial:") && note("est_rows").is_some() {
                if let Some(db) = note("db") {
                    let row = planned.entry(db.to_string()).or_insert_with(|| PlannerRow {
                        database: db.to_string(),
                        ..PlannerRow::default()
                    });
                    row.est_rows += num("est_rows");
                    row.actual_rows += num("rows");
                }
            }
            if node.name.starts_with("lam:partial:") {
                if let (Some(kind), Some(db)) = (note("pushed"), note("db")) {
                    pushed_kind.get_or_insert_with(|| kind.to_string());
                    let row = pushed.entry(db.to_string()).or_insert_with(|| PushdownRow {
                        database: db.to_string(),
                        ..PushdownRow::default()
                    });
                    row.shipped_rows += num("rows");
                    // The measured unpushed baseline when the LAM reported
                    // one, the planner's pre-pushdown estimate otherwise.
                    row.unpushed_rows += if note("full_rows").is_some() {
                        num("full_rows")
                    } else {
                        num("est_rows")
                    };
                }
            }
            if node.name == "join" {
                if let Some(strategy) = note("strategy") {
                    join = Some(JoinSummary {
                        strategy: strategy.to_string(),
                        keys_shipped: num("keys_shipped"),
                        bytes_saved: num("bytes_saved"),
                    });
                }
                return;
            }
            let Some(db) = note("db") else { return };
            if !(node.name.starts_with("task:") || node.name.starts_with("lam:")) {
                return;
            }
            let cost = by_db
                .entry(db.to_string())
                .or_insert_with(|| LamCost { database: db.to_string(), ..LamCost::default() });
            cost.tasks += 1;
            cost.attempts += num("attempts").max(1);
            cost.faults += num("faults");
            cost.rows += num("rows");
            cost.bytes += num("bytes");
            cost.latency += node.end - node.start;
            if let Some(access) = note("access") {
                if !cost.access.iter().any(|a| a == access) {
                    cost.access.push(access.to_string());
                }
            }
        });
        ExplainReport {
            statement: statement.into(),
            tree,
            costs: by_db.into_values().collect(),
            join,
            planner: if planned.is_empty() {
                None
            } else {
                Some(PlannerSummary { rows: planned.into_values().collect() })
            },
            pushdown: pushed_kind
                .map(|kind| PushdownSummary { kind, rows: pushed.into_values().collect() }),
            wire: None,
        }
    }

    /// Renders the full report: header, span tree, per-LAM cost table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("EXPLAIN\n");
        for line in self.statement.lines() {
            out.push_str(&format!("  | {}\n", line.trim()));
        }
        out.push('\n');
        out.push_str(&self.tree.render());
        if !self.costs.is_empty() {
            out.push('\n');
            out.push_str("database      tasks  attempts  faults    rows   bytes  latency\n");
            for c in &self.costs {
                out.push_str(&format!(
                    "{:<12} {:>6} {:>9} {:>7} {:>7} {:>7} {:>8}\n",
                    c.database, c.tasks, c.attempts, c.faults, c.rows, c.bytes, c.latency
                ));
            }
            for c in self.costs.iter().filter(|c| !c.access.is_empty()) {
                out.push_str(&format!("access path [{}]: {}\n", c.database, c.access.join("+")));
            }
        }
        if let Some(j) = &self.join {
            out.push('\n');
            out.push_str(&format!("join strategy: {}\n", j.strategy));
            out.push_str(&format!("join keys shipped: {}\n", j.keys_shipped));
            out.push_str(&format!("bytes saved by semijoin: {}\n", j.bytes_saved));
        }
        if let Some(p) = &self.planner {
            out.push('\n');
            out.push_str("planner estimates:\n");
            for r in &p.rows {
                out.push_str(&format!(
                    "  [{}] est rows: {}  actual rows: {}\n",
                    r.database, r.est_rows, r.actual_rows
                ));
            }
        }
        if let Some(p) = &self.pushdown {
            out.push('\n');
            out.push_str(&format!("aggregate pushdown: {}\n", p.kind));
            for r in &p.rows {
                out.push_str(&format!(
                    "  [{}] shipped rows: {}  unpushed rows: {}\n",
                    r.database, r.shipped_rows, r.unpushed_rows
                ));
            }
        }
        if let Some(w) = &self.wire {
            out.push('\n');
            out.push_str(&format!("wire format: {}\n", w.format));
            out.push_str(&format!("wire bytes (text): {}\n", w.bytes_text));
            out.push_str(&format!("wire bytes (binary): {}\n", w.bytes_binary));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::span::Tracer;

    fn sample_tree() -> SpanTree {
        let tracer = Tracer::new(LogicalClock::new());
        {
            let root = tracer.root("statement");
            let parse = root.child("parse");
            drop(parse);
            let task = root.child("task:t1");
            task.note("db", "avis");
            task.note("rows", 2);
            task.note("bytes", 64);
            task.note("attempts", 3);
            task.note("faults", 2);
            task.note("access", "probe");
            drop(task);
        }
        SpanTree::from_records(&tracer.records())
    }

    #[test]
    fn normalize_is_dense_and_stable() {
        let mut tree = sample_tree();
        tree.normalize();
        assert_eq!(tree.roots[0].start, 0);
        let mut max = 0;
        tree.visit(&mut |n| max = max.max(n.end));
        // 3 spans → 6 distinct ticks → densely 0..=5.
        assert_eq!(max, 5);
        let before = tree.render();
        tree.normalize();
        assert_eq!(before, tree.render(), "normalize is idempotent");
    }

    #[test]
    fn explain_report_aggregates_task_costs() {
        let mut tree = sample_tree();
        tree.normalize();
        let report = ExplainReport::from_tree("SELECT 1", tree);
        assert_eq!(report.costs.len(), 1);
        let avis = &report.costs[0];
        assert_eq!(avis.database, "avis");
        assert_eq!(avis.tasks, 1);
        assert_eq!(avis.attempts, 3);
        assert_eq!(avis.faults, 2);
        assert_eq!(avis.rows, 2);
        assert_eq!(avis.bytes, 64);
        assert_eq!(avis.access, vec!["probe".to_string()]);
        let text = report.render();
        assert!(text.contains("task:t1"));
        assert!(text.contains("avis"));
        assert!(text.contains("access path [avis]: probe"));
        assert!(report.join.is_none(), "no join span, no join summary");
    }

    #[test]
    fn explain_report_extracts_planner_summary() {
        let tracer = Tracer::new(LogicalClock::new());
        {
            let root = tracer.root("statement");
            let a = root.child("lam:partial:avis");
            a.note("db", "avis");
            a.note("est_rows", 3);
            a.note("rows", 2);
            drop(a);
            let b = root.child("lam:partial:national");
            b.note("db", "national");
            b.note("est_rows", 7);
            b.note("rows", 7);
        }
        let mut tree = SpanTree::from_records(&tracer.records());
        tree.normalize();
        let report = ExplainReport::from_tree("SELECT 1", tree);
        let p = report.planner.as_ref().expect("planner summary extracted");
        assert_eq!(p.rows.len(), 2);
        assert_eq!(p.rows[0].database, "avis");
        assert_eq!(p.rows[0].est_rows, 3);
        assert_eq!(p.rows[0].actual_rows, 2);
        assert_eq!(p.rows[1].database, "national");
        let text = report.render();
        assert!(text.contains("planner estimates:"));
        assert!(text.contains("[avis] est rows: 3  actual rows: 2"));
        // Without est_rows notes the section stays absent.
        let plain = ExplainReport::from_tree("SELECT 1", sample_tree());
        assert!(plain.planner.is_none(), "no est_rows note, no planner section");
        assert!(!plain.render().contains("planner estimates"));
    }

    #[test]
    fn explain_report_extracts_pushdown_summary() {
        let tracer = Tracer::new(LogicalClock::new());
        {
            let root = tracer.root("statement");
            let a = root.child("lam:partial:avis");
            a.note("db", "avis");
            a.note("pushed", "agg");
            a.note("rows", 3);
            a.note("full_rows", 40);
            drop(a);
            let b = root.child("lam:partial:national");
            b.note("db", "national");
            b.note("pushed", "agg");
            b.note("est_rows", 25);
            b.note("rows", 5);
        }
        let mut tree = SpanTree::from_records(&tracer.records());
        tree.normalize();
        let report = ExplainReport::from_tree("SELECT 1", tree);
        let p = report.pushdown.as_ref().expect("pushdown summary extracted");
        assert_eq!(p.kind, "agg");
        assert_eq!(p.rows.len(), 2);
        assert_eq!(p.rows[0].database, "avis");
        assert_eq!(p.rows[0].shipped_rows, 3);
        assert_eq!(p.rows[0].unpushed_rows, 40, "measured baseline wins");
        assert_eq!(p.rows[1].database, "national");
        assert_eq!(p.rows[1].unpushed_rows, 25, "falls back to the estimate");
        let text = report.render();
        assert!(text.contains("aggregate pushdown: agg"));
        assert!(text.contains("[avis] shipped rows: 3  unpushed rows: 40"));
        // Without a `pushed` note the section stays absent.
        let plain = ExplainReport::from_tree("SELECT 1", sample_tree());
        assert!(plain.pushdown.is_none(), "no pushed note, no pushdown section");
        assert!(!plain.render().contains("aggregate pushdown"));
    }

    #[test]
    fn explain_report_extracts_join_summary() {
        let tracer = Tracer::new(LogicalClock::new());
        {
            let root = tracer.root("statement");
            let join = root.child("join");
            join.note("strategy", "semijoin+hash");
            join.note("keys_shipped", 3);
            join.note("bytes_saved", 128);
        }
        let mut tree = SpanTree::from_records(&tracer.records());
        tree.normalize();
        let report = ExplainReport::from_tree("SELECT 1", tree);
        let j = report.join.as_ref().expect("join summary extracted");
        assert_eq!(j.strategy, "semijoin+hash");
        assert_eq!(j.keys_shipped, 3);
        assert_eq!(j.bytes_saved, 128);
        let text = report.render();
        assert!(text.contains("join strategy: semijoin+hash"));
        assert!(text.contains("join keys shipped: 3"));
        assert!(text.contains("bytes saved by semijoin: 128"));
    }
}
