//! Hierarchical tracing spans over the logical clock.

use std::fmt::Display;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::LogicalClock;

/// One completed (or still open) span as stored by the [`Tracer`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Tracer-local id; records are stored in id order.
    pub id: u64,
    /// Parent span id, or `None` for a root.
    pub parent: Option<u64>,
    /// Span name, e.g. `parse` or `task:t1`.
    pub name: String,
    /// Logical tick at which the span opened.
    pub start: u64,
    /// Logical tick at which the span closed (0 while open).
    pub end: u64,
    /// Key/value annotations in insertion order.
    pub notes: Vec<(String, String)>,
}

struct TracerInner {
    clock: LogicalClock,
    spans: Mutex<Vec<SpanRecord>>,
}

/// Collects the spans of one statement. Cheap to clone; all clones append to
/// the same record list.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Creates an empty tracer ticking the given clock.
    pub fn new(clock: LogicalClock) -> Self {
        Tracer { inner: Arc::new(TracerInner { clock, spans: Mutex::new(Vec::new()) }) }
    }

    /// The clock this tracer stamps spans with.
    pub fn clock(&self) -> &LogicalClock {
        &self.inner.clock
    }

    /// Opens a root span.
    pub fn root(&self, name: impl Into<String>) -> Span {
        self.open(None, name.into())
    }

    fn open(&self, parent: Option<u64>, name: String) -> Span {
        let start = self.inner.clock.tick();
        let mut spans = self.inner.spans.lock();
        let id = spans.len() as u64;
        spans.push(SpanRecord { id, parent, name, start, end: 0, notes: Vec::new() });
        Span { tracer: Some(self.clone()), id }
    }

    /// Snapshot of all records collected so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().clone()
    }
}

/// Owning span guard: closes (stamps its end tick) when dropped.
///
/// A disabled span is a no-op sink, so instrumentation never needs to branch
/// on whether tracing is active.
pub struct Span {
    tracer: Option<Tracer>,
    id: u64,
}

impl Span {
    /// A span that records nothing; children are also disabled.
    pub fn disabled() -> Span {
        Span { tracer: None, id: 0 }
    }

    /// Whether this span records anything.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Opens a child span.
    pub fn child(&self, name: impl Into<String>) -> Span {
        match &self.tracer {
            Some(t) => t.open(Some(self.id), name.into()),
            None => Span::disabled(),
        }
    }

    /// Attaches a key/value annotation.
    pub fn note(&self, key: &str, value: impl Display) {
        if let Some(t) = &self.tracer {
            let mut spans = t.inner.spans.lock();
            let rec = &mut spans[self.id as usize];
            rec.notes.push((key.to_string(), value.to_string()));
        }
    }

    /// A cloneable, sendable handle for opening children of this span from
    /// elsewhere (other threads, long-lived components).
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx { tracer: self.tracer.clone(), parent: self.tracer.as_ref().map(|_| self.id) }
    }

    /// Closes the span now (otherwise it closes on drop).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t) = &self.tracer {
            let end = t.inner.clock.tick();
            let mut spans = t.inner.spans.lock();
            spans[self.id as usize].end = end;
        }
    }
}

/// Cheap `Clone + Send` handle onto a position in the span tree.
#[derive(Clone, Default)]
pub struct SpanCtx {
    tracer: Option<Tracer>,
    parent: Option<u64>,
}

impl SpanCtx {
    /// A context that records nothing.
    pub fn disabled() -> SpanCtx {
        SpanCtx::default()
    }

    /// Whether spans opened from this context record anything.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Opens a span under this context's position (a root if the context was
    /// taken from a tracer directly).
    pub fn child(&self, name: impl Into<String>) -> Span {
        match &self.tracer {
            Some(t) => t.open(self.parent, name.into()),
            None => Span::disabled(),
        }
    }
}

impl From<&Tracer> for SpanCtx {
    fn from(tracer: &Tracer) -> Self {
        SpanCtx { tracer: Some(tracer.clone()), parent: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_stamp_ticks() {
        let tracer = Tracer::new(LogicalClock::new());
        {
            let root = tracer.root("stmt");
            root.note("k", "v");
            let child = root.child("parse");
            drop(child);
        }
        let recs = tracer.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "stmt");
        assert_eq!(recs[1].parent, Some(0));
        assert!(recs[1].start > recs[0].start);
        assert!(recs[1].end < recs[0].end);
        assert_eq!(recs[0].notes, vec![("k".to_string(), "v".to_string())]);
    }

    #[test]
    fn disabled_spans_are_noops() {
        let s = Span::disabled();
        assert!(!s.is_enabled());
        let c = s.child("x");
        c.note("k", 1);
        assert!(!c.ctx().is_enabled());
    }

    #[test]
    fn ctx_opens_children_cross_handle() {
        let tracer = Tracer::new(LogicalClock::new());
        let root = tracer.root("stmt");
        let ctx = root.ctx();
        let handle = std::thread::spawn(move || {
            let child = ctx.child("task:t1");
            child.note("db", "avis");
        });
        handle.join().unwrap();
        drop(root);
        let recs = tracer.records();
        assert_eq!(recs[1].parent, Some(0));
        assert_eq!(recs[1].notes[0].1, "avis");
    }
}
