//! Deterministic crash-recovery simulation for the MSQL federation.
//!
//! The coordinator's write-ahead log (`mdbs::wal`) defines the crash-point
//! space: every protocol transition appends one record, and a
//! [`CrashPlan`] kills the coordinator immediately before or after any
//! given append. This crate drives a real federation — five LAM threads on
//! a seeded simulated network — through the paper's queries under such
//! crashes (optionally combined with seeded message loss), runs
//! [`mdbs::Federation::recover`], and checks two invariants:
//!
//! 1. **Consistency** (§3.4): for every interrupted statement, the oracle
//!    task set either exactly realises one acceptable termination state or
//!    is entirely undone ([`mdbs::RecoveredMtx::is_consistent`]).
//! 2. **No orphans**: after recovery, no LDBS holds a prepared
//!    transaction whose coordinator is gone
//!    ([`ldbs::Engine::prepared_txns`] is empty everywhere).
//!
//! Everything is deterministic: the network RNG, the retry jitter and the
//! logical clock are seeded, and tasks run serially. A failing schedule is
//! fully described by its [`SimConfig`] — the panic message of every test
//! prints the config plus the command that replays exactly that schedule.

use mdbs::fixtures::{paper_federation_with, FederationProfiles};
use mdbs::retry::RetryPolicy;
use mdbs::{CrashPlan, CrashWhen, Federation};
use netsim::Network;
use std::time::Duration;

pub use mdbs::wal;

/// The five fixture services, keyed as [`mdbs::fixtures`] registers them.
pub const SERVICES: &[&str] =
    &["svc_continental", "svc_delta", "svc_united", "svc_avis", "svc_national"];

/// The five fixture sites (site1..site5, same order as [`SERVICES`]).
pub const SITES: &[&str] = &["site1", "site2", "site3", "site4", "site5"];

/// One workload the simulation can crash: an MSQL statement plus the
/// service-profile variation it needs.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable name, used in failure reports.
    pub name: &'static str,
    /// The MSQL text.
    pub msql: &'static str,
    /// Run continental as an autocommit-only service (the §3.3
    /// compensation path needs one).
    pub autocommit_continental: bool,
}

/// Q1 — the §2 multiple retrieval (avis + national). Retrievals log
/// nothing (no settle phase), so its crash-point space is empty; it is in
/// the set to prove exactly that.
pub const Q1_RETRIEVAL: Scenario = Scenario {
    name: "q1_retrieval",
    msql: "USE avis national
        LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
        SELECT %code, type, ~rate FROM car WHERE status = 'available'",
    autocommit_continental: false,
};

/// Q2 — the §3.2 vital update: continental and united prepare (2PC),
/// delta autocommits non-vitally.
pub const Q2_VITAL_UPDATE: Scenario = Scenario {
    name: "q2_vital_update",
    msql: "USE continental VITAL delta united VITAL
        UPDATE flight%
        SET rate% = rate% * 1.1
        WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
    autocommit_continental: false,
};

/// Q3 — the §3.3 compensation path: continental is autocommit-only, so its
/// vital subquery commits immediately and is semantically undone by the
/// COMP block when the statement aborts (or when recovery presumes abort).
pub const Q3_COMP_UPDATE: Scenario = Scenario {
    name: "q3_comp_update",
    msql: "USE continental VITAL delta united VITAL
        UPDATE flight%
        SET rate% = rate% * 1.1
        WHERE sour% = 'Houston' AND dest% = 'San Antonio'
        COMP continental
        UPDATE flights
        SET rate = rate / 1.1
        WHERE source = 'Houston' AND destination = 'San Antonio'",
    autocommit_continental: true,
};

/// Q4 — the §3.4 travel-agent multitransaction with two acceptable states.
pub const Q4_TRAVEL_AGENT: Scenario = Scenario {
    name: "q4_travel_agent",
    msql: "BEGIN MULTITRANSACTION
        USE continental delta
        LET fltab.snu.sstat.clname BE
            f838.seatnu.seatstatus.clientname
            f747.snu.sstat.passname
        UPDATE fltab
        SET sstat = 'TAKEN', clname = 'wenders'
        WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
        USE avis national
        LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat
        UPDATE cartab
        SET cstat = 'TAKEN', client = 'wenders'
        WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'available');
        COMMIT
          continental AND national
          delta AND avis
        END MULTITRANSACTION",
    autocommit_continental: false,
};

/// Every scenario the sweeps cover.
pub const SCENARIOS: &[Scenario] =
    &[Q1_RETRIEVAL, Q2_VITAL_UPDATE, Q3_COMP_UPDATE, Q4_TRAVEL_AGENT];

/// One fully-described simulation schedule. `Debug`-printing a config (as
/// every failure message does) is enough to replay it exactly.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the network RNG (message loss and latency jitter).
    pub seed: u64,
    /// Coordinator crash during statement execution, if any.
    pub crash: Option<CrashPlan>,
    /// A second crash, armed when the first recovery pass starts — the
    /// "recovery itself dies" (mid-resolve) case.
    pub recovery_crash: Option<CrashPlan>,
    /// Sites whose links (both directions) drop messages during execution.
    /// Healed before recovery — the operator fixes the network before
    /// restarting the coordinator.
    pub drop_sites: Vec<&'static str>,
    /// Per-message drop probability on those links.
    pub drop_p: f64,
}

impl SimConfig {
    /// A loss-free schedule with a single execution-time crash.
    pub fn crash_only(seed: u64, crash: CrashPlan) -> Self {
        SimConfig {
            seed,
            crash: Some(crash),
            recovery_crash: None,
            drop_sites: Vec::new(),
            drop_p: 0.0,
        }
    }

    /// A schedule with no crash and no loss (baseline).
    pub fn clean(seed: u64) -> Self {
        SimConfig { seed, crash: None, recovery_crash: None, drop_sites: Vec::new(), drop_p: 0.0 }
    }
}

/// What one simulated schedule did.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Whether an armed crash fired during execution.
    pub crashed: bool,
    /// The statement error, when execution did not complete (a crash, or
    /// loss sinking the statement).
    pub exec_error: Option<String>,
    /// Interrupted multitransactions recovery settled.
    pub recovered: usize,
    /// Recovery passes it took (more than one only under a recovery crash).
    pub recovery_passes: u32,
    /// Total WAL records at the end.
    pub wal_records: usize,
}

fn build_federation(scenario: &Scenario, cfg: &SimConfig) -> Federation {
    let profiles = if scenario.autocommit_continental {
        FederationProfiles {
            continental: ldbs::profile::DbmsProfile::autocommit_only(),
            ..FederationProfiles::default()
        }
    } else {
        FederationProfiles::default()
    };
    let mut fed = paper_federation_with(Network::with_seed(cfg.seed), profiles);
    // Serial tasks + seeded network + logical clock = reproducible runs.
    fed.parallel = false;
    fed.timeout = Duration::from_millis(150);
    fed.retry = RetryPolicy::retries(4);
    for site in &cfg.drop_sites {
        fed.network().set_link_drop_probability("*", site, cfg.drop_p);
        fed.network().set_link_drop_probability(site, "*", cfg.drop_p);
    }
    fed
}

fn heal(fed: &Federation, sites: &[&'static str]) {
    for site in sites {
        fed.network().clear_link_drop_probability("*", site);
        fed.network().clear_link_drop_probability(site, "*");
    }
}

/// Upper bound on recovery passes before the harness declares the schedule
/// stuck. One pass suffices without a recovery crash; a single recovery
/// crash needs two.
const MAX_RECOVERY_PASSES: u32 = 5;

/// Runs one schedule end to end and checks both invariants. `Err` carries
/// a full description of the violation and the schedule; the caller only
/// adds the replay command.
pub fn run(scenario: &Scenario, cfg: &SimConfig) -> Result<SimOutcome, String> {
    let mut fed = build_federation(scenario, cfg);
    let wal = fed.enable_wal();
    if let Some(plan) = cfg.crash {
        wal.arm_crash(plan);
    }
    let exec_error = fed.execute(scenario.msql).err().map(|e| e.to_string());
    let crashed = wal.crashed();
    if cfg.crash.is_some() && cfg.drop_sites.is_empty() && !crashed {
        // A loss-free schedule must reach its crash point unless the point
        // lies beyond the statement's record count — which enumeration
        // never produces.
        let n = wal.record_count();
        if cfg.crash.map(|c| c.at < n) == Some(true) {
            return Err(format!(
                "[{}] armed crash {:?} never fired ({n} records written)",
                scenario.name, cfg.crash
            ));
        }
    }

    // The operator fixes the network, then restarts the coordinator:
    // recovery runs loss-free. It is a no-op when nothing was interrupted.
    heal(&fed, &cfg.drop_sites);
    if let Some(plan) = cfg.recovery_crash {
        wal.arm_crash(plan);
    }
    let mut passes = 0;
    let recovered;
    loop {
        passes += 1;
        if passes > MAX_RECOVERY_PASSES {
            return Err(format!(
                "[{}] recovery did not converge in {MAX_RECOVERY_PASSES} passes; cfg={cfg:?}",
                scenario.name
            ));
        }
        match fed.recover() {
            Ok(report) => {
                recovered = report.recovered.len();
                for mtx in &report.recovered {
                    if !mtx.is_consistent() {
                        return Err(format!(
                            "[{}] INCONSISTENT outcome after recovery: mtx {} achieved={:?} \
                             statuses={:?} states={:?} oracle={:?}; cfg={cfg:?}",
                            scenario.name,
                            mtx.mtx_id,
                            mtx.achieved_state,
                            mtx.statuses,
                            mtx.states,
                            mtx.oracle
                        ));
                    }
                }
                break;
            }
            Err(_) if wal.crashed() => {
                // The recovery pass itself died (mid-resolve double crash).
                // Its progress is logged; the next pass finishes the rest.
                continue;
            }
            Err(e) => {
                return Err(format!("[{}] recovery failed: {e}; cfg={cfg:?}", scenario.name));
            }
        }
    }

    // No-orphan invariant: every prepared subtransaction everywhere has
    // been settled — nothing waits forever for a dead coordinator.
    for service in SERVICES {
        let engine = fed.engine(service).expect("fixture service exists");
        let orphans = engine.lock().prepared_txns();
        if !orphans.is_empty() {
            return Err(format!(
                "[{}] ORPHANED prepared transactions at `{service}` after recovery: {orphans:?}; \
                 exec_error={exec_error:?}; cfg={cfg:?}",
                scenario.name
            ));
        }
    }

    Ok(SimOutcome {
        crashed,
        exec_error,
        recovered,
        recovery_passes: passes,
        wal_records: wal.record_count(),
    })
}

/// The crash-point space of a scenario: the number of WAL records a
/// crash-free run writes. Points are `{Before, After} × 0..count`.
pub fn crash_point_count(scenario: &Scenario) -> usize {
    let cfg = SimConfig::clean(0);
    let mut fed = build_federation(scenario, &cfg);
    let wal = fed.enable_wal();
    fed.execute(scenario.msql).expect("crash-free fixture scenario executes");
    wal.record_count()
}

/// Tiny deterministic generator for the random-schedule sweep (xorshift*;
/// no external RNG, identical on every platform).
pub struct SimRng(u64);

impl SimRng {
    /// Seeds the stream; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng(seed.wrapping_mul(2685821657736338717).wrapping_add(1442695040888963407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform value in `0..bound` (bound ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// Derives the fully-determined schedule for `seed` over the update/mtx
/// scenarios. Printed seeds replay exactly: the schedule is a pure
/// function of the seed and the (fixed) per-scenario crash-point count.
pub fn schedule_for_seed(seed: u64, points: &[(Scenario, usize)]) -> (Scenario, SimConfig) {
    let mut rng = SimRng::new(seed);
    let (scenario, n) = points[rng.below(points.len() as u64) as usize];
    // Beyond-the-end indices mean "no crash": the schedule then tests pure
    // message loss (and recovery of whatever the loss interrupted).
    let at = rng.below(n as u64 + 4) as usize;
    let crash = if at < n {
        let when = if rng.below(2) == 0 { CrashWhen::Before } else { CrashWhen::After };
        Some(CrashPlan { at, when })
    } else {
        None
    };
    let drop_sites: Vec<&'static str> = match rng.below(3) {
        0 => Vec::new(),
        1 => vec![SITES[rng.below(SITES.len() as u64) as usize]],
        _ => {
            let a = SITES[rng.below(SITES.len() as u64) as usize];
            let b = SITES[rng.below(SITES.len() as u64) as usize];
            if a == b {
                vec![a]
            } else {
                vec![a, b]
            }
        }
    };
    let drop_p = if drop_sites.is_empty() { 0.0 } else { [0.1, 0.2, 0.3][rng.below(3) as usize] };
    (scenario, SimConfig { seed, crash, recovery_crash: None, drop_sites, drop_p })
}

/// The seed range a sweep test runs: `SIM_SEEDS=a..b` overrides the
/// default (used by CI's quick smoke pass).
pub fn seed_range(default: std::ops::Range<u64>) -> std::ops::Range<u64> {
    match std::env::var("SIM_SEEDS") {
        Ok(spec) => {
            let parts: Vec<&str> = spec.splitn(2, "..").collect();
            match parts.as_slice() {
                [a, b] => {
                    let start = a.trim().parse().unwrap_or(default.start);
                    let end = b.trim().parse().unwrap_or(default.end);
                    start..end
                }
                _ => default,
            }
        }
        Err(_) => default,
    }
}

/// The replay command printed with every failure.
pub fn repro_command(seed: u64) -> String {
    format!("SIM_SEEDS={seed}..{} cargo test -p sim --test random_schedules", seed + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_leave_nothing_to_recover() {
        for scenario in SCENARIOS {
            let out = run(scenario, &SimConfig::clean(1)).unwrap();
            assert!(!out.crashed, "[{}]", scenario.name);
            assert_eq!(out.exec_error, None, "[{}]", scenario.name);
            assert_eq!(out.recovered, 0, "[{}] recovery must be a no-op", scenario.name);
        }
    }

    #[test]
    fn retrieval_has_no_crash_points() {
        assert_eq!(crash_point_count(&Q1_RETRIEVAL), 0, "retrievals never engage the WAL");
    }

    #[test]
    fn settle_bearing_scenarios_have_crash_points() {
        for scenario in [&Q2_VITAL_UPDATE, &Q3_COMP_UPDATE, &Q4_TRAVEL_AGENT] {
            let n = crash_point_count(scenario);
            assert!(n >= 4, "[{}] expected a real crash-point space, got {n}", scenario.name);
        }
    }

    #[test]
    fn crash_point_count_is_deterministic() {
        assert_eq!(crash_point_count(&Q4_TRAVEL_AGENT), crash_point_count(&Q4_TRAVEL_AGENT));
    }

    #[test]
    fn schedules_are_pure_functions_of_the_seed() {
        let points = [(Q2_VITAL_UPDATE, 8), (Q4_TRAVEL_AGENT, 11)];
        for seed in 0..50 {
            let (a_scn, a_cfg) = schedule_for_seed(seed, &points);
            let (b_scn, b_cfg) = schedule_for_seed(seed, &points);
            assert_eq!(a_scn.name, b_scn.name);
            assert_eq!(format!("{a_cfg:?}"), format!("{b_cfg:?}"));
        }
    }

    #[test]
    fn seed_range_parses_override() {
        // No env in unit tests — just exercise the default path.
        assert_eq!(seed_range(0..200), 0..200);
    }

    #[test]
    fn a_crash_before_the_decision_presumes_abort() {
        // Crash before any record can fire only via the BEGIN append —
        // point 0 Before kills the coordinator before anything ran.
        let out = run(
            &Q2_VITAL_UPDATE,
            &SimConfig::crash_only(3, CrashPlan { at: 0, when: CrashWhen::Before }),
        )
        .unwrap();
        assert!(out.crashed);
        assert_eq!(out.recovered, 0, "nothing was logged, nothing to recover");
    }

    #[test]
    fn a_crash_after_begin_recovers_one_mtx() {
        let out = run(
            &Q2_VITAL_UPDATE,
            &SimConfig::crash_only(3, CrashPlan { at: 0, when: CrashWhen::After }),
        )
        .unwrap();
        assert!(out.crashed);
        assert_eq!(out.recovered, 1);
        assert_eq!(out.recovery_passes, 1);
    }
}
