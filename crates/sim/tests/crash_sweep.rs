//! Systematic crash-point sweep: for every scenario, kill the coordinator
//! immediately before and after *every* WAL record a crash-free run writes,
//! recover, and check the §3.4 consistency + no-orphan invariants.
//!
//! A failing point panics with the exact `SimConfig`; replaying it is
//! `run(scenario, &SimConfig::crash_only(seed, CrashPlan { at, when }))`.

use mdbs::{CrashPlan, CrashWhen};
use sim::{crash_point_count, run, SimConfig, Q2_VITAL_UPDATE, Q3_COMP_UPDATE, Q4_TRAVEL_AGENT};

const SWEEP_SEED: u64 = 7;

fn sweep(scenario: &sim::Scenario) {
    let n = crash_point_count(scenario);
    assert!(n > 0, "[{}] nothing to sweep", scenario.name);
    for at in 0..n {
        for when in [CrashWhen::Before, CrashWhen::After] {
            let cfg = SimConfig::crash_only(SWEEP_SEED, CrashPlan { at, when });
            let out = run(scenario, &cfg).unwrap_or_else(|e| {
                panic!(
                    "[{}] crash point {at}/{n} {when:?} violated an invariant:\n{e}",
                    scenario.name
                )
            });
            // Points inside the statement must actually crash it; recovery
            // must settle the one interrupted statement in a single pass.
            assert!(out.crashed, "[{}] point {at} {when:?} did not fire", scenario.name);
            assert_eq!(out.recovery_passes, 1, "[{}] point {at} {when:?}", scenario.name);
        }
    }
}

#[test]
fn q2_vital_update_survives_every_crash_point() {
    sweep(&Q2_VITAL_UPDATE);
}

#[test]
fn q3_comp_update_survives_every_crash_point() {
    sweep(&Q3_COMP_UPDATE);
}

#[test]
fn q4_travel_agent_survives_every_crash_point() {
    sweep(&Q4_TRAVEL_AGENT);
}

/// Mid-resolve double crashes: the coordinator dies during execution, the
/// replacement dies again during recovery (at each of the first records a
/// recovery pass appends), and a third pass must still converge to a
/// consistent, orphan-free state.
#[test]
fn q4_recovery_survives_crashing_again_mid_resolve() {
    let n = crash_point_count(&Q4_TRAVEL_AGENT);
    for at in 0..n {
        // Execution dies after record `at`; the log then holds `at + 1`
        // records, so recovery's own appends start there.
        let recovery_at = at + 1;
        for when in [CrashWhen::Before, CrashWhen::After] {
            let cfg = SimConfig {
                seed: 11,
                crash: Some(CrashPlan { at, when: CrashWhen::After }),
                recovery_crash: Some(CrashPlan { at: recovery_at, when }),
                drop_sites: Vec::new(),
                drop_p: 0.0,
            };
            let out = run(&Q4_TRAVEL_AGENT, &cfg).unwrap_or_else(|e| {
                panic!("[q4] double crash at {at}, recovery crash at {recovery_at} {when:?}:\n{e}")
            });
            assert!(out.crashed);
            if at == n - 1 {
                // The final record is END: crashing after it interrupts
                // nothing, so recovery no-ops and the second crash (armed
                // past the end of the log) never fires.
                assert_eq!(out.recovered, 0, "statement had completed");
                assert_eq!(out.recovery_passes, 1);
            } else {
                assert!(
                    out.recovery_passes >= 2,
                    "recovery crash at {recovery_at} {when:?} should force a second pass \
                     (got {} passes)",
                    out.recovery_passes
                );
            }
        }
    }
}
