//! Seeded random crash + message-loss schedules. Each seed fully
//! determines its schedule (scenario, crash point, lossy links, drop
//! probability), so any failure is replayed by running exactly the printed
//! seed:
//!
//! ```sh
//! SIM_SEEDS=<seed>..<seed+1> cargo test -p sim --test random_schedules
//! ```

use sim::{
    crash_point_count, repro_command, run, schedule_for_seed, seed_range, Q2_VITAL_UPDATE,
    Q3_COMP_UPDATE, Q4_TRAVEL_AGENT,
};

#[test]
fn seeded_schedules_keep_the_federation_consistent() {
    // Fixed per-scenario crash-point counts make each schedule a pure
    // function of its seed (recounting per seed would be pointlessly slow).
    let points = [
        (Q2_VITAL_UPDATE, crash_point_count(&Q2_VITAL_UPDATE)),
        (Q3_COMP_UPDATE, crash_point_count(&Q3_COMP_UPDATE)),
        (Q4_TRAVEL_AGENT, crash_point_count(&Q4_TRAVEL_AGENT)),
    ];
    let range = seed_range(0..200);
    let mut crashed = 0u32;
    let mut lossy = 0u32;
    for seed in range.clone() {
        let (scenario, cfg) = schedule_for_seed(seed, &points);
        if cfg.crash.is_some() {
            crashed += 1;
        }
        if !cfg.drop_sites.is_empty() {
            lossy += 1;
        }
        run(&scenario, &cfg).unwrap_or_else(|e| {
            panic!("seed {seed} failed:\n{e}\nreproduce with: {}", repro_command(seed))
        });
    }
    // The default sweep must actually exercise both fault dimensions.
    if range.end - range.start >= 100 {
        assert!(crashed >= 20, "only {crashed} schedules crashed — generator drifted");
        assert!(lossy >= 20, "only {lossy} schedules had loss — generator drifted");
    }
}
