//! Distributed aggregation & top-k pushdown, end to end.
//!
//! A decomposable cross-database GROUP BY is rewritten so each site
//! pre-aggregates its own rows (grouped by join keys ∪ its group keys,
//! shipping counts/sums/extrema state columns) and the MDBS layer merges
//! the partial states — no full partials ever reach the coordinator.
//! EXPLAIN names the strategy (`strategy=agg-pushdown`) and closes with an
//! "aggregate pushdown" section comparing shipped vs unpushed rows per
//! site. A pure-product ORDER BY … LIMIT k instead ships each site's local
//! top-k (`strategy=topk-pushdown`). Turning `Federation::agg_pushdown`
//! off takes the classic ship-everything coordinator path; both paths must
//! return identical rows, which this example asserts while printing the
//! payload bytes each path shipped.
//!
//! ```sh
//! cargo run --example aggregate_pushdown
//! ```

use mdbs::fixtures::paper_federation;

const GROUP_QUERY: &str = "SELECT f.source, COUNT(*), MIN(g.rate), AVG(g.rate)
    FROM continental.flights f, delta.flight g
    WHERE f.source = g.source GROUP BY f.source";

const TOPK_QUERY: &str = "SELECT f.flnu, g.fnu
    FROM continental.flights f, delta.flight g
    ORDER BY f.flnu DESC, g.fnu LIMIT 3";

/// Sums the `lam.bytes{db=…}` counters: payload bytes the sites shipped.
fn shipped_bytes(fed: &mdbs::Federation) -> u64 {
    fed.metrics()
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("lam.bytes{"))
        .map(|(_, v)| *v)
        .sum()
}

/// Runs `query` on a fresh federation and returns (rows, shipped bytes).
fn run(query: &str, pushdown: bool) -> (Vec<Vec<ldbs::value::Value>>, u64) {
    let mut fed = paper_federation();
    fed.parallel = false;
    fed.agg_pushdown = pushdown;
    fed.execute("USE continental delta").expect("scope");
    let rows = fed.execute(query).expect("query").into_table().expect("a table").rows;
    let bytes = shipped_bytes(&fed);
    (rows, bytes)
}

fn main() {
    // Serial dispatch keeps the span tree in a deterministic order.
    let mut fed = paper_federation();
    fed.parallel = false;
    fed.execute("USE continental delta").expect("scope");

    println!("-- EXPLAIN, aggregate pushdown on (the default) --");
    let report = fed
        .execute(&format!("EXPLAIN {GROUP_QUERY}"))
        .expect("EXPLAIN pushed GROUP BY")
        .into_explain()
        .expect("an explain report");
    let render = report.render();
    assert!(render.contains("strategy=agg-pushdown"), "join span must name the strategy");
    assert!(render.contains("aggregate pushdown: agg"), "report must carry the section");
    println!("{render}");

    // Same rows with pushdown off, on fresh federations so the cumulative
    // byte counters compare one execution against one execution.
    let (pushed, pushed_bytes) = run(GROUP_QUERY, true);
    let (classic, classic_bytes) = run(GROUP_QUERY, false);
    let mut classic_sorted = classic;
    classic_sorted.sort_by(|a, b| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    assert_eq!(pushed, classic_sorted, "pushdown must not change the aggregate result");

    println!("-- GROUP BY result ({} row(s)) --", pushed.len());
    for row in &pushed {
        println!("{row:?}");
    }
    println!();
    println!("-- shipped payload bytes (Σ lam.bytes{{db=…}}) --");
    println!("pushdown on:  {pushed_bytes}");
    println!("pushdown off: {classic_bytes}");
    println!("(at this toy fixture scale the per-group state columns dominate;");
    println!(" bench B14 measures the reductions at 1k–10k rows per site)");

    // Pure-product top-k: each site ships only its own LIMIT-3 prefix and
    // the MDBS layer merges the ≤ 3×3 candidates. Its ORDER BY pins a total
    // output order, so the two paths agree as sequences.
    let (topk, topk_bytes) = run(TOPK_QUERY, true);
    let (classic_topk, classic_topk_bytes) = run(TOPK_QUERY, false);
    assert_eq!(topk, classic_topk, "top-k pushdown must not change the result");

    println!();
    println!("-- top-k result ({} row(s)) --", topk.len());
    for row in &topk {
        println!("{row:?}");
    }
    println!();
    println!("-- shipped payload bytes (Σ lam.bytes{{db=…}}) --");
    println!("pushdown on:  {topk_bytes}");
    println!("pushdown off: {classic_topk_bytes}");
}
