//! A longer tour of multiple queries over the car-rental databases:
//! implicit/explicit semantic variables, optional columns, wild tables,
//! multiple updates and deletes, and a cross-database join.
//!
//! ```sh
//! cargo run --example car_rental
//! ```

use mdbs::fixtures::paper_federation;
use mdbs::MsqlOutcome;

fn show(fed: &mut mdbs::Federation, msql: &str) {
    println!("msql> {}\n", msql.replace('\n', "\n      "));
    match fed.execute(msql) {
        Ok(MsqlOutcome::Multitable(mt)) => print!("{mt}"),
        Ok(MsqlOutcome::Table(rs)) => print!("{}", mdbs::multitable::render_result_set(&rs)),
        Ok(MsqlOutcome::Update(report)) => {
            println!(
                "{} — {}",
                if report.success { "ok" } else { "ABORTED" },
                report
                    .outcomes
                    .iter()
                    .map(|o| format!("{}: {:?}/{} rows", o.key, o.status, o.affected))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        Ok(other) => println!("{other:?}"),
        Err(e) => println!("error: {e}"),
    }
    println!();
}

fn main() {
    let mut fed = paper_federation();

    println!("== Scope: both car-rental companies ==\n");
    show(&mut fed, "USE avis national");

    println!("== Explicit LET + implicit %code + optional ~rate (paper §2) ==\n");
    show(
        &mut fed,
        "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
SELECT %code, type, ~rate FROM car WHERE status = 'available'",
    );

    println!("== Wild table name: one query, three airlines ==\n");
    show(
        &mut fed,
        "USE continental delta united
SELECT day, ~rate% FROM flight% WHERE sour% = 'Houston'",
    );
    show(&mut fed, "USE avis national");

    println!("== Multiple update: mark every sedan rented ==\n");
    show(
        &mut fed,
        "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
UPDATE car SET status = 'rented' WHERE type = 'sedan'",
    );
    show(
        &mut fed,
        "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
SELECT %code, type, status FROM car ORDER BY %code",
    );

    println!("== Cross-database join at a coordinator (§4.3 decomposition) ==\n");
    show(&mut fed, "USE continental avis");
    show(
        &mut fed,
        "SELECT f.flnu, f.rate, c.code, c.rate
FROM continental.flights f, avis.cars c
WHERE c.carst = 'available' AND c.rate < f.rate
ORDER BY f.flnu, c.code",
    );

    println!("== Aggregates run where the data lives ==\n");
    show(&mut fed, "USE avis national");
    show(
        &mut fed,
        "LET car.type BE cars.cartype vehicle.vty
SELECT type, COUNT(*) AS fleet FROM car GROUP BY type ORDER BY fleet DESC, type",
    );
}
