//! Concurrent sessions: several users sharing one federation.
//!
//! ```sh
//! cargo run --example concurrent_sessions
//! ```
//!
//! A [`mdbs::Federation`] owns a shared core (catalogs, network, LAMs);
//! [`Session::session`] opens additional independent handles onto it. Each
//! handle is `Send`, so every "travel agent" below runs on its own thread,
//! executing statements concurrently with the others. Table-granular write
//! locks at the local engines serialize conflicting updates; a session
//! caught in a lock cycle is aborted as the deadlock victim and its
//! statement retried transparently.

use mdbs::fixtures::paper_federation;

const AGENTS: usize = 4;
const ROUNDS: usize = 5;

fn main() {
    let fed = paper_federation();

    // Every agent alternates a cross-database read with a fare update that
    // all sessions contend on.
    let read = "USE continental delta united
        SELECT day, ~rate% FROM flight% WHERE sour% = 'Houston'";
    let update = "USE continental delta united
        UPDATE flight% SET rate% = rate% + 1
        WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

    std::thread::scope(|s| {
        for agent in 0..AGENTS {
            let mut session = fed.session();
            s.spawn(move || {
                let id = session.id();
                for round in 0..ROUNDS {
                    let mt = session.execute(read).unwrap().into_multitable().unwrap();
                    let rows: usize = mt.tables.iter().map(|t| t.result.rows.len()).sum();
                    let report = session.execute(update).unwrap().into_update().unwrap();
                    println!(
                        "agent {agent} (session {id}) round {round}: \
                         read {rows} rows, update success={}",
                        report.success
                    );
                }
            });
        }
    });

    // All sessions observed and advanced the same shared state: the fare
    // rose by exactly AGENTS * ROUNDS across every airline.
    let mut primary = fed;
    let mt = primary
        .execute(
            "USE continental delta united
             SELECT ~rate% FROM flight% WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
        )
        .unwrap()
        .into_multitable()
        .unwrap();
    println!("\nFinal Houston -> San Antonio fares after {} updates:", AGENTS * ROUNDS);
    print!("{mt}");
}
