//! Coordinator crash and recovery (DESIGN.md §3a.4): the §3.3 compensation
//! scenario is killed immediately before its decision is logged, the log is
//! dumped, and a restarted coordinator replays it — presuming abort, rolling
//! back the prepared members and compensating the autocommitted one.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```
//!
//! Deterministic: seeded network + serial execution; two runs print the
//! same transcript.

use ldbs::profile::DbmsProfile;
use mdbs::fixtures::{paper_federation_with, FederationProfiles};
use mdbs::{CrashPlan, CrashWhen, Federation};
use netsim::Network;

const Q3_UPDATE_WITH_COMP: &str = "USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
COMP continental
UPDATE flights
SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'";

/// Continental autocommits (no 2PC): its subquery settles at the LAM the
/// moment it runs, so a crash before the decision forces compensation.
fn federation() -> Federation {
    let mut fed = paper_federation_with(
        Network::with_seed(0xC3),
        FederationProfiles {
            continental: DbmsProfile::autocommit_only(),
            ..FederationProfiles::default()
        },
    );
    fed.parallel = false;
    fed
}

fn continental_fare(fed: &Federation) -> String {
    let engine = fed.engine("svc_continental").unwrap();
    let mut engine = engine.lock();
    engine
        .execute("continental", "SELECT rate FROM flights WHERE flnu = 1")
        .unwrap()
        .into_result_set()
        .unwrap()
        .rows[0][0]
        .display_raw()
}

fn main() {
    // Find where the decision record lands in a crash-free run.
    let decide_at = {
        let mut fed = federation();
        let wal = fed.enable_wal();
        fed.execute(Q3_UPDATE_WITH_COMP).unwrap();
        wal.records()
            .unwrap()
            .iter()
            .position(|r| r.kind().starts_with("decision"))
            .expect("a settle-bearing statement logs a decision")
    };
    println!("crash-free run logs its decision as record #{decide_at}\n");

    // Run again, killing the coordinator just before that record is written
    // (the PREPAREs happened at the sites; the decision never made the log).
    let mut fed = federation();
    let wal = fed.enable_wal();
    println!("fare before the update:   {}", continental_fare(&fed));
    wal.arm_crash(CrashPlan { at: decide_at, when: CrashWhen::Before });
    let err = fed.execute(Q3_UPDATE_WITH_COMP).unwrap_err();
    println!("coordinator crashed:      {err}");
    println!(
        "fare at the crash:        {} (continental had autocommitted)\n",
        continental_fare(&fed)
    );

    println!("the log the crash left behind:");
    for record in wal.records().unwrap() {
        println!("  {}", record.encode());
    }

    // The restarted coordinator replays the log against the LAMs, which —
    // being autonomous sites — survived the crash.
    let report = fed.recover().unwrap();
    println!("\nrecovery:");
    for mtx in &report.recovered {
        println!(
            "  mtx {}: presumed_abort={} consistent={}",
            mtx.mtx_id,
            mtx.presumed_abort,
            mtx.is_consistent()
        );
        let mut tasks: Vec<_> = mtx.statuses.iter().collect();
        tasks.sort_by(|a, b| a.0.cmp(b.0));
        for (task, status) in tasks {
            println!("    {task}: {status:?}");
        }
    }
    println!("fare after recovery:      {} (compensated back)", continental_fare(&fed));
}
