//! The cross-database join fast path, end to end.
//!
//! A selective equi-join between continental and delta is decomposed into
//! two local subqueries; the executor picks continental as the semi-join
//! *reducer*, ships its distinct join-key values to delta as an injected
//! `IN (…)` filter (so only matching rows cross the wire), collects both
//! partials at the coordinator in one batched round trip, and hash-joins
//! the two-table Q' there. EXPLAIN names the strategy and the measured
//! bytes the reduction saved; turning `Federation::semijoin` off shows the
//! same rows shipping the full partials instead. Creating a secondary index
//! on the reduced side's join column then flips its partial from a full
//! scan to an index probe (`access=probe`), with identical rows. Finally,
//! ANALYZE on both sites switches the join to the cost-based planner: the
//! reducer is chosen by estimated partial size and EXPLAIN reports the
//! estimates next to the actual row counts.
//!
//! ```sh
//! cargo run --example cross_join
//! ```

use mdbs::fixtures::paper_federation;

const QUERY: &str = "SELECT f.flnu, g.fnu
    FROM continental.flights f, delta.flight g
    WHERE f.source = g.source AND f.destination = g.dest
    ORDER BY f.flnu, g.fnu";

/// Sums the `lam.bytes{db=…}` counters: partial/global payload bytes the
/// sites shipped back.
fn shipped_bytes(fed: &mdbs::Federation) -> u64 {
    fed.metrics()
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("lam.bytes{"))
        .map(|(_, v)| *v)
        .sum()
}

fn main() {
    // Serial dispatch keeps the span tree in a deterministic order.
    let mut fed = paper_federation();
    fed.parallel = false;
    fed.execute("USE continental delta").expect("scope");

    println!("-- EXPLAIN, semi-join reduction on (the default) --");
    let report = fed
        .execute(&format!("EXPLAIN {QUERY}"))
        .expect("EXPLAIN cross-db join")
        .into_explain()
        .expect("an explain report");
    println!("{}", report.render());

    // Byte comparison on fresh federations (metrics are cumulative, and the
    // EXPLAIN above already executed the statement once).
    let run = |semijoin: bool| {
        let mut fed = paper_federation();
        fed.parallel = false;
        fed.semijoin = semijoin;
        fed.execute("USE continental delta").expect("scope");
        let rows = fed.execute(QUERY).expect("join").into_table().expect("a table");
        (rows, shipped_bytes(&fed))
    };
    let (rows, reduced_bytes) = run(true);
    let (unreduced, full_bytes) = run(false);
    assert_eq!(rows.rows, unreduced.rows, "the reduction must not change the result");

    println!("-- result ({} row(s)) --", rows.rows.len());
    for row in &rows.rows {
        println!("{row:?}");
    }

    println!();
    println!("-- shipped payload bytes (Σ lam.bytes{{db=…}}) --");
    println!("semijoin on:  {reduced_bytes}");
    println!("semijoin off: {full_bytes}");

    // Parallel dispatch returns the same rows; only the wall clock differs.
    let mut par = paper_federation();
    par.execute("USE continental delta").expect("scope");
    let parallel = par.execute(QUERY).expect("join").into_table().expect("a table");
    assert_eq!(rows.rows, parallel.rows, "parallel dispatch must agree with serial");
    println!();
    println!("parallel dispatch returned the same {} row(s)", parallel.rows.len());

    // Index the column delta receives the shipped IN (…) filter on: the
    // reduced partial's access path flips from scan to probe.
    println!();
    println!("-- EXPLAIN again, after CREATE INDEX on the shipped join column --");
    let mut indexed = paper_federation();
    indexed.parallel = false;
    indexed.execute("USE continental delta").expect("scope");
    indexed
        .execute("CREATE INDEX flight_source ON delta.flight (source) USING HASH")
        .expect("CREATE INDEX");
    let report = indexed
        .execute(&format!("EXPLAIN {QUERY}"))
        .expect("EXPLAIN indexed join")
        .into_explain()
        .expect("an explain report");
    println!("{}", report.render());
    let probed = indexed.execute(QUERY).expect("join").into_table().expect("a table");
    assert_eq!(rows.rows, probed.rows, "the index probe must not change the result");
    println!("indexed probe returned the same {} row(s)", probed.rows.len());

    // ANALYZE both sites and the same join plans by estimated shipped bytes
    // instead of conjunct counting: the smallest estimated partial reduces
    // (planner=costed on the join span), each partial carries its est_rows,
    // and EXPLAIN closes with estimates next to the actual row counts.
    println!();
    println!("-- EXPLAIN again, costed: after ANALYZE on both sites --");
    let mut costed = paper_federation();
    costed.parallel = false;
    costed.execute("USE continental delta").expect("scope");
    costed.execute("ANALYZE continental.flights").expect("ANALYZE continental");
    costed.execute("ANALYZE delta.flight").expect("ANALYZE delta");
    let report = costed
        .execute(&format!("EXPLAIN {QUERY}"))
        .expect("EXPLAIN costed join")
        .into_explain()
        .expect("an explain report");
    println!("{}", report.render());
    let planned = costed.execute(QUERY).expect("join").into_table().expect("a table");
    assert_eq!(rows.rows, planned.rows, "the costed plan must not change the result");
    println!("costed plan returned the same {} row(s)", planned.rows.len());
}
