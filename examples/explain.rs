//! EXPLAIN: the measured profile of an MSQL statement.
//!
//! `EXPLAIN <statement>` executes the target with tracing enabled and
//! returns the full query lifecycle — parse, expansion, disambiguation,
//! plan generation, one span per DOL task with its LAM round trips — plus a
//! per-LDBS cost table (rows, payload bytes, attempts, logical latency).
//!
//! Latencies are logical-clock ticks, not wall time: the clock advances
//! only on observable events (a span opens or closes, a message crosses the
//! simulated network), so the same statement profiles identically on every
//! run.
//!
//! ```sh
//! cargo run --example explain
//! ```

use mdbs::fixtures::paper_federation;

fn main() {
    let mut fed = paper_federation();
    // Serial task execution keeps the span tree in a deterministic order.
    fed.parallel = false;

    // The paper's §2 car-rental query (experiment Q1).
    let report = fed
        .execute(
            "EXPLAIN
             USE avis national
             LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
             SELECT %code, type, ~rate FROM car WHERE status = 'available'",
        )
        .expect("EXPLAIN Q1")
        .into_explain()
        .expect("an explain report");
    println!("{}", report.render());

    // The session-wide metrics the statement left behind.
    println!("-- session metrics --");
    print!("{}", fed.metrics().render());
}
