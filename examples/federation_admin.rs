//! Federation administration (paper §3.1 / Figure 2): INCORPORATE services,
//! IMPORT schemas into the Global Data Dictionary, run DDL through the
//! federation, and inspect both dictionaries.
//!
//! ```sh
//! cargo run --example federation_admin
//! ```

use ldbs::profile::DbmsProfile;
use ldbs::Engine;
use mdbs::Federation;

fn build_engine(flavor: DbmsProfile, db: &str, ddl: &[&str]) -> Engine {
    let mut e = Engine::new(format!("svc_{db}"), flavor);
    e.create_database(db).unwrap();
    for stmt in ddl {
        e.execute(db, stmt).unwrap();
    }
    e
}

fn main() {
    let mut fed = Federation::new();

    // Two heterogeneous services.
    fed.add_service(
        "ingres1",
        "site1",
        build_engine(
            DbmsProfile::ingres_like(),
            "avis",
            &["CREATE TABLE cars (code INT, cartype CHAR(16), rate FLOAT, carst CHAR(10))"],
        ),
    )
    .unwrap();
    fed.add_service(
        "sybase1",
        "site2",
        build_engine(
            DbmsProfile::autocommit_only(),
            "national",
            &["CREATE TABLE vehicle (vcode INT, vty CHAR(16), vstat CHAR(10))"],
        ),
    )
    .unwrap();

    // INCORPORATE refines the Auxiliary Directory entries (the statement an
    // administrator would issue; add_service derived defaults already).
    for stmt in [
        "INCORPORATE SERVICE ingres1 SITE site1 CONNECTMODE CONNECT COMMITMODE NOCOMMIT CREATE NOCOMMIT",
        "INCORPORATE SERVICE sybase1 SITE site2 CONNECTMODE NOCONNECT COMMITMODE COMMIT",
    ] {
        let out = fed.execute(stmt).unwrap();
        println!("{stmt}\n  -> {out:?}\n");
    }

    println!("Auxiliary Directory:");
    for svc in fed.ad().services() {
        println!(
            "  {:<10} site={:<7} connect={:<5} 2PC(DML)={:<5} DDL={:?}",
            svc.name,
            svc.site,
            svc.multi_database,
            svc.supports_2pc(),
            svc.create_capability(),
        );
    }
    println!();

    // IMPORT the Local Conceptual Schemas.
    for stmt in [
        "IMPORT DATABASE avis FROM SERVICE ingres1",
        "IMPORT DATABASE national FROM SERVICE sybase1 TABLE vehicle COLUMN (vcode, vstat)",
    ] {
        let out = fed.execute(stmt).unwrap();
        println!("{stmt}\n  -> {out:?}\n");
    }

    println!("Global Data Dictionary:");
    for db in fed.gdd().database_names() {
        println!("  database {db} (service {})", fed.gdd().service_of(db).unwrap());
        for table in fed.gdd().tables(db).unwrap() {
            let cols: Vec<String> =
                table.columns.iter().map(|c| format!("{}:{:?}", c.name, c.type_name)).collect();
            println!("    {} ({})", table.name, cols.join(", "));
        }
    }
    println!();

    // DDL through the federation: visible locally and globally.
    fed.execute("USE avis").unwrap();
    fed.execute("CREATE TABLE clients (name CHAR(30), phone CHAR(16))").unwrap();
    fed.execute("INSERT INTO clients VALUES ('wenders', '555-0101')").unwrap();
    let mt = fed.execute("SELECT name, phone FROM clients").unwrap().into_multitable().unwrap();
    println!("After CREATE TABLE + INSERT through the federation:");
    print!("{mt}");

    // Partial imports restrict what global queries may touch.
    fed.execute("USE national").unwrap();
    match fed.execute("SELECT vty FROM vehicle") {
        Err(e) => println!("\nColumn vty was not imported, so the query is rejected:\n  {e}"),
        Ok(_) => unreachable!(),
    }
}
