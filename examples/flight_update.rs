//! The §3.2/§3.3 scenario: a multiple update with VITAL designators, the
//! generated DOL program, a vital failure, and compensation for an
//! autocommit-only database.
//!
//! ```sh
//! cargo run --example flight_update
//! ```

use ldbs::profile::DbmsProfile;
use mdbs::fixtures::{paper_federation, paper_federation_with, FederationProfiles};
use mdbs::scope::SessionScope;
use mdbs::translate::{self, Translated};
use mdbs::Federation;
use msql_lang::{parse_statement, Statement};
use netsim::Network;
use std::collections::HashMap;

const VITAL_UPDATE: &str = "USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

fn show_rates(fed: &Federation, label: &str) {
    println!("{label}");
    for (svc, db, sql) in [
        ("svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        ("svc_delta", "delta", "SELECT rate FROM flight WHERE fnu = 10"),
        ("svc_united", "united", "SELECT rates FROM flight WHERE fn = 20"),
    ] {
        let engine = fed.engine(svc).unwrap();
        let mut engine = engine.lock();
        let v = engine.execute(db, sql).unwrap().into_result_set().unwrap().rows[0][0].clone();
        println!("  {db:<12} Houston→San Antonio fare: {}", v.display_raw());
    }
    println!();
}

fn print_generated_dol(fed: &Federation) {
    // Re-run the translator phases by hand to show the DOL program the
    // federation executes (the §4.3 listing).
    let Statement::Query(q) = parse_statement(VITAL_UPDATE).unwrap() else { unreachable!() };
    let mut scope = SessionScope::new();
    scope.apply_use(q.use_clause.as_ref().unwrap()).unwrap();
    let Translated::PerDb(locals) = translate::translate_body(&q.body, &scope, &fed.gdd()).unwrap()
    else {
        unreachable!()
    };
    let mut routes = HashMap::new();
    let ad = fed.ad();
    for db in fed.gdd().database_names() {
        let service = fed.gdd().service_of(db).unwrap().to_string();
        let entry = ad.service(&service).unwrap();
        routes.insert(
            db.to_string(),
            translate::DbRoute {
                database: db.to_string(),
                site: entry.site.clone(),
                supports_2pc: entry.supports_2pc(),
            },
        );
    }
    let plan = translate::update_plan(&locals, &HashMap::new(), &routes).unwrap();
    println!("Generated DOL program (paper §4.3):\n{}", dol::print_program(&plan.program));
}

fn main() {
    println!("=== 1. All services healthy: the vital set commits ===\n");
    let mut fed = paper_federation();
    print_generated_dol(&fed);
    show_rates(&fed, "Fares before:");
    let report = fed.execute(VITAL_UPDATE).unwrap().into_update().unwrap();
    println!(
        "MSQL return code {} — {}",
        report.return_code,
        mdbs::retcode::describe(report.return_code, false)
    );
    for o in &report.outcomes {
        println!("  {:<12} {:?} ({} rows)", o.key, o.status, o.affected);
    }
    println!();
    show_rates(&fed, "Fares after:");

    println!("=== 2. United aborts locally: the whole vital set rolls back ===\n");
    let mut fed = paper_federation();
    fed.engine("svc_united").unwrap().lock().failure_policy_mut().fail_writes_to("flight");
    let report = fed.execute(VITAL_UPDATE).unwrap().into_update().unwrap();
    println!(
        "MSQL return code {} — {}",
        report.return_code,
        mdbs::retcode::describe(report.return_code, false)
    );
    for o in &report.outcomes {
        println!("  {:<12} {:?}", o.key, o.status);
    }
    println!();
    show_rates(&fed, "Fares after (continental rolled back, delta was NON VITAL):");

    println!("=== 3. Continental without 2PC: compensation (§3.3) ===\n");
    let profiles = FederationProfiles {
        continental: DbmsProfile::autocommit_only(),
        ..FederationProfiles::default()
    };
    let mut fed = paper_federation_with(Network::new(), profiles);

    // Without a COMP clause the query is refused.
    match fed.execute(VITAL_UPDATE) {
        Err(e) => println!("Without COMP the prototype refuses the query:\n  {e}\n"),
        Ok(_) => unreachable!(),
    }

    // With a COMP clause, a United abort triggers compensation of the
    // already-committed Continental update.
    fed.engine("svc_united").unwrap().lock().failure_policy_mut().fail_writes_to("flight");
    let with_comp = format!(
        "{VITAL_UPDATE}
COMP continental
UPDATE flights
SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'"
    );
    let report = fed.execute(&with_comp).unwrap().into_update().unwrap();
    println!("With COMP, after a United abort:");
    for o in &report.outcomes {
        println!("  {:<12} {:?}", o.key, o.status);
    }
    println!();
    show_rates(&fed, "Fares after (continental compensated back):");
}
