//! Extensions tour: §3.2.2 deferred-commit sessions, inter-database data
//! transfer, and interdatabase triggers.
//!
//! ```sh
//! cargo run --example global_session
//! ```

use mdbs::fixtures::paper_federation;
use mdbs::Federation;

fn fare(fed: &Federation, flnu: i64) -> String {
    let engine = fed.engine("svc_continental").unwrap();
    let mut engine = engine.lock();
    engine
        .execute("continental", &format!("SELECT rate FROM flights WHERE flnu = {flnu}"))
        .unwrap()
        .into_result_set()
        .unwrap()
        .rows[0][0]
        .display_raw()
}

fn main() {
    println!("=== Deferred-commit session (paper §3.2.2) ===\n");
    let mut fed = paper_federation();
    fed.set_deferred_commit(true);
    fed.execute("USE continental VITAL").unwrap();

    println!("Fare of flight 1 before the session: {}", fare(&fed, 1));
    fed.execute("UPDATE flights SET rate = rate * 2 WHERE flnu = 1").unwrap();
    fed.execute("UPDATE flights SET rate = rate + 5 WHERE flnu = 2").unwrap();
    println!(
        "Two statements executed; {} vital member(s) held prepared.",
        fed.pending_vital_subqueries()
    );
    println!("ROLLBACK ...");
    let report = fed.execute("ROLLBACK").unwrap().into_update().unwrap();
    println!(
        "  -> success={} outcomes={:?}",
        report.success,
        report.outcomes.iter().map(|o| (o.key.clone(), o.status)).collect::<Vec<_>>()
    );
    println!("Fare of flight 1 after rollback:  {}\n", fare(&fed, 1));

    fed.execute("UPDATE flights SET rate = rate * 2 WHERE flnu = 1").unwrap();
    println!("New statement held; COMMIT ...");
    let report = fed.execute("COMMIT").unwrap().into_update().unwrap();
    println!("  -> success={}", report.success);
    println!("Fare of flight 1 after commit:    {}\n", fare(&fed, 1));
    fed.set_deferred_commit(false);

    println!("=== Inter-database data transfer (MSQL §2) ===\n");
    fed.execute("USE continental avis").unwrap();
    fed.execute("CREATE TABLE avis.fares (flnu INT, rate FLOAT)").unwrap();
    let report = fed
        .execute(
            "INSERT INTO avis.fares (flnu, rate)
             SELECT flnu, rate FROM continental.flights WHERE source = 'Houston'",
        )
        .unwrap()
        .into_update()
        .unwrap();
    println!(
        "Copied {} Houston fares from continental into avis.fares.\n",
        report.outcomes[0].affected
    );

    println!("=== Interdatabase trigger (MSQL §2) ===\n");
    fed.execute("CREATE TABLE avis.audit (note CHAR(40))").unwrap();
    fed.execute(
        "CREATE TRIGGER fare_watch ON continental.flights AFTER UPDATE EXECUTE
         USE avis
         INSERT INTO audit VALUES ('continental fares changed')",
    )
    .unwrap();
    fed.execute("USE continental").unwrap();
    fed.execute("UPDATE flights SET rate = rate * 1.01 WHERE source = 'Houston'").unwrap();
    fed.execute("UPDATE flights SET rate = rate * 1.01 WHERE source = 'Austin'").unwrap();
    fed.execute("USE avis").unwrap();
    let mt = fed.execute("SELECT COUNT(*) AS audit_rows FROM audit").unwrap();
    println!("After two continental updates, the avis audit table holds:");
    if let mdbs::MsqlOutcome::Multitable(mt) = mt {
        print!("{mt}");
    }
}
