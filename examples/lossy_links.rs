//! Fault-tolerant LAM communication over lossy links: the Q1 retrieval and
//! Q2 vital update from the paper, re-run on a simulated fabric that drops
//! messages, with and without the retry layer.
//!
//! ```sh
//! cargo run --example lossy_links            # default 30% per-link loss
//! cargo run --example lossy_links -- 0.5     # heavier loss
//! ```

use mdbs::fixtures::{paper_federation_with, FederationProfiles};
use mdbs::{Federation, RetryPolicy};
use netsim::Network;
use std::time::Duration;

const Q1: &str = "USE avis national
    LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
    SELECT %code, type, ~rate FROM car WHERE status = 'available'";

const Q2: &str = "USE continental VITAL delta united VITAL
    UPDATE flight%
    SET rate% = rate% * 1.1
    WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

/// Paper federation on a seeded network with every link touching `sites`
/// degraded with probability `p`. Serial execution keeps the seeded drop
/// sequence deterministic across runs.
fn lossy_federation(seed: u64, sites: &[&str], p: f64) -> Federation {
    let mut fed = paper_federation_with(Network::with_seed(seed), FederationProfiles::default());
    fed.parallel = false;
    fed.timeout = Duration::from_millis(150);
    for site in sites {
        fed.network().set_link_drop_probability("*", site, p);
        fed.network().set_link_drop_probability(site, "*", p);
    }
    fed
}

fn heal(fed: &Federation, sites: &[&str]) {
    for site in sites {
        fed.network().clear_link_drop_probability("*", site);
        fed.network().clear_link_drop_probability(site, "*");
    }
}

fn show_stats(fed: &Federation) {
    let s = fed.exec_stats();
    let n = fed.network().stats();
    println!(
        "  net: {} messages dropped | exec: {} attempts, {} retries, {} transient faults, \
         {} recovered, {} terminal, {} degraded\n",
        n.dropped,
        s.attempts,
        s.retries,
        s.transient_faults,
        s.recovered,
        s.terminal_faults,
        s.degraded
    );
}

fn main() {
    let p: f64 = match std::env::args().nth(1) {
        None => 0.3,
        Some(raw) => match raw.parse() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => {
                eprintln!("error: drop probability must be a number in [0, 1], got {raw:?}");
                std::process::exit(2);
            }
        },
    };

    println!(
        "=== 1. Q1 retrieval, {:.0}% loss on site4/site5 links, retries enabled ===\n",
        p * 100.0
    );
    let sites = ["site4", "site5"];
    let mut fed = lossy_federation(0xA1, &sites, p);
    fed.retry = RetryPolicy { max_attempts: 5, ..RetryPolicy::retries(5) };
    match fed.execute(Q1) {
        Ok(out) => {
            let mt = out.into_multitable().unwrap();
            println!("  multitable answered by {} of 2 databases:", mt.tables.len());
            for t in &mt.tables {
                println!("    {:<10} {} rows", t.database, t.result.rows.len());
            }
        }
        Err(e) => println!("  failed: {e}"),
    }
    show_stats(&fed);
    heal(&fed, &sites);

    println!("=== 2. Same seed, same links, retries DISABLED ===\n");
    let mut fed = lossy_federation(0xA1, &sites, p);
    match fed.execute(Q1) {
        Ok(out) => {
            let mt = out.into_multitable().unwrap();
            println!("  multitable answered by {} of 2 databases (partial)", mt.tables.len());
        }
        Err(e) => println!("  failed: {e}"),
    }
    show_stats(&fed);
    heal(&fed, &sites);

    println!("=== 3. Q2 vital update, lossy links on all three sites, retries enabled ===\n");
    let sites = ["site1", "site2", "site3"];
    let mut fed = lossy_federation(0xB2, &sites, p);
    fed.retry = RetryPolicy { max_attempts: 5, ..RetryPolicy::retries(5) };
    match fed.execute(Q2) {
        Ok(out) => {
            let report = out.into_update().unwrap();
            println!(
                "  return code {} — {}",
                report.return_code,
                mdbs::retcode::describe(report.return_code, false)
            );
            for o in &report.outcomes {
                println!("    {:<12} {:?} after {} attempt(s)", o.key, o.status, o.attempts);
            }
        }
        Err(e) => println!("  failed: {e}"),
    }
    show_stats(&fed);
    heal(&fed, &sites);

    println!("=== 4. delta's site unreachable: NON VITAL degradation (§3.2) ===\n");
    let mut fed = paper_federation_with(Network::new(), FederationProfiles::default());
    fed.parallel = false;
    fed.timeout = Duration::from_millis(300);
    fed.tolerate_unreachable = true;
    fed.network().deregister("site2");
    match fed.execute(Q2) {
        Ok(out) => {
            let report = out.into_update().unwrap();
            println!(
                "  success = {} (delta was NON VITAL, so the statement survives)",
                report.success
            );
            for o in &report.outcomes {
                println!("    {:<12} {:?} (fault: {:?})", o.key, o.status, o.fault);
            }
        }
        Err(e) => println!("  failed: {e}"),
    }
    show_stats(&fed);
}
