//! Quickstart: build the paper's federation and run the §2 multiple query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mdbs::fixtures::paper_federation;

fn main() {
    // Five autonomous databases on five services (3 airlines, 2 car-rental
    // companies), schemas imported into the Global Data Dictionary.
    let mut fed = paper_federation();

    println!("Databases in the federation:");
    for db in fed.gdd().database_names() {
        let service = fed.gdd().service_of(db).unwrap().to_string();
        let twopc = fed.ad().service(&service).unwrap().supports_2pc();
        println!("  {db:<12} hosted by {service:<16} 2PC: {twopc}");
    }
    println!();

    // The paper's §2 example: one compact MSQL query across two databases
    // with different names (cars/vehicle, code/vcode) and different schemas
    // (national has no rate column).
    let msql = "USE avis national
LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
SELECT %code, type, ~rate FROM car WHERE status = 'available'";
    println!("MSQL query:\n{msql}\n");

    let outcome = fed.execute(msql).expect("query failed");
    let multitable = outcome.into_multitable().unwrap();
    println!("Result: a multitable of {} tables\n", multitable.tables.len());
    print!("{multitable}");
}
