//! The §3.4 travel-agent multitransaction: function replication and
//! acceptable termination states.
//!
//! ```sh
//! cargo run --example travel_agent
//! ```

use mdbs::fixtures::paper_federation;
use mdbs::Federation;

const TRAVEL_AGENT: &str = "BEGIN MULTITRANSACTION
USE continental delta
LET fltab.snu.sstat.clname BE
    f838.seatnu.seatstatus.clientname
    f747.snu.sstat.passname
UPDATE fltab
SET sstat = 'TAKEN', clname = 'wenders'
WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
USE avis national
LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat
UPDATE cartab
SET cstat = 'TAKEN', client = 'wenders'
WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'available');
COMMIT
  continental AND national
  delta AND avis
END MULTITRANSACTION";

fn run(label: &str, prepare: impl FnOnce(&mut Federation)) {
    println!("=== {label} ===\n");
    let mut fed = paper_federation();
    prepare(&mut fed);
    let report = fed.execute(TRAVEL_AGENT).unwrap().into_mtx().unwrap();
    match report.achieved_state {
        Some(0) => println!("Achieved the PREFERRED state: fly Continental, drive National"),
        Some(1) => println!("Achieved the ALTERNATIVE state: fly Delta, drive Avis"),
        Some(n) => println!("Achieved acceptable state #{n}"),
        None => println!("Multitransaction FAILED: every reservation rolled back/compensated"),
    }
    println!(
        "Return code {} — {}",
        report.return_code,
        mdbs::retcode::describe(report.return_code, true)
    );
    for o in &report.outcomes {
        println!("  {:<12} {:?}", o.key, o.status);
    }
    println!();
}

fn main() {
    println!("Trip plan for client 'wenders': a flight (Continental OR Delta)");
    println!("plus a car (Avis OR National). Preference order:");
    println!("  1. continental AND national");
    println!("  2. delta AND avis\n");

    run("Everything available", |_fed| {});

    run("Continental's seat table is down", |fed| {
        fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("f838");
    });

    run("Continental AND Avis are down: no acceptable state", |fed| {
        fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("f838");
        fed.engine("svc_avis").unwrap().lock().failure_policy_mut().fail_writes_to("cars");
    });
}
