//! Wire formats: run the same cross-database join under the text proto and
//! the binary columnar codec, and show they agree on everything except the
//! bytes they put on the wire.
//!
//! ```sh
//! cargo run --example wire_formats
//! ```

use mdbs::fixtures::{paper_federation_with, FederationProfiles};
use mdbs::{Federation, WireFormat};
use netsim::Network;

const QUERY: &str = "SELECT f.flnu, g.fnu
    FROM continental.flights f, delta.flight g
    WHERE f.source = g.source AND f.destination = g.dest
    ORDER BY f.flnu, g.fnu";

fn federation(format: WireFormat) -> Federation {
    // Same seed + serial dispatch ⇒ both runs see the identical schedule.
    let mut fed = paper_federation_with(Network::with_seed(7), FederationProfiles::default());
    fed.parallel = false;
    fed.wire_format = format;
    fed
}

fn main() {
    let mut rendered = Vec::new();
    for format in [WireFormat::Text, WireFormat::Binary] {
        let mut fed = federation(format);
        fed.execute("USE continental delta").unwrap();
        let table = fed.execute(QUERY).unwrap().into_table().unwrap();
        let m = fed.metrics_registry();
        println!("-- {} --", format.label());
        println!("rows: {}", table.rows.len());
        println!("bytes on the wire:  total {}", m.counter("net.bytes"));
        println!("  as text frames:   {}", m.counter("net.bytes_text"));
        println!("  as binary frames: {}", m.counter("net.bytes_binary"));

        // EXPLAIN re-runs the join; its report grows a wire section only
        // when binary frames actually shipped.
        let explain = fed.execute(&format!("EXPLAIN {QUERY}")).unwrap().into_explain().unwrap();
        match &explain.wire {
            Some(w) => println!(
                "EXPLAIN wire section: format={} text={}B binary={}B",
                w.format, w.bytes_text, w.bytes_binary
            ),
            None => println!("EXPLAIN wire section: absent (pure text run)"),
        }
        println!();
        rendered.push(format!("{table:?}"));
    }
    assert_eq!(rendered[0], rendered[1], "formats must agree on results");
    println!("text and binary runs returned identical tables ✓");
}
