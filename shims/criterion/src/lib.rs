//! Offline shim for `criterion`: a small timing harness exposing the subset
//! of criterion's API the workspace's benches use (`criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_with_input`, throughput
//! annotations). Each benchmark runs a bounded number of timed iterations
//! and prints a one-line mean; no statistics or plots. The only CLI flag
//! honoured is criterion's `--test` smoke mode (`cargo bench -- --test`):
//! every payload runs exactly once, untimed, so CI can prove the bench
//! suite still executes without paying for a measurement sweep.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-benchmark time budget. Keeps full `cargo bench` sweeps quick while
/// still amortising per-iteration noise.
const TIME_BUDGET: Duration = Duration::from_millis(100);

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100, test_mode: false }
    }
}

impl Criterion {
    /// Sets the target number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies criterion's CLI flags. Only `--test` is recognised: it
    /// switches every benchmark to a single untimed smoke iteration.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|arg| arg == "--test") {
            self.test_mode = true;
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, self.test_mode, &mut f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Records the work-per-iteration figure (printed, not analysed).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, n, self.criterion.test_mode, &mut f);
        self
    }

    /// Runs a parameterised benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, n, self.criterion.test_mode, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: name.into(), parameter: parameter.to_string() }
    }

    /// Builds an id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.name, self.parameter)
        }
    }
}

/// Work-per-iteration annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    target_iters: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per iteration, up to the sample target or the group
    /// time budget, whichever is hit first.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warmup to populate caches/lazy state.
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.target_iters {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, test_mode: bool, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        // Smoke mode (`--test`): prove the payload executes, skip timing.
        let mut bencher = Bencher { target_iters: 1, samples: Vec::new() };
        f(&mut bencher);
        println!("test  {label:<60} ... ok");
        return;
    }
    let mut bencher = Bencher { target_iters: sample_size, samples: Vec::new() };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<60} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "bench {label:<60} {:>12.0} ns/iter ({} samples)",
        mean.as_nanos() as f64,
        bencher.samples.len()
    );
}

/// Declares a group of benchmark functions, in both criterion forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::configure_from_args($config);
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 3, "warmup + samples should run the payload");
    }

    #[test]
    fn test_mode_runs_payload_once() {
        let mut c = Criterion { sample_size: 50, test_mode: true };
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 2, "one warmup + one smoke iteration, never the sample target");
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("n", 4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }
}
