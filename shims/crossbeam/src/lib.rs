//! Offline shim for `crossbeam`: just the `channel` module, implemented with
//! `std::sync::{Mutex, Condvar}`. Supports the subset the workspace uses:
//! unbounded MPMC channels with `send`, `recv`, `recv_timeout`,
//! `recv_deadline`, `is_empty`, plus disconnect detection in both
//! directions (all senders gone → `Disconnected` on receive; all receivers
//! gone → `SendError` on send).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Returns `true` if the queue currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
        }

        /// Returns the number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Attempts to receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks until a message arrives, the timeout elapses, or every
        /// sender is dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Blocks until a message arrives, `deadline` passes, or every
        /// sender is dropped.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by the non-blocking [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel is empty but still connected.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by timed receives.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders disconnected with the queue empty.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert!(!rx.is_empty());
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn timeout_on_empty() {
            let (tx, rx) = unbounded::<i32>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_when_receiver_dropped() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), 42);
            t.join().unwrap();
        }
    }
}
