//! Offline shim for `parking_lot`: the subset of its API this workspace
//! uses, implemented over `std::sync`. Guards are returned directly (no
//! `Result`); a poisoned std lock is recovered transparently, matching
//! parking_lot's poison-free semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive (poison-free facade over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: e.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Reader-writer lock (poison-free facade over `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable facade matching `parking_lot::Condvar`'s shape closely
/// enough for in-workspace use (not currently used, kept for parity).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
