//! `any::<T>()` — strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(pub PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly "reasonable" magnitudes, occasionally raw bit patterns
        // (which may be NaN/infinite — callers filter what they can't use).
        if rng.bool_with(0.8) {
            let magnitude = (rng.unit_f64() - 0.5) * 2e9;
            (magnitude * 1e4).round() / 1e4
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from(0x20 + rng.usize_in(0, 0x5F) as u8)
    }
}
