//! Fixed-size array strategies (`uniform3`, `uniform4`, ...).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `[S::Value; N]` from one element strategy.
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),* $(,)?) => {$(
        /// Array of independently generated elements.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_fn! {
    uniform1 => 1,
    uniform2 => 2,
    uniform3 => 3,
    uniform4 => 4,
    uniform5 => 5,
    uniform6 => 6,
    uniform8 => 8,
}
