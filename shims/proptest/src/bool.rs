//! `prop::bool::ANY`.

use crate::arbitrary::AnyStrategy;
use std::marker::PhantomData;

/// Strategy over both boolean values.
pub const ANY: AnyStrategy<bool> = AnyStrategy(PhantomData);
