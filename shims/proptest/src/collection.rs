//! Collection strategies: `vec` and `hash_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashMap;
use std::hash::Hash;

/// A size specification for generated collections (`lo..hi`, `lo..=hi`, or
/// an exact count).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.lo, self.hi.max(self.lo + 1))
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec`s whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashMap`s; duplicate generated keys collapse, so the
/// result may be smaller than the sampled size.
pub fn hash_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> HashMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Eq + Hash,
{
    HashMapStrategy { keys, values, size: size.into() }
}

/// See [`hash_map`].
#[derive(Debug, Clone)]
pub struct HashMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for HashMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Eq + Hash,
{
    type Value = HashMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
        let n = self.size.sample(rng);
        let mut map = HashMap::with_capacity(n);
        for _ in 0..n {
            map.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        map
    }
}
