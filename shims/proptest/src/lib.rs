//! Offline shim for `proptest`: a deterministic random-testing harness
//! exposing the subset of proptest's API this workspace uses. Strategies
//! are plain generators (no shrinking); each `proptest!` test derives its
//! RNG seed from the test's name, so failures reproduce exactly across
//! runs and machines.

pub mod arbitrary;
pub mod array;
pub mod bool;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a `use proptest::prelude::*` caller expects.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{array, bool, collection, option, sample};
    }
}

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                // prop_assume! rejections early-return out of the closure,
                // skipping just this case.
                let __case_fn = move || $body;
                __case_fn();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::collection;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_idents_match_pattern(s in "[a-z][a-z0-9_]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9, "{s}");
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn oneof_and_ranges(v in prop_oneof![Just(0u32), 1u32..10], b in any::<bool>()) {
            prop_assert!(v < 10);
            let _ = b;
        }

        #[test]
        fn collections_respect_sizes(
            v in collection::vec(0i64..5, 2..6),
            m in collection::hash_map("[a-z]{1,4}", any::<bool>(), 0..4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(m.len() < 4);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec("[a-z]{1,6}", 3..5);
        let mut a = crate::test_runner::TestRng::from_name("fixed");
        let mut b = crate::test_runner::TestRng::from_name("fixed");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
