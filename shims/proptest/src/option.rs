//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` from `inner` about 75% of the time, else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.bool_with(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
