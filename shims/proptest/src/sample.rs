//! Sampling strategies over explicit value sets.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly picks one of `options` (cloned) per generated value.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select needs at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.usize_in(0, self.options.len())].clone()
    }
}
