//! The `Strategy` trait and its combinators. Strategies here are plain
//! generators — no shrink trees — which keeps them deterministic and fast.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Rejects generated values for which `f` returns false, retrying.
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, reason: reason.into(), f }
    }

    /// Builds a recursive strategy: `self` is the leaf; `expand` wraps an
    /// inner strategy into one more level of structure. `depth` bounds the
    /// nesting; the remaining parameters exist for proptest API parity.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = expand(strat).boxed();
            // Mix the leaf back in so generated structures vary in depth.
            strat = Union::new(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        strat
    }

    /// Erases the strategy type behind a cheap clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: self.inner.clone() }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.source.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter `{}` rejected 10000 consecutive candidates", self.reason);
    }
}

/// Weighted choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    branches: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` branches.
    pub fn new(branches: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        let total_weight = branches.iter().map(|(w, _)| u64::from(*w)).sum::<u64>().max(1);
        Union { branches, total_weight }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { branches: self.branches.clone(), total_weight: self.total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, strat) in &self.branches {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        self.branches.last().expect("non-empty").1.generate(rng)
    }
}

/// String literals act as simplified-regex strategies generating `String`s.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}
