//! Generation of strings matching the simplified regex dialect proptest
//! accepts for `&str` strategies: literals, `.`, character classes
//! (ranges, negation, escapes), and the `* + ? {m} {m,n}` quantifiers.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Piece {
    Literal(char),
    /// `.` — any printable character except newline.
    AnyChar,
    /// `[...]` / `[^...]`, expanded to an explicit alphabet.
    Class {
        negated: bool,
        chars: Vec<char>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Repeat {
    min: usize,
    max: usize,
}

/// Printable sample space for `.` and negated classes: ASCII plus a few
/// multi-byte characters so wire escaping gets exercised.
const EXTRA_CHARS: &[char] = &['é', 'ß', 'λ', '中', '✓'];

fn sample_any(rng: &mut TestRng) -> char {
    if rng.bool_with(0.05) {
        EXTRA_CHARS[rng.usize_in(0, EXTRA_CHARS.len())]
    } else {
        char::from(0x20 + rng.usize_in(0, 0x5F) as u8)
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Piece {
    let negated = chars.peek() == Some(&'^');
    if negated {
        chars.next();
    }
    let mut members: Vec<char> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class in pattern");
        match c {
            ']' => break,
            '\\' => {
                let esc = chars.next().expect("dangling escape in character class");
                let lit = match esc {
                    'r' => '\r',
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                };
                if let Some(p) = pending.take() {
                    members.push(p);
                }
                pending = Some(lit);
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("range start");
                let hi = chars.next().expect("range end");
                for code in (lo as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        members.push(ch);
                    }
                }
            }
            other => {
                if let Some(p) = pending.take() {
                    members.push(p);
                }
                pending = Some(other);
            }
        }
    }
    if let Some(p) = pending {
        members.push(p);
    }
    Piece::Class { negated, chars: members }
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Repeat {
    match chars.peek() {
        Some('*') => {
            chars.next();
            Repeat { min: 0, max: 8 }
        }
        Some('+') => {
            chars.next();
            Repeat { min: 1, max: 8 }
        }
        Some('?') => {
            chars.next();
            Repeat { min: 0, max: 1 }
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let (min, max) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {m,n} lower bound"),
                    hi.trim().parse().expect("bad {m,n} upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad {n} count");
                    (n, n)
                }
            };
            Repeat { min, max }
        }
        _ => Repeat { min: 1, max: 1 },
    }
}

fn parse(pattern: &str) -> Vec<(Piece, Repeat)> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let piece = match c {
            '.' => Piece::AnyChar,
            '[' => parse_class(&mut chars),
            '\\' => {
                let esc = chars.next().expect("dangling escape in pattern");
                Piece::Literal(match esc {
                    'r' => '\r',
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                })
            }
            other => Piece::Literal(other),
        };
        let repeat = parse_repeat(&mut chars);
        pieces.push((piece, repeat));
    }
    pieces
}

fn sample_piece(piece: &Piece, rng: &mut TestRng) -> char {
    match piece {
        Piece::Literal(c) => *c,
        Piece::AnyChar => sample_any(rng),
        Piece::Class { negated: false, chars } => {
            assert!(!chars.is_empty(), "empty character class");
            chars[rng.usize_in(0, chars.len())]
        }
        Piece::Class { negated: true, chars } => loop {
            let candidate = sample_any(rng);
            if !chars.contains(&candidate) {
                return candidate;
            }
        },
    }
}

/// Generates a string matching `pattern` under the simplified dialect.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (piece, repeat) in parse(pattern) {
        let count = rng.usize_in(repeat.min, repeat.max + 1);
        for _ in 0..count {
            out.push(sample_piece(&piece, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn literal_passthrough() {
        assert_eq!(generate_matching("abc", &mut rng()), "abc");
    }

    #[test]
    fn class_and_quantifier() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9_]{0,8}", &mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn negated_class_excludes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[^\\r]{1,40}", &mut r);
            assert!(!s.contains('\r'));
            assert!((1..=40).contains(&s.chars().count()));
        }
    }

    #[test]
    fn task_name_pattern() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("T[0-9]{1,3}", &mut r);
            assert!(s.starts_with('T') && s.len() >= 2 && s.len() <= 4, "{s:?}");
        }
    }

    #[test]
    fn dot_star_varies() {
        let mut r = rng();
        let all: Vec<String> = (0..50).map(|_| generate_matching(".*", &mut r)).collect();
        assert!(all.iter().any(|s| !s.is_empty()));
        assert!(all.iter().all(|s| !s.contains('\n')));
    }
}
