//! Deterministic RNG and per-test configuration.

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator; every property test seeds one from
/// its own name so runs reproduce bit-for-bit.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Seeds the generator directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}
