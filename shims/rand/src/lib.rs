//! Offline shim for `rand` 0.8: the deterministic, seedable subset this
//! workspace uses. `StdRng` is a splitmix64 generator — statistically fine
//! for simulation and fault injection, not cryptographic.

/// A generator seedable from a `u64` (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random value generation (subset of rand's `Rng`).
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns a uniform value in `[range.start, range.end)`.
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }
}

/// Types samplable uniformly from a half-open range (shim-internal).
pub trait UniformSample: Copy {
    /// Samples uniformly from `[lo, hi)`.
    fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
        }
    }
}
