//! Umbrella crate for the Extended MSQL reproduction.
//!
//! Hosts the workspace's cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`); the library surface simply re-exports
//! the member crates. Start with [`mdbs::Federation`] and
//! [`mdbs::fixtures::paper_federation`].

pub use catalog;
pub use dol;
pub use ldbs;
pub use mdbs;
pub use msql_lang;
pub use netsim;
