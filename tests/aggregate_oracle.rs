//! Property test: **aggregate/top-k pushdown is an optimization, not a
//! semantic**.
//!
//! For any data distribution — empty groups, all-NULL aggregated columns,
//! sites with zero rows, single-site degenerates — a query executed with
//! pushdown on must return exactly the rows of (a) the same query with
//! pushdown off (the classic ship-everything coordinator plan) and (b) a
//! plain-Rust reference evaluator written independently of both.
//!
//! Merged pushdown output is emitted in sorted group-key order while the
//! coordinator plan preserves first-seen order, so unordered queries are
//! compared as sorted multisets; ordered queries order by enough columns to
//! make the prefix unique per row value, so they compare as sequences.
//!
//! Aggregated columns carry only integers (or NULL): partial SUMs merge by
//! scaled multiplication while the reference adds sequentially, and only
//! integer arithmetic makes those bit-identical.

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Scenario {
    /// Rows of `avis.t1 (k, g, v)` — join key, group key, aggregated value.
    t1: Vec<(i64, i64, Option<i64>)>,
    /// Rows of `national.t2 (k, w)` — join key, aggregated value.
    t2: Vec<(i64, Option<i64>)>,
    /// Index into the query shapes exercised by `run`/`reference`.
    query: usize,
}

const N_QUERIES: usize = 5;

fn scenario() -> impl Strategy<Value = Scenario> {
    let opt = || prop::option::of(0i64..7);
    (
        prop::collection::vec((0i64..5, 0i64..3, opt()), 0..12),
        prop::collection::vec((0i64..5, opt()), 0..12),
        0usize..N_QUERIES,
    )
        .prop_map(|(t1, t2, query)| Scenario { t1, t2, query })
}

/// The query shapes: 0–2 are decomposable aggregates (plain, grand total,
/// ordered + limited), 3 is a pure-product top-k, 4 is a single-site
/// degenerate that never decomposes (pushdown must be a no-op).
fn query_sql(q: usize) -> &'static str {
    match q {
        0 => {
            "SELECT t.g, COUNT(*), SUM(t.v), MIN(u.w), AVG(u.w) \
             FROM avis.t1 t, national.t2 u WHERE t.k = u.k GROUP BY t.g"
        }
        1 => {
            "SELECT COUNT(*), COUNT(u.w), SUM(t.v), MAX(u.w) \
             FROM avis.t1 t, national.t2 u WHERE t.k = u.k"
        }
        2 => {
            "SELECT t.g, COUNT(*), SUM(u.w) FROM avis.t1 t, national.t2 u \
             WHERE t.k = u.k GROUP BY t.g ORDER BY t.g DESC LIMIT 2"
        }
        3 => {
            "SELECT t.v, u.w FROM avis.t1 t, national.t2 u \
             ORDER BY t.v DESC, u.w LIMIT 4"
        }
        4 => "SELECT t.g, COUNT(*), SUM(t.v) FROM avis.t1 t GROUP BY t.g",
        _ => unreachable!(),
    }
}

/// Whether the query's ORDER BY pins a total output order (compare as a
/// sequence); otherwise compare as a sorted multiset.
fn ordered(q: usize) -> bool {
    matches!(q, 2 | 3)
}

fn cmp_rows(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

fn normalise(mut rows: Vec<Vec<Value>>, q: usize) -> Vec<Vec<Value>> {
    if !ordered(q) {
        rows.sort_by(|a, b| cmp_rows(a, b));
    }
    rows
}

/// Runs the scenario's query through a fresh federation and returns its rows.
fn run(s: &Scenario, pushdown: bool) -> Vec<Vec<Value>> {
    let mut fed = paper_federation();
    fed.agg_pushdown = pushdown;
    fed.execute("USE avis national").unwrap();
    fed.execute("CREATE TABLE avis.t1 (k INT, g INT, v INT)").unwrap();
    fed.execute("CREATE TABLE national.t2 (k INT, w INT)").unwrap();
    let lit = |v: &Option<i64>| v.map_or("NULL".to_string(), |x| x.to_string());
    {
        let engine = fed.engine("svc_avis").unwrap();
        let mut engine = engine.lock();
        for (k, g, v) in &s.t1 {
            engine
                .execute("avis", &format!("INSERT INTO t1 VALUES ({k}, {g}, {})", lit(v)))
                .unwrap();
        }
    }
    {
        let engine = fed.engine("svc_national").unwrap();
        let mut engine = engine.lock();
        for (k, w) in &s.t2 {
            engine
                .execute("national", &format!("INSERT INTO t2 VALUES ({k}, {})", lit(w)))
                .unwrap();
        }
    }
    let outcome = fed.execute(query_sql(s.query)).unwrap();
    let rows = match outcome {
        mdbs::MsqlOutcome::Table(rs) => rs.rows,
        mdbs::MsqlOutcome::Multitable(mt) => {
            // The single-site degenerate returns a one-table multitable.
            assert_eq!(mt.tables.len(), 1, "degenerate query should touch one database");
            mt.tables.into_iter().next().unwrap().result.rows
        }
        other => panic!("unexpected outcome {other:?}"),
    };
    normalise(rows, s.query)
}

/// Aggregate accumulator for the reference evaluator.
#[derive(Default, Clone)]
struct Acc {
    count: i64,
    sum_v: Option<i64>,
    cnt_w: i64,
    sum_w: Option<i64>,
    min_w: Option<i64>,
    max_w: Option<i64>,
}

impl Acc {
    fn add(&mut self, v: Option<i64>, w: Option<i64>) {
        self.count += 1;
        if let Some(v) = v {
            self.sum_v = Some(self.sum_v.unwrap_or(0) + v);
        }
        if let Some(w) = w {
            self.cnt_w += 1;
            self.sum_w = Some(self.sum_w.unwrap_or(0) + w);
            self.min_w = Some(self.min_w.map_or(w, |m| m.min(w)));
            self.max_w = Some(self.max_w.map_or(w, |m| m.max(w)));
        }
    }

    fn avg_w(&self) -> Value {
        match self.sum_w {
            Some(s) if self.cnt_w > 0 => Value::Float(s as f64 / self.cnt_w as f64),
            _ => Value::Null,
        }
    }
}

fn int_or_null(v: Option<i64>) -> Value {
    v.map_or(Value::Null, Value::Int)
}

/// Plain-Rust reference evaluation of the scenario's query.
fn reference(s: &Scenario) -> Vec<Vec<Value>> {
    let rows = match s.query {
        4 => {
            // Single-site: GROUP t1 BY g.
            let mut groups: BTreeMap<i64, Acc> = BTreeMap::new();
            for (_, g, v) in &s.t1 {
                groups.entry(*g).or_default().add(*v, None);
            }
            groups
                .into_iter()
                .map(|(g, a)| vec![Value::Int(g), Value::Int(a.count), int_or_null(a.sum_v)])
                .collect()
        }
        3 => {
            // Pure-product top-k over (v, w).
            let mut rows: Vec<Vec<Value>> =
                s.t1.iter()
                    .flat_map(|(_, _, v)| {
                        s.t2.iter().map(move |(_, w)| vec![int_or_null(*v), int_or_null(*w)])
                    })
                    .collect();
            rows.sort_by(|a, b| b[0].total_cmp(&a[0]).then(a[1].total_cmp(&b[1])));
            rows.truncate(4);
            rows
        }
        _ => {
            // Equi-join on k, then aggregate.
            let mut groups: BTreeMap<i64, Acc> = BTreeMap::new();
            let mut total = Acc::default();
            for (k1, g, v) in &s.t1 {
                for (k2, w) in &s.t2 {
                    if k1 == k2 {
                        groups.entry(*g).or_default().add(*v, *w);
                        total.add(*v, *w);
                    }
                }
            }
            match s.query {
                0 => groups
                    .into_iter()
                    .map(|(g, a)| {
                        vec![
                            Value::Int(g),
                            Value::Int(a.count),
                            int_or_null(a.sum_v),
                            int_or_null(a.min_w),
                            a.avg_w(),
                        ]
                    })
                    .collect(),
                1 => vec![vec![
                    Value::Int(total.count),
                    Value::Int(total.cnt_w),
                    int_or_null(total.sum_v),
                    int_or_null(total.max_w),
                ]],
                2 => {
                    let mut rows: Vec<Vec<Value>> = groups
                        .into_iter()
                        .rev() // ORDER BY t.g DESC
                        .map(|(g, a)| {
                            vec![Value::Int(g), Value::Int(a.count), int_or_null(a.sum_w)]
                        })
                        .collect();
                    rows.truncate(2);
                    rows
                }
                _ => unreachable!(),
            }
        }
    };
    normalise(rows, s.query)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pushed_and_unpushed_plans_match_the_reference(s in scenario()) {
        let expected = reference(&s);
        let pushed = run(&s, true);
        let unpushed = run(&s, false);
        prop_assert_eq!(
            &pushed,
            &expected,
            "pushdown-on diverged from the reference (scenario {:?})",
            s
        );
        prop_assert_eq!(
            &unpushed,
            &expected,
            "pushdown-off diverged from the reference (scenario {:?})",
            s
        );
    }
}

/// The degenerate shapes the strategy may under-sample, pinned exactly once.
#[test]
fn empty_sites_and_all_null_columns_agree() {
    for query in 0..N_QUERIES {
        for (t1, t2) in [
            (vec![], vec![]),                                    // both sites empty
            (vec![(1, 0, None), (1, 1, None)], vec![(1, None)]), // all-NULL aggregates
            (vec![(1, 0, Some(3))], vec![]),                     // one empty site
        ] {
            let s = Scenario { t1, t2, query };
            let expected = reference(&s);
            assert_eq!(run(&s, true), expected, "pushdown-on, scenario {s:?}");
            assert_eq!(run(&s, false), expected, "pushdown-off, scenario {s:?}");
        }
    }
}
