//! ANALYZE lifecycle at the federation level: statement routing, the GDD's
//! statistics cache (fetch / hit / invalidate), and the costed planner's
//! visibility in EXPLAIN.

use mdbs::fixtures::paper_federation;
use mdbs::MsqlOutcome;

/// Reads one counter from the session metrics, defaulting to zero.
fn counter(fed: &mdbs::Federation, name: &str) -> u64 {
    fed.metrics().counters.iter().find(|(n, _)| n.as_str() == name).map(|(_, v)| *v).unwrap_or(0)
}

const EQUI_JOIN: &str = "SELECT f.flnu, g.fnu
     FROM continental.flights f, delta.flight g
     WHERE f.source = g.source AND f.destination = g.dest
     ORDER BY f.flnu, g.fnu";

#[test]
fn analyze_ships_to_the_owning_site() {
    let mut fed = paper_federation();
    let MsqlOutcome::Admin(msg) = fed.execute("ANALYZE avis.cars").unwrap() else {
        panic!("ANALYZE should yield an admin outcome");
    };
    assert!(msg.contains("analyzed 1 table(s) in `avis`"), "{msg}");
    // Bare ANALYZE walks every table of a single-database scope.
    fed.execute("USE avis").unwrap();
    let MsqlOutcome::Admin(msg) = fed.execute("ANALYZE").unwrap() else {
        panic!("bare ANALYZE should yield an admin outcome");
    };
    assert!(msg.contains("in `avis`"), "{msg}");
}

#[test]
fn bare_analyze_rejects_ambiguous_scope() {
    let mut fed = paper_federation();
    fed.execute("USE avis national").unwrap();
    let err = fed.execute("ANALYZE").unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
}

#[test]
fn stats_cache_fetches_once_then_hits() {
    let mut fed = paper_federation();
    fed.execute("ANALYZE continental.flights").unwrap();
    fed.execute("ANALYZE delta.flight").unwrap();
    fed.execute("USE continental delta").unwrap();

    fed.execute(EQUI_JOIN).unwrap();
    assert_eq!(counter(&fed, "planner.stats_fetches"), 2, "one STATS fetch per database");
    assert_eq!(
        counter(&fed, "planner.costed_joins"),
        1,
        "fresh stats put the join on the costed path"
    );

    fed.execute(EQUI_JOIN).unwrap();
    assert_eq!(counter(&fed, "planner.stats_fetches"), 2, "second join must reuse the cache");
    assert_eq!(counter(&fed, "planner.stats_cache_hits"), 2);
    assert_eq!(counter(&fed, "planner.costed_joins"), 2);
}

#[test]
fn ddl_and_analyze_invalidate_the_stats_cache() {
    let mut fed = paper_federation();
    fed.execute("ANALYZE continental.flights").unwrap();
    fed.execute("ANALYZE delta.flight").unwrap();
    fed.execute("USE continental delta").unwrap();
    fed.execute(EQUI_JOIN).unwrap();
    assert_eq!(counter(&fed, "planner.stats_fetches"), 2);

    // DDL against continental drops its cached statistics; the next costed
    // join must re-fetch that database (and only that one).
    fed.execute("CREATE TABLE continental.scratch (x INT)").unwrap();
    fed.execute(EQUI_JOIN).unwrap();
    assert_eq!(counter(&fed, "planner.stats_fetches"), 3, "DDL must invalidate one database");

    // Re-ANALYZE also invalidates, so fresh snapshots are picked up.
    fed.execute("ANALYZE delta.flight").unwrap();
    fed.execute(EQUI_JOIN).unwrap();
    assert_eq!(counter(&fed, "planner.stats_fetches"), 4, "ANALYZE must invalidate its database");
}

#[test]
fn disabling_the_planner_skips_stats_fetches() {
    let mut fed = paper_federation();
    fed.cost_planner = false;
    fed.execute("ANALYZE continental.flights").unwrap();
    fed.execute("ANALYZE delta.flight").unwrap();
    fed.execute("USE continental delta").unwrap();
    fed.execute(EQUI_JOIN).unwrap();
    assert_eq!(counter(&fed, "planner.stats_fetches"), 0);
    assert_eq!(counter(&fed, "planner.costed_joins"), 0);
}

#[test]
fn costed_explain_reports_estimated_vs_actual_rows() {
    let mut fed = paper_federation();
    fed.parallel = false; // deterministic trace
    fed.execute("ANALYZE continental.flights").unwrap();
    fed.execute("ANALYZE delta.flight").unwrap();
    fed.execute("USE continental delta").unwrap();
    let report = fed.execute(&format!("EXPLAIN {EQUI_JOIN}")).unwrap().into_explain().unwrap();
    let planner = report.planner.as_ref().expect("costed EXPLAIN carries planner estimates");
    assert_eq!(planner.rows.len(), 2, "{planner:?}");
    for row in &planner.rows {
        assert!(row.actual_rows > 0, "paper fixture partials are non-empty: {row:?}");
    }
    let text = report.render();
    assert!(text.contains("planner estimates:"), "{text}");
    assert!(text.contains("est rows:"), "{text}");

    // Without statistics the same EXPLAIN has no planner section at all —
    // the heuristic path renders byte-identically to the pre-planner days.
    let mut plain = paper_federation();
    plain.parallel = false;
    plain.execute("USE continental delta").unwrap();
    let report = plain.execute(&format!("EXPLAIN {EQUI_JOIN}")).unwrap().into_explain().unwrap();
    assert!(report.planner.is_none());
    assert!(!report.render().contains("planner estimates"));
}

#[test]
fn analyze_survives_rollback_semantics() {
    // DML after ANALYZE drifts the staleness counter, but the snapshot is
    // still served until it crosses the freshness threshold; the costed and
    // heuristic paths agree throughout.
    let mut fed = paper_federation();
    fed.execute("ANALYZE continental.flights").unwrap();
    fed.execute("ANALYZE delta.flight").unwrap();
    fed.execute("USE continental delta").unwrap();
    let before = fed.execute(EQUI_JOIN).unwrap().into_table().unwrap();
    {
        let engine = fed.engine("svc_continental").unwrap();
        let mut engine = engine.lock();
        engine
            .execute(
                "continental",
                "INSERT INTO flights VALUES (9, 'Houston', 'am', 'San Antonio', 'pm', 'mon', 55.0)",
            )
            .unwrap();
    }
    // The cache still holds the pre-DML snapshot; re-ANALYZE refreshes it.
    fed.execute("ANALYZE continental.flights").unwrap();
    let after = fed.execute(EQUI_JOIN).unwrap().into_table().unwrap();
    assert!(after.rows.len() > before.rows.len(), "new Houston flight joins delta rows");
}
