//! Linearizability-style oracle over concurrent federation sessions.
//!
//! Two sessions race three non-commutative single-statement updates each
//! against one shared database. Whatever interleaving the scheduler picks,
//! statement-level locking must make the run equivalent to *some* serial
//! order of the six statements: the concurrent final table state has to
//! match at least one of the C(6,3) = 20 order-preserving interleavings
//! replayed serially on a fresh engine. Runs over 120 seeded schedules.

use ldbs::profile::DbmsProfile;
use ldbs::value::Value;
use ldbs::Engine;
use mdbs::Federation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: [(i64, i64); 3] = [(1, 100), (2, 200), (3, 300)];
const STMTS_PER_SESSION: usize = 3;
const SEEDS: u64 = 120;

/// The fixture engine: one database, one account table.
fn bank_engine() -> Engine {
    let mut e = Engine::new("svc_bank", DbmsProfile::oracle_like());
    e.create_database("bank").unwrap();
    e.execute("bank", "CREATE TABLE acct (id INT, bal INT)").unwrap();
    for (id, bal) in ROWS {
        e.execute("bank", &format!("INSERT INTO acct VALUES ({id}, {bal})")).unwrap();
    }
    e
}

fn bank_federation() -> Federation {
    let mut fed = Federation::new();
    fed.add_service("svc_bank", "site1", bank_engine()).unwrap();
    fed.execute("IMPORT DATABASE bank FROM SERVICE svc_bank").unwrap();
    fed
}

/// One seeded non-commutative update. Additions, doublings and overwrites
/// on overlapping rows do not commute, so distinct serial orders produce
/// distinct final states — the oracle check is not vacuous.
fn gen_stmt(rng: &mut StdRng) -> String {
    let id = rng.gen_range(1..4);
    match rng.gen_range(0..3) {
        0 => format!("UPDATE acct SET bal = bal + {} WHERE id = {id}", rng.gen_range(1..10)),
        1 => format!("UPDATE acct SET bal = bal * 2 WHERE id = {id}"),
        _ => format!("UPDATE acct SET bal = {} WHERE id = {id}", rng.gen_range(10..100)),
    }
}

fn read_table(e: &mut Engine) -> Vec<Vec<Value>> {
    e.execute("bank", "SELECT id, bal FROM acct ORDER BY id")
        .unwrap()
        .into_result_set()
        .unwrap()
        .rows
}

/// Replays one serial order of the six statements on a fresh engine.
fn serial_replay(order: &[&str]) -> Vec<Vec<Value>> {
    let mut e = bank_engine();
    for stmt in order {
        e.execute("bank", stmt).unwrap();
    }
    read_table(&mut e)
}

/// All order-preserving interleavings of two 3-statement sequences: a 6-bit
/// mask with 3 bits set says which slots session A's statements occupy.
fn interleavings<'a>(a: &'a [String], b: &'a [String]) -> Vec<Vec<&'a str>> {
    let n = a.len() + b.len();
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != a.len() {
            continue;
        }
        let (mut ai, mut bi) = (0, 0);
        let mut order = Vec::with_capacity(n);
        for slot in 0..n {
            if mask & (1 << slot) != 0 {
                order.push(a[ai].as_str());
                ai += 1;
            } else {
                order.push(b[bi].as_str());
                bi += 1;
            }
        }
        out.push(order);
    }
    out
}

/// Runs one seeded schedule and checks it against the serial oracle.
fn check_seed(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Vec<String> = (0..STMTS_PER_SESSION).map(|_| gen_stmt(&mut rng)).collect();
    let b: Vec<String> = (0..STMTS_PER_SESSION).map(|_| gen_stmt(&mut rng)).collect();

    let fed = bank_federation();
    std::thread::scope(|s| {
        for stmts in [&a, &b] {
            let mut session = fed.session();
            s.spawn(move || {
                session.execute("USE bank").unwrap();
                for stmt in stmts {
                    let report = session.execute(stmt).unwrap().into_update().unwrap();
                    assert!(report.success, "seed {seed}: update failed: {report:?}");
                }
            });
        }
    });

    let engine = fed.engine("svc_bank").unwrap();
    let observed = read_table(&mut engine.lock());

    let matched = interleavings(&a, &b).iter().any(|order| serial_replay(order) == observed);
    assert!(
        matched,
        "seed {seed}: final state {observed:?} matches no serial order of\n  A = {a:?}\n  B = {b:?}"
    );
}

#[test]
fn every_concurrent_schedule_is_equivalent_to_a_serial_order() {
    for seed in 0..SEEDS {
        check_seed(seed);
    }
}
