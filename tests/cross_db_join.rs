//! Cross-database joins: decomposition into largest local subqueries, a
//! coordinator collecting partial results, and the modified global query Q'
//! (paper §4.3's decomposition phase + §4.1's "partial results are collected
//! in one database, acting as the coordinator").

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;

#[test]
fn join_flights_with_cars_across_databases() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    // Which available cars are cheaper per day than each Houston→San Antonio
    // flight? (A nonsensical but join-shaped business question.)
    let rs = fed
        .execute(
            "SELECT f.flnu, c.code
             FROM continental.flights f, avis.cars c
             WHERE f.source = 'Houston' AND f.destination = 'San Antonio'
               AND c.carst = 'available' AND c.rate < f.rate
             ORDER BY f.flnu, c.code",
        )
        .unwrap()
        .into_table()
        .unwrap();
    // flight 1 (rate 100) vs available cars 1 (39.5) and 3 (25.0).
    assert_eq!(rs.columns.len(), 2);
    assert_eq!(rs.columns[0].name, "flnu");
    assert_eq!(rs.columns[1].name, "code");
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(1)]);
    assert_eq!(rs.rows[1], vec![Value::Int(1), Value::Int(3)]);
}

#[test]
fn local_predicates_are_pushed_down() {
    // Verify pushdown operationally: byte traffic with a selective local
    // predicate must be lower than without it, because the partial result
    // shipped to the coordinator is smaller.
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    let net = fed.network().clone();

    net.reset_stats();
    fed.execute(
        "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c
         WHERE c.rate < f.rate",
    )
    .unwrap();
    let unfiltered = net.stats().bytes;

    net.reset_stats();
    fed.execute(
        "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c
         WHERE f.flnu = 1 AND c.code = 1 AND c.rate < f.rate",
    )
    .unwrap();
    let filtered = net.stats().bytes;

    assert!(
        filtered < unfiltered,
        "pushdown should shrink shipped partials: {filtered} >= {unfiltered}"
    );
}

#[test]
fn aggregates_evaluate_at_the_coordinator() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    let rs = fed
        .execute(
            "SELECT COUNT(*) AS pairs FROM continental.flights f, avis.cars c
             WHERE c.rate < f.rate",
        )
        .unwrap()
        .into_table()
        .unwrap();
    // 3 flights × 3 cars, count pairs where car rate < flight rate:
    // rates: flights 100/80/60; cars 39.5/59/25.
    // All three cars are cheaper than every flight: 3 × 3 = 9.
    assert_eq!(rs.rows[0][0], Value::Int(9));
}

#[test]
fn temporaries_are_cleaned_up_at_the_coordinator() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    fed.execute(
        "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c WHERE c.rate < f.rate",
    )
    .unwrap();
    // No part_* table remains in either database.
    for (svc, db) in [("svc_continental", "continental"), ("svc_avis", "avis")] {
        let engine = fed.engine(svc).unwrap();
        let engine = engine.lock();
        let names = engine.database(db).unwrap().table_names();
        assert!(
            names.iter().all(|n| !n.starts_with("part_")),
            "leftover temporaries in {db}: {names:?}"
        );
    }
}

#[test]
fn three_way_cross_database_join() {
    let mut fed = paper_federation();
    fed.execute("USE continental delta avis").unwrap();
    let rs = fed
        .execute(
            "SELECT a.flnu, b.fnu, c.code
             FROM continental.flights a, delta.flight b, avis.cars c
             WHERE a.source = b.source AND a.source = 'Houston' AND c.code = 1
             ORDER BY a.flnu, b.fnu",
        )
        .unwrap()
        .into_table()
        .unwrap();
    // continental Houston flights: 1, 2; delta Houston flights: 10, 11.
    assert_eq!(rs.rows.len(), 4);
}

#[test]
fn join_with_empty_partial_result() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    let rs = fed
        .execute(
            "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c
             WHERE f.source = 'Nowhere' AND c.rate < f.rate",
        )
        .unwrap()
        .into_table()
        .unwrap();
    assert!(rs.rows.is_empty());
}
