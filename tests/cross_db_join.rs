//! Cross-database joins: decomposition into largest local subqueries, a
//! coordinator collecting partial results, and the modified global query Q'
//! (paper §4.3's decomposition phase + §4.1's "partial results are collected
//! in one database, acting as the coordinator").

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;

#[test]
fn join_flights_with_cars_across_databases() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    // Which available cars are cheaper per day than each Houston→San Antonio
    // flight? (A nonsensical but join-shaped business question.)
    let rs = fed
        .execute(
            "SELECT f.flnu, c.code
             FROM continental.flights f, avis.cars c
             WHERE f.source = 'Houston' AND f.destination = 'San Antonio'
               AND c.carst = 'available' AND c.rate < f.rate
             ORDER BY f.flnu, c.code",
        )
        .unwrap()
        .into_table()
        .unwrap();
    // flight 1 (rate 100) vs available cars 1 (39.5) and 3 (25.0).
    assert_eq!(rs.columns.len(), 2);
    assert_eq!(rs.columns[0].name, "flnu");
    assert_eq!(rs.columns[1].name, "code");
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(1)]);
    assert_eq!(rs.rows[1], vec![Value::Int(1), Value::Int(3)]);
}

#[test]
fn local_predicates_are_pushed_down() {
    // Verify pushdown operationally: byte traffic with a selective local
    // predicate must be lower than without it, because the partial result
    // shipped to the coordinator is smaller.
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    let net = fed.network().clone();

    net.reset_stats();
    fed.execute(
        "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c
         WHERE c.rate < f.rate",
    )
    .unwrap();
    let unfiltered = net.stats().bytes;

    net.reset_stats();
    fed.execute(
        "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c
         WHERE f.flnu = 1 AND c.code = 1 AND c.rate < f.rate",
    )
    .unwrap();
    let filtered = net.stats().bytes;

    assert!(
        filtered < unfiltered,
        "pushdown should shrink shipped partials: {filtered} >= {unfiltered}"
    );
}

#[test]
fn aggregates_evaluate_at_the_coordinator() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    let rs = fed
        .execute(
            "SELECT COUNT(*) AS pairs FROM continental.flights f, avis.cars c
             WHERE c.rate < f.rate",
        )
        .unwrap()
        .into_table()
        .unwrap();
    // 3 flights × 3 cars, count pairs where car rate < flight rate:
    // rates: flights 100/80/60; cars 39.5/59/25.
    // All three cars are cheaper than every flight: 3 × 3 = 9.
    assert_eq!(rs.rows[0][0], Value::Int(9));
}

#[test]
fn temporaries_are_cleaned_up_at_the_coordinator() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    fed.execute(
        "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c WHERE c.rate < f.rate",
    )
    .unwrap();
    // No part_* table remains in either database.
    for (svc, db) in [("svc_continental", "continental"), ("svc_avis", "avis")] {
        let engine = fed.engine(svc).unwrap();
        let engine = engine.lock();
        let names = engine.database(db).unwrap().table_names();
        assert!(
            names.iter().all(|n| !n.starts_with("part_")),
            "leftover temporaries in {db}: {names:?}"
        );
    }
}

#[test]
fn three_way_cross_database_join() {
    let mut fed = paper_federation();
    fed.execute("USE continental delta avis").unwrap();
    let rs = fed
        .execute(
            "SELECT a.flnu, b.fnu, c.code
             FROM continental.flights a, delta.flight b, avis.cars c
             WHERE a.source = b.source AND a.source = 'Houston' AND c.code = 1
             ORDER BY a.flnu, b.fnu",
        )
        .unwrap()
        .into_table()
        .unwrap();
    // continental Houston flights: 1, 2; delta Houston flights: 10, 11.
    assert_eq!(rs.rows.len(), 4);
}

/// A selective cross-db equi-join: only Houston flights share a source with
/// delta, so shipping continental's distinct join keys first lets delta
/// filter most of its rows before they cross the wire.
const EQUI_JOIN: &str = "SELECT f.flnu, g.fnu
     FROM continental.flights f, delta.flight g
     WHERE f.source = g.source AND f.destination = g.dest
     ORDER BY f.flnu, g.fnu";

#[test]
fn semijoin_reduces_shipped_bytes() {
    // `lam.bytes` counts the partial-result payloads shipped back from the
    // sites — the volume the semi-join reduction attacks.
    let run = |semijoin: bool| {
        let mut fed = paper_federation();
        fed.semijoin = semijoin;
        fed.execute("USE continental delta").unwrap();
        let rs = fed.execute(EQUI_JOIN).unwrap().into_table().unwrap();
        let shipped: u64 = fed
            .metrics()
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("lam.bytes{"))
            .map(|(_, v)| *v)
            .sum();
        (rs, shipped)
    };
    let (with, bytes_with) = run(true);
    let (without, bytes_without) = run(false);
    assert_eq!(with.rows, without.rows, "reduction must not change the result");
    assert!(
        bytes_with < bytes_without,
        "semijoin should ship fewer partial bytes: {bytes_with} >= {bytes_without}"
    );
}

#[test]
fn semijoin_on_and_off_agree_across_queries() {
    for query in [
        EQUI_JOIN,
        // Residual non-equi predicate on top of the equi key.
        "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c
         WHERE f.flnu = c.code AND c.rate < f.rate ORDER BY f.flnu",
        // No equi keys at all: semijoin has nothing to do.
        "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c
         WHERE c.rate < f.rate ORDER BY f.flnu, c.code",
        // Three sites, one equi edge.
        "SELECT a.flnu, b.fnu, c.code
         FROM continental.flights a, delta.flight b, avis.cars c
         WHERE a.source = b.source AND c.code = 1 ORDER BY a.flnu, b.fnu",
    ] {
        let run = |semijoin: bool| {
            let mut fed = paper_federation();
            fed.semijoin = semijoin;
            fed.execute("USE continental delta avis").unwrap();
            fed.execute(query).unwrap().into_table().unwrap()
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.rows, off.rows, "semijoin changed the result of {query}");
    }
}

#[test]
fn tiny_key_cap_falls_back_to_full_shipping() {
    let mut fed = paper_federation();
    fed.semijoin_cap = 0; // every key set exceeds the cap
    fed.execute("USE continental delta").unwrap();
    let reduced = {
        let mut f2 = paper_federation();
        f2.execute("USE continental delta").unwrap();
        f2.execute(EQUI_JOIN).unwrap().into_table().unwrap()
    };
    let rs = fed.execute(EQUI_JOIN).unwrap().into_table().unwrap();
    assert_eq!(rs.rows, reduced.rows, "capped fallback must match the reduced result");
}

#[test]
fn explain_reports_join_strategy_and_bytes_saved() {
    let mut fed = paper_federation();
    fed.parallel = false; // deterministic trace
    fed.execute("USE continental delta").unwrap();
    let report = fed.execute(&format!("EXPLAIN {EQUI_JOIN}")).unwrap().into_explain().unwrap();
    let join = report.join.as_ref().expect("cross-db EXPLAIN carries a join summary");
    assert_eq!(join.strategy, "semijoin+hash");
    assert!(join.keys_shipped > 0, "{join:?}");
    assert!(join.bytes_saved > 0, "{join:?}");
    let text = report.render();
    assert!(text.contains("join strategy: semijoin+hash"), "{text}");
    assert!(text.contains("bytes saved by semijoin:"), "{text}");
}

#[test]
fn parallel_and_serial_dispatch_agree() {
    let run = |parallel: bool| {
        let mut fed = paper_federation();
        fed.parallel = parallel;
        fed.execute("USE continental delta avis").unwrap();
        fed.execute(
            "SELECT a.flnu, b.fnu, c.code
             FROM continental.flights a, delta.flight b, avis.cars c
             WHERE a.source = b.source AND c.code = 1 ORDER BY a.flnu, b.fnu",
        )
        .unwrap()
        .into_table()
        .unwrap()
    };
    assert_eq!(run(true).rows, run(false).rows);
}

#[test]
fn join_with_empty_partial_result() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    let rs = fed
        .execute(
            "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c
             WHERE f.source = 'Nowhere' AND c.rate < f.rate",
        )
        .unwrap()
        .into_table()
        .unwrap();
    assert!(rs.rows.is_empty());
}
