//! Experiment D1 — the §4.3 DOL program (golden test).
//!
//! The paper shows the DOL program generated for the §3.2 vital update. We
//! regenerate it through the full translator pipeline and compare the
//! structure: OPENs, task modes, the status condition, commit/abort
//! branches, return codes, CLOSE. (Aliases differ cosmetically: the paper
//! abbreviates `cont`/`unit`; our generator uses the scope keys, and opens
//! each branch with `DECIDE n` — the durable-decision hook the recovery log
//! records before any COMMIT/ABORT is sent.)

use catalog::GlobalDataDictionary;
use mdbs::scope::SessionScope;
use mdbs::translate::{self, DbRoute, Translated};
use msql_lang::{parse_statement, Statement};
use std::collections::HashMap;

fn paper_gdd() -> GlobalDataDictionary {
    use catalog::{GddColumn, GddTable};
    use msql_lang::TypeName;
    let mut g = GlobalDataDictionary::new();
    let t = |name: &str, cols: &[&str]| {
        GddTable::new(name, cols.iter().map(|c| GddColumn::new(*c, TypeName::Char(0))).collect())
    };
    g.register_database("continental", "svc1").unwrap();
    g.put_table(
        "continental",
        t("flights", &["flnu", "source", "dep", "destination", "arr", "day", "rate"]),
    )
    .unwrap();
    g.register_database("delta", "svc2").unwrap();
    g.put_table("delta", t("flight", &["fnu", "source", "dest", "dep", "arr", "day", "rate"]))
        .unwrap();
    g.register_database("united", "svc3").unwrap();
    g.put_table("united", t("flight", &["fn", "sour", "dest", "depa", "arri", "day", "rates"]))
        .unwrap();
    g
}

fn routes() -> HashMap<String, DbRoute> {
    [("continental", "site1"), ("delta", "site2"), ("united", "site3")]
        .iter()
        .map(|(db, site)| {
            (
                db.to_string(),
                DbRoute { database: db.to_string(), site: site.to_string(), supports_2pc: true },
            )
        })
        .collect()
}

#[test]
fn generates_the_papers_program() {
    let stmt = parse_statement(
        "USE continental VITAL delta united VITAL
         UPDATE flight%
         SET rate% = rate% * 1.1
         WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
    )
    .unwrap();
    let Statement::Query(q) = stmt else { panic!() };
    let mut scope = SessionScope::new();
    scope.apply_use(q.use_clause.as_ref().unwrap()).unwrap();
    let gdd = paper_gdd();
    let Translated::PerDb(locals) = translate::translate_body(&q.body, &scope, &gdd).unwrap()
    else {
        panic!("expected per-db expansion")
    };
    let plan = translate::update_plan(&locals, &HashMap::new(), &routes()).unwrap();
    let text = dol::print_program(&plan.program);

    // The golden structure from the paper's listing.
    let expected = "\
DOLBEGIN
  OPEN continental AT site1 AS continental;
  OPEN delta AT site2 AS delta;
  OPEN united AT site3 AS united;
  TASK T1 NOCOMMIT FOR continental
  { UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' AND destination = 'San Antonio' }
  ENDTASK;
  TASK T2 FOR delta
  { UPDATE flight SET rate = rate * 1.1 WHERE source = 'Houston' AND dest = 'San Antonio' }
  ENDTASK;
  TASK T3 NOCOMMIT FOR united
  { UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston' AND dest = 'San Antonio' }
  ENDTASK;
  IF (T1=P) AND (T3=P) THEN
  BEGIN
    DECIDE 0;
    COMMIT T1, T3;
    DOLSTATUS=0;
  END;
  ELSE
  BEGIN
    DECIDE 1;
    ABORT T1, T3;
    DOLSTATUS=1;
  END;
  CLOSE continental delta united;
DOLEND
";
    assert_eq!(text, expected);
}

#[test]
fn generated_program_reparses_and_roundtrips() {
    let stmt = parse_statement(
        "USE continental VITAL delta united VITAL
         UPDATE flight% SET rate% = rate% * 1.1
         WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
    )
    .unwrap();
    let Statement::Query(q) = stmt else { panic!() };
    let mut scope = SessionScope::new();
    scope.apply_use(q.use_clause.as_ref().unwrap()).unwrap();
    let Translated::PerDb(locals) =
        translate::translate_body(&q.body, &scope, &paper_gdd()).unwrap()
    else {
        panic!()
    };
    let plan = translate::update_plan(&locals, &HashMap::new(), &routes()).unwrap();
    let text = dol::print_program(&plan.program);
    let reparsed = dol::parse_program(&text).unwrap();
    assert_eq!(reparsed, plan.program);
}
