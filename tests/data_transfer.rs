//! Inter-database data transfer — `INSERT INTO <db>.<table> SELECT ...`
//! over other databases, one of the MSQL capabilities §2 enumerates
//! ("data transfer between databases").

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;

#[test]
fn transfer_single_source_database() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    // Create a catalogue table at avis and fill it from continental.
    fed.execute("CREATE TABLE avis.fares (flnu INT, rate FLOAT)").unwrap();
    let report = fed
        .execute(
            "INSERT INTO avis.fares (flnu, rate)
             SELECT flnu, rate FROM continental.flights WHERE source = 'Houston'",
        )
        .unwrap()
        .into_update()
        .unwrap();
    assert!(report.success);
    assert_eq!(report.outcomes[0].affected, 2);

    // The rows are physically at avis now.
    let engine = fed.engine("svc_avis").unwrap();
    let mut engine = engine.lock();
    let rs = engine
        .execute("avis", "SELECT flnu, rate FROM fares ORDER BY flnu")
        .unwrap()
        .into_result_set()
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Float(100.0)]);
    assert_eq!(rs.rows[1], vec![Value::Int(2), Value::Float(80.0)]);
}

#[test]
fn transfer_from_cross_database_join() {
    let mut fed = paper_federation();
    fed.execute("USE continental delta national").unwrap();
    fed.execute("CREATE TABLE national.pairs (a INT, b INT)").unwrap();
    let report = fed
        .execute(
            "INSERT INTO national.pairs (a, b)
             SELECT f.flnu, g.fnu FROM continental.flights f, delta.flight g
             WHERE f.source = g.source",
        )
        .unwrap()
        .into_update()
        .unwrap();
    assert!(report.success);
    // continental Houston flights 1,2 × delta Houston flights 10,11 → 4 pairs.
    assert_eq!(report.outcomes[0].affected, 4);
}

#[test]
fn local_insert_select_still_uses_the_ordinary_path() {
    let mut fed = paper_federation();
    fed.execute("USE avis").unwrap();
    fed.execute("CREATE TABLE avis.archive (code INT, rate FLOAT)").unwrap();
    // Target and source are the same database: no transfer machinery.
    let report = fed
        .execute(
            "INSERT INTO avis.archive (code, rate)
             SELECT code, rate FROM cars WHERE carst = 'rented'",
        )
        .unwrap()
        .into_update()
        .unwrap();
    assert!(report.success);
    assert_eq!(report.outcomes[0].affected, 1);
}

#[test]
fn transfer_preserves_nulls_and_strings() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    fed.execute("CREATE TABLE avis.seatcopy (seatnu INT, clientname CHAR(20))").unwrap();
    fed.execute(
        "INSERT INTO avis.seatcopy (seatnu, clientname)
         SELECT seatnu, clientname FROM continental.f838",
    )
    .unwrap();
    let engine = fed.engine("svc_avis").unwrap();
    let mut engine = engine.lock();
    let rs = engine
        .execute("avis", "SELECT seatnu, clientname FROM seatcopy ORDER BY seatnu")
        .unwrap()
        .into_result_set()
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0][1], Value::Str("kim".into()));
    assert_eq!(rs.rows[1][1], Value::Null);
}

#[test]
fn transfer_of_empty_result_is_a_successful_noop() {
    let mut fed = paper_federation();
    fed.execute("USE continental avis").unwrap();
    fed.execute("CREATE TABLE avis.fares (flnu INT, rate FLOAT)").unwrap();
    let report = fed
        .execute(
            "INSERT INTO avis.fares (flnu, rate)
             SELECT flnu, rate FROM continental.flights WHERE source = 'Nowhere'",
        )
        .unwrap()
        .into_update()
        .unwrap();
    assert!(report.success);
    assert_eq!(report.outcomes[0].affected, 0);
}

#[test]
fn unknown_target_database_is_rejected() {
    let mut fed = paper_federation();
    fed.execute("USE continental").unwrap();
    let err = fed.execute("INSERT INTO hertz.fares SELECT flnu, rate FROM continental.flights");
    assert!(matches!(err, Err(mdbs::MdbsError::NotInScope(_))), "{err:?}");
}
