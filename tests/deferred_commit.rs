//! §3.2.2 synchronization points: global transactions spanning several MSQL
//! statements in deferred-commit mode.
//!
//! "The evaluation plan will contain synchronization points whenever
//! explicit commit or rollback operations are issued, the current query
//! scope is changed, or the last MSQL statement is terminated."

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;
use mdbs::{Federation, MsqlOutcome};

fn rate(fed: &Federation, service: &str, db: &str, sql: &str) -> Value {
    let engine = fed.engine(service).unwrap();
    let mut engine = engine.lock();
    engine.execute(db, sql).unwrap().into_result_set().unwrap().rows[0][0].clone()
}

#[test]
fn two_statements_commit_together_at_commit() {
    let mut fed = paper_federation();
    fed.set_deferred_commit(true);
    fed.execute("USE continental VITAL").unwrap();
    let interim = fed
        .execute("UPDATE flights SET rate = rate * 2 WHERE flnu = 1")
        .unwrap()
        .into_update()
        .unwrap();
    assert!(interim.success);
    assert_eq!(interim.outcomes[0].status, dol::TaskStatus::Prepared);
    assert_eq!(fed.pending_vital_subqueries(), 1);

    fed.execute("UPDATE flights SET rate = rate + 1 WHERE flnu = 2").unwrap();
    // Still one member: both statements joined continental's open local
    // transaction.
    assert_eq!(fed.pending_vital_subqueries(), 1);

    // Nothing visible through an independent reader yet? Our engines allow
    // dirty reads (the paper relaxes isolation), but durably the changes are
    // only decided at the sync point.
    let report = fed.execute("COMMIT").unwrap().into_update().unwrap();
    assert!(report.success);
    assert_eq!(report.outcomes.len(), 1);
    assert_eq!(report.outcomes[0].status, dol::TaskStatus::Committed);
    assert_eq!(report.outcomes[0].affected, 2);
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(200.0)
    );
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 2"),
        Value::Float(81.0)
    );
}

#[test]
fn rollback_undoes_all_statements_since_the_last_sync_point() {
    let mut fed = paper_federation();
    fed.set_deferred_commit(true);
    fed.execute("USE continental VITAL united VITAL").unwrap();
    fed.execute("UPDATE flight% SET rate% = 0 WHERE sour% = 'Houston'").unwrap();
    fed.execute("UPDATE f838 SET seatstatus = 'GONE'").unwrap();
    assert_eq!(fed.pending_vital_subqueries(), 2); // one member per database

    let report = fed.execute("ROLLBACK").unwrap().into_update().unwrap();
    assert!(!report.success);
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(100.0)
    );
    assert_eq!(
        rate(&fed, "svc_united", "united", "SELECT rates FROM flight WHERE fn = 20"),
        Value::Float(110.0)
    );
    assert_eq!(
        rate(
            &fed,
            "svc_continental",
            "continental",
            "SELECT seatstatus FROM f838 WHERE seatnu = 1"
        ),
        Value::Str("TAKEN".into())
    );
}

#[test]
fn failed_statement_poisons_the_global_transaction() {
    let mut fed = paper_federation();
    fed.set_deferred_commit(true);
    fed.execute("USE continental VITAL").unwrap();
    fed.execute("UPDATE flights SET rate = rate * 2 WHERE flnu = 1").unwrap();

    // Arm a failure; the next vital statement aborts locally.
    fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("f838");
    let interim = fed.execute("UPDATE f838 SET seatstatus = 'X'").unwrap().into_update().unwrap();
    assert!(!interim.success);

    // COMMIT now must roll everything back (§3.2.2: otherwise-branch).
    let report = fed.execute("COMMIT").unwrap().into_update().unwrap();
    assert!(!report.success);
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(100.0)
    );
}

#[test]
fn scope_change_is_a_synchronization_point() {
    let mut fed = paper_federation();
    fed.set_deferred_commit(true);
    fed.execute("USE continental VITAL").unwrap();
    fed.execute("UPDATE flights SET rate = rate * 2 WHERE flnu = 1").unwrap();
    assert_eq!(fed.pending_vital_subqueries(), 1);

    // Changing the scope resolves the pending work (commit, all prepared).
    let out = fed.execute("USE avis").unwrap();
    let MsqlOutcome::Update(report) = out else { panic!("{out:?}") };
    assert!(report.success);
    assert_eq!(fed.pending_vital_subqueries(), 0);
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(200.0)
    );
}

#[test]
fn disabling_deferred_mode_is_a_synchronization_point() {
    let mut fed = paper_federation();
    fed.set_deferred_commit(true);
    fed.execute("USE continental VITAL").unwrap();
    fed.execute("UPDATE flights SET rate = rate * 2 WHERE flnu = 1").unwrap();
    let report = fed.set_deferred_commit(false).unwrap();
    assert!(report.success);
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(200.0)
    );
}

#[test]
fn session_end_rolls_back_pending_work() {
    // Dropping a federation with held vital work must not hang or panic;
    // the rollback-on-drop state restoration itself is unit-tested in
    // mdbs::gtxn (the LAM threads die with the federation, so it cannot be
    // re-read from here).
    let mut fed = paper_federation();
    fed.set_deferred_commit(true);
    fed.execute("USE continental VITAL").unwrap();
    fed.execute("UPDATE flights SET rate = 1 WHERE flnu = 1").unwrap();
    assert_eq!(fed.pending_vital_subqueries(), 1);
    drop(fed);
}

#[test]
fn non_vital_statements_autocommit_even_in_deferred_mode() {
    let mut fed = paper_federation();
    fed.set_deferred_commit(true);
    fed.execute("USE continental delta").unwrap(); // both NON VITAL
    let report = fed
        .execute("UPDATE flight% SET rate% = rate% + 1 WHERE sour% = 'Houston'")
        .unwrap()
        .into_update()
        .unwrap();
    assert!(report.success);
    assert_eq!(fed.pending_vital_subqueries(), 0);
    for o in &report.outcomes {
        assert_eq!(o.status, dol::TaskStatus::Committed);
    }
    assert_eq!(
        rate(&fed, "svc_delta", "delta", "SELECT rate FROM flight WHERE fnu = 10"),
        Value::Float(96.0)
    );
}
