//! Executing raw DOL programs against a live federation
//! (`Federation::execute_dol`) — DOL as the user-visible intermediate
//! language (paper §4.1: "DOL may serve as an intermediate language").

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;

#[test]
fn hand_written_paper_program_runs() {
    let mut fed = paper_federation();
    // The §4.3 program, hand-written (with real SQL in the task bodies).
    let out = fed
        .execute_dol(
            "DOLBEGIN
             OPEN continental AT site1 AS cont;
             OPEN delta AT site2 AS delta;
             OPEN united AT site3 AS unit;
             TASK T1 NOCOMMIT FOR cont
             { UPDATE flights SET rate = rate * 1.1
               WHERE source = 'Houston' AND destination = 'San Antonio' }
             ENDTASK;
             TASK T2 FOR delta
             { UPDATE flight SET rate = rate * 1.1
               WHERE source = 'Houston' AND dest = 'San Antonio' }
             ENDTASK;
             TASK T3 NOCOMMIT FOR unit
             { UPDATE flight SET rates = rates * 1.1
               WHERE sour = 'Houston' AND dest = 'San Antonio' }
             ENDTASK;
             IF (T1=P) AND (T3=P) THEN
             BEGIN
               COMMIT T1, T3;
               DOLSTATUS=0;
             END;
             ELSE
             BEGIN
               ABORT T1, T3;
               DOLSTATUS=1;
             END;
             CLOSE cont delta unit;
             DOLEND",
        )
        .unwrap();
    assert_eq!(out.dolstatus, 0);
    assert_eq!(out.status("T1"), Some(dol::TaskStatus::Committed));
    assert_eq!(out.status("T2"), Some(dol::TaskStatus::Committed));
    assert_eq!(out.status("T3"), Some(dol::TaskStatus::Committed));

    let engine = fed.engine("svc_continental").unwrap();
    let mut engine = engine.lock();
    let rate = engine
        .execute("continental", "SELECT rate FROM flights WHERE flnu = 1")
        .unwrap()
        .into_result_set()
        .unwrap()
        .rows[0][0]
        .clone();
    assert_eq!(rate, Value::Float(100.0 * 1.1));
}

#[test]
fn dol_retrieval_returns_serialized_partials() {
    let mut fed = paper_federation();
    let out = fed
        .execute_dol(
            "DOLBEGIN
             OPEN avis AT site4 AS a;
             TASK Q1 FOR a { SELECT code, rate FROM cars WHERE carst = 'available' } ENDTASK;
             DOLSTATUS=0;
             CLOSE a;
             DOLEND",
        )
        .unwrap();
    let raw = out.task_results.get("Q1").expect("partial result");
    let (_affected, payload) = mdbs::lamclient::decode_task_result(raw).unwrap();
    let rs = mdbs::wire::decode_result_set(&payload.unwrap()).unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.columns[0].name, "code");
}

#[test]
fn dol_program_with_failing_vital_takes_else_branch() {
    let mut fed = paper_federation();
    fed.engine("svc_united").unwrap().lock().failure_policy_mut().fail_writes_to("flight");
    let out = fed
        .execute_dol(
            "DOLBEGIN
             OPEN continental AT site1 AS cont;
             OPEN united AT site3 AS unit;
             TASK T1 NOCOMMIT FOR cont { UPDATE flights SET rate = 0 } ENDTASK;
             TASK T3 NOCOMMIT FOR unit { UPDATE flight SET rates = 0 } ENDTASK;
             IF (T1=P) AND (T3=P) THEN
             BEGIN COMMIT T1, T3; DOLSTATUS=0; END;
             ELSE
             BEGIN ABORT T1, T3; DOLSTATUS=1; END;
             CLOSE cont unit;
             DOLEND",
        )
        .unwrap();
    assert_eq!(out.dolstatus, 1);
    assert_eq!(out.status("T1"), Some(dol::TaskStatus::Aborted));
    assert_eq!(out.status("T3"), Some(dol::TaskStatus::Aborted));
}

#[test]
fn dol_compensation_statement_works_end_to_end() {
    let mut fed = paper_federation();
    let out = fed
        .execute_dol(
            "DOLBEGIN
             OPEN avis AT site4 AS a;
             TASK T1 FOR a
             { UPDATE cars SET rate = rate * 2 WHERE code = 1 }
             COMP
             { UPDATE cars SET rate = rate / 2 WHERE code = 1 }
             ENDTASK;
             IF (T1=C) THEN COMPENSATE T1;
             DOLSTATUS=0;
             CLOSE a;
             DOLEND",
        )
        .unwrap();
    assert_eq!(out.status("T1"), Some(dol::TaskStatus::Compensated));
    let engine = fed.engine("svc_avis").unwrap();
    let mut engine = engine.lock();
    let rate = engine
        .execute("avis", "SELECT rate FROM cars WHERE code = 1")
        .unwrap()
        .into_result_set()
        .unwrap()
        .rows[0][0]
        .clone();
    assert_eq!(rate, Value::Float(39.5));
}

#[test]
fn open_to_wrong_site_fails_cleanly() {
    let mut fed = paper_federation();
    fed.timeout = std::time::Duration::from_millis(200);
    let err = fed.execute_dol(
        "DOLBEGIN
         OPEN avis AT nonexistent_site AS a;
         DOLEND",
    );
    assert!(matches!(err, Err(mdbs::MdbsError::Dol(_))), "{err:?}");
}

#[test]
fn parse_error_is_reported_with_line() {
    let mut fed = paper_federation();
    let err = fed.execute_dol("DOLBEGIN\nOPEN oops\nDOLEND");
    let Err(mdbs::MdbsError::Dol(msg)) = err else { panic!("{err:?}") };
    assert!(msg.contains("line"), "{msg}");
}
