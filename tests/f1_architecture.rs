//! Experiment F1 — Figure 1, the system components.
//!
//! Translator → DOL engine → LAMs → heterogeneous local DBMSs, all talking
//! over the (simulated) network. This test drives one query through every
//! component and checks each box in the figure did its job: the translator
//! produced DOL, the engine coordinated the LAMs over real network messages,
//! the LAMs executed local SQL on engines with *different* capability
//! profiles, and partial results flowed back.

use mdbs::fixtures::paper_federation;

#[test]
fn one_query_exercises_every_component_of_figure_1() {
    let mut fed = paper_federation();
    let net = fed.network().clone();
    net.reset_stats();

    let mt = fed
        .execute(
            "USE continental delta united
             SELECT day, ~rate% FROM flight% WHERE sour% = 'Houston'",
        )
        .unwrap()
        .into_multitable()
        .unwrap();

    // Three heterogeneous databases produced partial results.
    assert_eq!(mt.tables.len(), 3);
    assert!(mt.table("continental").is_some());
    assert!(mt.table("delta").is_some());
    assert!(mt.table("united").is_some());

    // The components really communicated over the network: each LAM saw at
    // least one request and sent one reply.
    let stats = net.stats();
    for site in ["site1", "site2", "site3"] {
        let to_lam: u64 =
            stats.per_link.iter().filter(|((_, to), _)| to == site).map(|(_, n)| *n).sum();
        let from_lam: u64 =
            stats.per_link.iter().filter(|((from, _), _)| from == site).map(|(_, n)| *n).sum();
        assert!(to_lam >= 1, "no request reached {site}");
        assert!(from_lam >= 1, "no reply left {site}");
    }
}

#[test]
fn services_with_different_profiles_coexist_in_one_query() {
    // continental = oracle-like, delta = ingres-like: both 2PC but with
    // different DDL semantics; the AD records the difference and the same
    // multiple query spans both.
    let fed = paper_federation();
    let ad = fed.ad();
    let cont = ad.service("svc_continental").unwrap();
    let delta = ad.service("svc_delta").unwrap();
    assert_ne!(cont.create_capability(), delta.create_capability());
    assert!(cont.supports_2pc() && delta.supports_2pc());
}

#[test]
fn return_codes_flow_back_to_the_translator() {
    // "The translator receives back DOL return codes ... used as MSQL
    // return codes."
    let mut fed = paper_federation();
    let ok = fed
        .execute(
            "USE continental VITAL
             UPDATE flights SET rate = rate WHERE flnu = 1",
        )
        .unwrap()
        .into_update()
        .unwrap();
    assert_eq!(ok.return_code, mdbs::retcode::SUCCESS);

    fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("flights");
    let bad = fed
        .execute(
            "USE continental VITAL
             UPDATE flights SET rate = rate WHERE flnu = 1",
        )
        .unwrap()
        .into_update()
        .unwrap();
    assert_eq!(bad.return_code, mdbs::retcode::ABORTED);
    assert!(mdbs::retcode::describe(bad.return_code, false).contains("aborted"));
}

#[test]
fn unreachable_service_fails_the_plan_at_open() {
    // The DOL plan begins with OPEN statements; a service whose site is gone
    // fails the connection and the plan aborts before any task runs — no
    // partial multidatabase state is created.
    let mut fed = paper_federation();
    fed.timeout = std::time::Duration::from_millis(300);
    fed.network().deregister("site3"); // united disappears

    let err = fed.execute(
        "USE continental VITAL delta united VITAL
         UPDATE flight% SET rate% = rate% * 2 WHERE sour% = 'Houston'",
    );
    assert!(matches!(err, Err(mdbs::MdbsError::Dol(_))), "{err:?}");

    // continental was never touched.
    let engine = fed.engine("svc_continental").unwrap();
    let mut engine = engine.lock();
    let rate = engine
        .execute("continental", "SELECT rate FROM flights WHERE flnu = 1")
        .unwrap()
        .into_result_set()
        .unwrap()
        .rows[0][0]
        .clone();
    assert_eq!(rate, ldbs::value::Value::Float(100.0));
}
