//! Experiment F2 — Figure 2, the schema architecture.
//!
//! Local Conceptual Schemas → (INCORPORATE) Auxiliary Directory and
//! (IMPORT) Global Data Dictionary. The federation is built statement by
//! statement, exactly the way an administrator would.

use ldbs::profile::DbmsProfile;
use ldbs::Engine;
use mdbs::Federation;
use msql_lang::CommitCapability;

fn engine_with_cars() -> Engine {
    let mut e = Engine::new("svc", DbmsProfile::ingres_like());
    e.create_database("avis").unwrap();
    e.execute("avis", "CREATE TABLE cars (code INT, cartype CHAR(16), rate FLOAT, carst CHAR(10))")
        .unwrap();
    e.execute("avis", "CREATE TABLE internal_audit (x INT)").unwrap();
    // Hide the audit table from the multidatabase level.
    e.database_mut("avis").unwrap().table_mut("internal_audit").unwrap().schema.public = false;
    e
}

#[test]
fn incorporate_then_import_builds_the_dictionaries() {
    let mut fed = Federation::new();
    fed.add_service("ingres1", "site1", engine_with_cars()).unwrap();

    // INCORPORATE refines the AD entry (the paper's statement form).
    fed.execute(
        "INCORPORATE SERVICE ingres1 SITE site1
         CONNECTMODE CONNECT
         COMMITMODE NOCOMMIT
         CREATE NOCOMMIT",
    )
    .unwrap();
    let ad = fed.ad();
    let entry = ad.service("ingres1").unwrap();
    assert!(entry.supports_2pc());
    assert_eq!(entry.create_capability(), CommitCapability::TwoPhase);
    drop(ad);

    // IMPORT pulls the public Local Conceptual Schema into the GDD.
    fed.execute("IMPORT DATABASE avis FROM SERVICE ingres1").unwrap();
    assert!(fed.gdd().has_database("avis"));
    let gdd = fed.gdd();
    let cars = gdd.table("avis", "cars").unwrap();
    assert_eq!(cars.columns.len(), 4);
    // Non-public tables are not exported.
    assert!(fed.gdd().table("avis", "internal_audit").is_err());
}

#[test]
fn partial_import_restricts_the_exported_definition() {
    let mut fed = Federation::new();
    fed.add_service("ingres1", "site1", engine_with_cars()).unwrap();
    fed.execute("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars COLUMN (code, rate)")
        .unwrap();
    {
        let gdd = fed.gdd();
        let cars = gdd.table("avis", "cars").unwrap();
        assert_eq!(cars.columns.len(), 2);
    }

    // Queries only see the imported columns: cartype is invisible, so a
    // query over it is not pertinent.
    fed.execute("USE avis").unwrap();
    let err = fed.execute("SELECT cartype FROM cars");
    assert!(matches!(err, Err(mdbs::MdbsError::NotPertinent(_))), "{err:?}");
    // But the imported columns work.
    let mt = fed.execute("SELECT code, rate FROM cars").unwrap().into_multitable().unwrap();
    assert_eq!(mt.tables.len(), 1);
}

#[test]
fn reimport_replaces_the_definition() {
    let mut fed = Federation::new();
    fed.add_service("ingres1", "site1", engine_with_cars()).unwrap();
    fed.execute("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars COLUMN (code)").unwrap();
    assert_eq!(fed.gdd().table("avis", "cars").unwrap().columns.len(), 1);
    fed.execute("IMPORT DATABASE avis FROM SERVICE ingres1 TABLE cars").unwrap();
    assert_eq!(fed.gdd().table("avis", "cars").unwrap().columns.len(), 4);
}

#[test]
fn import_from_unknown_service_fails() {
    let mut fed = Federation::new();
    let err = fed.execute("IMPORT DATABASE avis FROM SERVICE ghost");
    assert!(matches!(err, Err(mdbs::MdbsError::Catalog(_))), "{err:?}");
}

#[test]
fn ddl_through_the_federation_updates_gdd_and_lcs() {
    let mut fed = Federation::new();
    fed.add_service("ingres1", "site1", engine_with_cars()).unwrap();
    fed.execute("IMPORT DATABASE avis FROM SERVICE ingres1").unwrap();
    fed.execute("USE avis").unwrap();

    fed.execute("CREATE TABLE clients (name CHAR(30), phone CHAR(16))").unwrap();
    // Visible in the GDD...
    assert!(fed.gdd().table("avis", "clients").is_ok());
    // ...and in the local engine.
    let engine = fed.engine("ingres1").unwrap();
    assert!(engine.lock().database("avis").unwrap().table("clients").is_ok());
    drop(engine);

    // Queries can use it right away.
    fed.execute("INSERT INTO clients VALUES ('wenders', '555')").unwrap();
    let mt = fed.execute("SELECT name FROM clients").unwrap().into_multitable().unwrap();
    assert_eq!(mt.tables[0].result.rows.len(), 1);

    fed.execute("DROP TABLE clients").unwrap();
    assert!(fed.gdd().table("avis", "clients").is_err());
}

#[test]
fn database_names_are_unique_across_the_federation() {
    let mut fed = Federation::new();
    fed.add_service("svc_a", "site_a", engine_with_cars()).unwrap();
    fed.add_service("svc_b", "site_b", engine_with_cars()).unwrap();
    fed.execute("IMPORT DATABASE avis FROM SERVICE svc_a").unwrap();
    // Importing the same database name from a different service collides.
    let err = fed.execute("IMPORT DATABASE avis FROM SERVICE svc_b");
    assert!(matches!(err, Err(mdbs::MdbsError::Catalog(_))), "{err:?}");
}
