//! Fault-tolerant LAM communication, end to end.
//!
//! The paper's prototype ran over an unreliable campus network (§4.1); these
//! scenarios re-run the Q1/Q2 experiments with per-link message loss
//! injected into the simulated fabric and assert the retry layer's
//! guarantees:
//!
//! * with a retry policy, lossy links are survived deterministically
//!   (seeded RNG + serial execution = reproducible drop pattern);
//! * without retries, the same lossy links sink the statement;
//! * an unreachable NON VITAL site degrades the statement instead of
//!   failing it when the federation opts in (§3.2);
//! * a lost commit acknowledgement is re-asked and answered from the LAM's
//!   reply cache — reported as committed, executed exactly once.

use dol::TaskStatus;
use ldbs::profile::DbmsProfile;
use ldbs::value::Value;
use mdbs::fixtures::{paper_federation_with, FederationProfiles};
use mdbs::lam::spawn_lam;
use mdbs::lamclient::LamClient;
use mdbs::proto::{Request, Response, TaskMode};
use mdbs::retry::shared_stats;
use mdbs::{CrashPlan, CrashWhen, Federation, MdbsError, RetryPolicy};
use netsim::{FaultKind, Network};
use std::time::{Duration, Instant};

const Q1: &str = "USE avis national
    LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
    SELECT %code, type, ~rate FROM car WHERE status = 'available'";

const Q2: &str = "USE continental VITAL delta united VITAL
    UPDATE flight%
    SET rate% = rate% * 1.1
    WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

/// Drop probability the acceptance scenarios run at.
const DROP_P: f64 = 0.3;

/// Builds the paper federation on a seeded network, then degrades every
/// link touching `sites` (both directions) with probability `p`. Serial
/// execution keeps the seeded drop sequence deterministic; the short
/// timeout keeps lost messages cheap.
fn lossy_federation(seed: u64, sites: &[&str], p: f64) -> Federation {
    let mut fed = paper_federation_with(Network::with_seed(seed), FederationProfiles::default());
    fed.parallel = false;
    fed.timeout = Duration::from_millis(150);
    for site in sites {
        fed.network().set_link_drop_probability("*", site, p);
        fed.network().set_link_drop_probability(site, "*", p);
    }
    fed
}

/// Restores lossless links so LAM shutdown at drop time is not slowed by
/// lost control messages.
fn heal(fed: &Federation, sites: &[&str]) {
    for site in sites {
        fed.network().clear_link_drop_probability("*", site);
        fed.network().clear_link_drop_probability(site, "*");
    }
}

fn rate(fed: &Federation, service: &str, db: &str, sql: &str) -> Value {
    let engine = fed.engine(service).unwrap();
    let mut engine = engine.lock();
    engine.execute(db, sql).unwrap().into_result_set().unwrap().rows[0][0].clone()
}

#[test]
fn q1_succeeds_deterministically_on_lossy_links_with_retries() {
    let sites = ["site4", "site5"];
    let mut fed = lossy_federation(0xA1, &sites, DROP_P);
    fed.retry = RetryPolicy { max_attempts: 5, ..RetryPolicy::retries(5) };

    let mt = fed.execute(Q1).unwrap().into_multitable().unwrap();
    assert_eq!(mt.tables.len(), 2, "both databases answered despite the lossy links");
    assert_eq!(mt.table("avis").unwrap().rows.len(), 2);
    assert_eq!(mt.table("national").unwrap().rows.len(), 2);

    let stats = fed.exec_stats();
    let dropped = fed.network().stats().dropped;
    assert!(dropped > 0, "the drop injection actually fired (dropped = {dropped})");
    assert!(stats.retries > 0, "lost messages were resent: {stats:?}");
    assert!(stats.transient_faults > 0, "drops were classified transient: {stats:?}");
    assert!(stats.recovered > 0, "at least one call recovered via retry: {stats:?}");
    assert_eq!(stats.terminal_faults, 0, "nothing terminal on a merely lossy network");
    heal(&fed, &sites);
}

#[test]
fn q1_fails_on_the_same_lossy_links_without_retries() {
    let sites = ["site4", "site5"];
    let mut fed = lossy_federation(0xA1, &sites, DROP_P);
    // Default policy: single attempt, faults surface immediately.
    assert!(!fed.retry.enabled());

    let complete = match fed.execute(Q1) {
        Ok(out) => out.into_multitable().unwrap().tables.len() == 2,
        Err(_) => false,
    };
    assert!(!complete, "without retries the lossy links must sink the retrieval");
    let stats = fed.exec_stats();
    assert_eq!(stats.retries, 0, "no resends under the single-attempt policy");
    assert!(stats.transient_faults > 0, "the losses were observed: {stats:?}");
    assert!(fed.network().stats().dropped > 0);
    heal(&fed, &sites);
}

#[test]
fn q2_commits_deterministically_on_lossy_links_with_retries() {
    let sites = ["site1", "site2", "site3"];
    let mut fed = lossy_federation(0xB2, &sites, DROP_P);
    fed.retry = RetryPolicy { max_attempts: 5, ..RetryPolicy::retries(5) };

    let report = fed.execute(Q2).unwrap().into_update().unwrap();
    assert!(report.success, "{report:?}");
    assert_eq!(report.return_code, 0);
    for o in &report.outcomes {
        assert_eq!(o.status, TaskStatus::Committed, "{o:?}");
        assert!(o.attempts >= 1, "telemetry shows the LAM was reached: {o:?}");
    }
    // The statement-level report carries this run's accounting.
    assert!(report.stats.attempts >= 3, "{:?}", report.stats);
    let dropped = fed.network().stats().dropped;
    assert!(dropped > 0, "the drop injection actually fired (dropped = {dropped})");
    assert!(report.stats.retries > 0, "{:?}", report.stats);

    heal(&fed, &sites);
    // All three heterogeneous schemas were updated exactly once.
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(100.0 * 1.1)
    );
    assert_eq!(
        rate(&fed, "svc_delta", "delta", "SELECT rate FROM flight WHERE fnu = 10"),
        Value::Float(95.0 * 1.1)
    );
    assert_eq!(
        rate(&fed, "svc_united", "united", "SELECT rates FROM flight WHERE fn = 20"),
        Value::Float(110.0 * 1.1)
    );
}

#[test]
fn q2_fails_on_the_same_lossy_links_without_retries() {
    let sites = ["site1", "site2", "site3"];
    let mut fed = lossy_federation(0xB2, &sites, DROP_P);

    let succeeded = match fed.execute(Q2) {
        Ok(out) => out.into_update().unwrap().success,
        Err(_) => false,
    };
    assert!(!succeeded, "without retries the lossy links must sink the vital update");
    heal(&fed, &sites);
}

#[test]
fn unreachable_nonvital_site_degrades_the_statement_when_tolerated() {
    let mut fed = paper_federation_with(Network::new(), FederationProfiles::default());
    fed.parallel = false;
    fed.timeout = Duration::from_millis(300);
    fed.tolerate_unreachable = true;
    // delta's site vanishes (site2). Its subquery in Q2 is NON VITAL.
    fed.network().deregister("site2");

    let report = fed.execute(Q2).unwrap().into_update().unwrap();
    assert!(report.success, "§3.2: the multiquery succeeds without its NON VITAL member");
    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("continental").status, TaskStatus::Committed);
    assert_eq!(by_key("united").status, TaskStatus::Committed);
    let delta = by_key("delta");
    assert_ne!(delta.status, TaskStatus::Committed, "{delta:?}");
    assert_eq!(delta.attempts, 0, "delta's LAM was never reached");
    assert_eq!(delta.fault, Some(FaultKind::Terminal), "{delta:?}");
    assert!(report.stats.degraded >= 1, "{:?}", report.stats);
    assert!(report.stats.terminal_faults >= 1, "{:?}", report.stats);
    assert!(fed.exec_stats().degraded >= 1, "session stats aggregate the degradation");

    // The vital members really committed; delta kept its old fare.
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(100.0 * 1.1)
    );
    assert_eq!(
        rate(&fed, "svc_delta", "delta", "SELECT rate FROM flight WHERE fnu = 10"),
        Value::Float(95.0)
    );
}

#[test]
fn unreachable_vital_site_still_fails_even_when_tolerated() {
    let mut fed = paper_federation_with(Network::new(), FederationProfiles::default());
    fed.parallel = false;
    fed.timeout = Duration::from_millis(300);
    fed.tolerate_unreachable = true;
    // united's site vanishes (site3). Its subquery in Q2 is VITAL.
    fed.network().deregister("site3");

    let report = fed.execute(Q2).unwrap().into_update().unwrap();
    assert!(!report.success, "a lost VITAL member can never be degraded away (§3.2)");
    // The surviving vital member must not have committed either.
    let continental = report.outcomes.iter().find(|o| o.key == "continental").unwrap();
    assert_ne!(continental.status, TaskStatus::Committed, "{continental:?}");
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(100.0),
        "continental rolled back with its vital partner lost"
    );
}

#[test]
fn lost_commit_ack_is_reasked_and_reports_committed() {
    let net = Network::new();
    let mut engine = ldbs::Engine::new("svc", DbmsProfile::oracle_like());
    engine.create_database("avis").unwrap();
    engine.execute("avis", "CREATE TABLE cars (code INT, rate FLOAT)").unwrap();
    engine.execute("avis", "INSERT INTO cars VALUES (1, 40.0)").unwrap();
    let lam = spawn_lam(&net, "svc", "site1", engine).unwrap();

    let client = LamClient::connect_with(
        &net,
        "site1",
        "avis",
        Duration::from_millis(100),
        RetryPolicy::retries(4),
        shared_stats(),
    )
    .unwrap();
    // 2PC round: execute-and-prepare, then commit.
    let resp = client
        .call(Request::Task {
            name: "T1".into(),
            mode: TaskMode::NoCommit,
            database: "avis".into(),
            commands: vec!["UPDATE cars SET rate = 50 WHERE code = 1".into()],
        })
        .unwrap();
    assert!(matches!(resp, Response::TaskDone { status: 'P', .. }), "{resp:?}");

    // The LAM's next outgoing message — the commit acknowledgement — is
    // lost. The client re-asks under the same correlation id; the LAM
    // replays the cached Ok instead of re-running the commit (which would
    // report `unknown prepared task`).
    net.drop_next("site1", "*", 1);
    let resp = client.call(Request::Commit { task: "T1".into() }).unwrap();
    assert_eq!(resp, Response::Ok, "the re-ask reports the commit");
    let s = client.stats();
    let s = s.lock();
    assert_eq!(s.retries, 1, "exactly one resend: {s:?}");
    assert_eq!(s.recovered, 1, "{s:?}");
    drop(s);

    let committed = {
        let mut e = lam.engine.lock();
        e.execute("avis", "SELECT rate FROM cars WHERE code = 1")
            .unwrap()
            .into_result_set()
            .unwrap()
            .rows[0][0]
            .clone()
    };
    assert_eq!(committed, Value::Float(50.0), "committed exactly once");
}

#[test]
fn injected_drops_are_annotated_on_the_surviving_spans() {
    let sites = ["site4", "site5"];
    let mut fed = lossy_federation(0xA1, &sites, DROP_P);
    fed.retry = RetryPolicy { max_attempts: 5, ..RetryPolicy::retries(5) };

    fed.execute(Q1).unwrap();
    heal(&fed, &sites);

    let note = |n: &obs::SpanNode, key: &str| {
        n.notes.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };

    // Every retry layer fault inside a traced call shows up as a `fault`
    // annotation on an `rpc` span; the owning task span's `faults`/`attempts`
    // notes agree with its rpc children exactly.
    let trace = fed.last_trace().expect("the statement left a trace");
    let mut rpc_faults = 0u64;
    let mut annotated_tasks = 0u64;
    trace.visit(&mut |n| {
        if n.name == "rpc" && note(n, "fault").is_some() {
            assert_eq!(note(n, "fault").as_deref(), Some("transient"), "{n:?}");
            rpc_faults += 1;
        }
        if n.name.starts_with("task:") {
            let rpcs = n.children.iter().filter(|c| c.name == "rpc").count() as u64;
            let failed =
                n.children.iter().filter(|c| c.name == "rpc" && note(c, "fault").is_some()).count()
                    as u64;
            let attempts: u64 = note(n, "attempts").unwrap().parse().unwrap();
            assert_eq!(attempts, rpcs, "one rpc child per attempt: {n:?}");
            let faults: u64 = note(n, "faults").map_or(0, |v| v.parse().unwrap());
            assert_eq!(faults, failed, "the faults note counts the failed attempts: {n:?}");
            if faults > 0 {
                annotated_tasks += 1;
            }
        }
    });
    assert!(rpc_faults > 0, "the loss injection left visible fault annotations");
    assert!(annotated_tasks > 0, "at least one task span carries a fault summary");

    // The retry layer saw at least the traced faults (connection pings are
    // retried too, but outside any task span), and nothing terminal.
    let stats = fed.exec_stats();
    assert!(rpc_faults <= stats.transient_faults, "{rpc_faults} traced vs {stats:?}");
    assert_eq!(stats.terminal_faults, 0, "{stats:?}");

    // Observability and the network fabric agree on what was dropped: the
    // probe-fed `net.dropped` counter matches netsim's own accounting.
    let metrics = fed.metrics();
    let dropped = fed.network().stats().dropped;
    assert!(dropped > 0, "the drop injection actually fired");
    assert_eq!(metrics.counters.get("net.dropped").copied().unwrap_or(0), dropped);
}

const Q3_UPDATE_WITH_COMP: &str = "USE continental VITAL delta united VITAL
    UPDATE flight%
    SET rate% = rate% * 1.1
    WHERE sour% = 'Houston' AND dest% = 'San Antonio'
    COMP continental
    UPDATE flights
    SET rate = rate / 1.1
    WHERE source = 'Houston' AND destination = 'San Antonio'";

/// The Q3 setup whose continental member autocommits (no 2PC): its subquery
/// is settled at the LAM the moment it executes, so a coordinator crash
/// before the decision forces recovery down the §3.3 compensation path.
fn autocommit_continental_federation() -> Federation {
    let mut fed = paper_federation_with(
        Network::with_seed(0xC3),
        FederationProfiles {
            continental: DbmsProfile::autocommit_only(),
            ..FederationProfiles::default()
        },
    );
    fed.parallel = false;
    fed
}

/// Crashes the Q3 coordinator immediately before it logs its decision,
/// recovers on a successor federation sharing the same log, and renders the
/// recovery trace: presumed abort, delta/united rolled back via RESOLVE,
/// autocommitted continental compensated.
fn recovery_trace() -> String {
    // Locate the decision record in a crash-free run of the same scenario.
    let decide_at = {
        let mut fed = autocommit_continental_federation();
        let wal = fed.enable_wal();
        fed.execute(Q3_UPDATE_WITH_COMP).unwrap();
        wal.records()
            .unwrap()
            .iter()
            .position(|r| r.kind().starts_with("decision"))
            .expect("a settle-bearing statement logs a decision")
    };

    let mut fed = autocommit_continental_federation();
    let wal = fed.enable_wal();
    wal.arm_crash(CrashPlan { at: decide_at, when: CrashWhen::Before });
    fed.execute(Q3_UPDATE_WITH_COMP).unwrap_err();
    assert!(wal.crashed(), "the armed crash point fired");

    // The restarted coordinator replays the log against the LAMs, which —
    // being autonomous sites — survived the coordinator's crash.
    let report = fed.recover().unwrap();
    assert_eq!(report.recovered.len(), 1);
    let mtx = &report.recovered[0];
    assert!(mtx.presumed_abort, "no decision record survived the crash");
    assert_eq!(mtx.achieved_state, None);
    // T1 = continental (VITAL, autocommitted → compensated), T2 = delta
    // (NON VITAL, § 3.2: outside the oracle, stays committed), T3 = united
    // (VITAL, prepared → rolled back by RESOLVE).
    assert_eq!(mtx.statuses.get("T1"), Some(&TaskStatus::Compensated), "{mtx:?}");
    assert_eq!(mtx.statuses.get("T2"), Some(&TaskStatus::Committed), "{mtx:?}");
    assert_eq!(mtx.statuses.get("T3"), Some(&TaskStatus::Aborted), "{mtx:?}");
    assert!(mtx.is_consistent());

    // The compensation really undid continental's autocommitted fare bump.
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(100.0 * 1.1 / 1.1)
    );

    fed.last_trace().expect("recovery leaves a trace").render()
}

/// Pins the recovery span tree against `tests/golden/recovery.trace`. Two
/// fresh runs must render byte-identically (logical clock + serial
/// execution); regenerate after an intentional change with
/// `UPDATE_GOLDEN=1 cargo test --test fault_tolerance`.
#[test]
fn recovery_trace_is_golden() {
    let first = recovery_trace();
    let second = recovery_trace();
    assert_eq!(first, second, "recovery trace differs between two identical runs");

    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/recovery.trace");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &first).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden file {path:?} — generate it with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        first, want,
        "golden recovery trace drift — if the change is intended, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test fault_tolerance"
    );
}

#[test]
fn dead_lam_fails_fast_even_with_retries_enabled() {
    let net = Network::new();
    let mut engine = ldbs::Engine::new("svc", DbmsProfile::oracle_like());
    engine.create_database("avis").unwrap();
    let lam = spawn_lam(&net, "svc", "site1", engine).unwrap();
    let client = LamClient::connect_with(
        &net,
        "site1",
        "avis",
        Duration::from_secs(5),
        RetryPolicy::retries(5),
        shared_stats(),
    )
    .unwrap();
    lam.shutdown(); // deregisters the site

    let start = Instant::now();
    let err = client.call(Request::Ping).unwrap_err();
    assert!(
        matches!(err, MdbsError::LamUnavailable { ref site } if site == "site1"),
        "terminal faults are not retried: {err:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(1), "no timeout, no backoff loop");
}
