//! Multitransactions with autocommit-only members (§3.4 last paragraph):
//! "If some of the accessed databases do not support 2PC, compensation must
//! be specified for all subqueries that are executed on those databases."

use ldbs::profile::DbmsProfile;
use ldbs::value::Value;
use mdbs::fixtures::{paper_federation_with, FederationProfiles};
use mdbs::{Federation, MdbsError};
use netsim::Network;

fn federation_with_autocommit_delta() -> Federation {
    paper_federation_with(
        Network::new(),
        FederationProfiles {
            delta: DbmsProfile::autocommit_only(),
            ..FederationProfiles::default()
        },
    )
}

const WITHOUT_COMP: &str = "BEGIN MULTITRANSACTION
    USE continental delta
    LET fltab.snu.sstat BE f838.seatnu.seatstatus f747.snu.sstat
    UPDATE fltab SET sstat = 'TAKEN'
    WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
    COMMIT
      continental
      delta
    END MULTITRANSACTION";

const WITH_COMP: &str = "BEGIN MULTITRANSACTION
    USE continental delta
    LET fltab.snu.sstat BE f838.seatnu.seatstatus f747.snu.sstat
    UPDATE fltab SET sstat = 'TAKEN'
    WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE')
    COMP delta
    UPDATE f747 SET sstat = 'FREE'
    WHERE snu = ( SELECT MIN(snu) FROM f747 WHERE sstat = 'TAKEN' AND passname IS NULL);
    COMMIT
      continental
      delta
    END MULTITRANSACTION";

fn seat(fed: &Federation, service: &str, db: &str, sql: &str) -> Value {
    let engine = fed.engine(service).unwrap();
    let mut engine = engine.lock();
    engine.execute(db, sql).unwrap().into_result_set().unwrap().rows[0][0].clone()
}

#[test]
fn refuses_non_2pc_member_without_comp() {
    let mut fed = federation_with_autocommit_delta();
    let err = fed.execute(WITHOUT_COMP);
    assert!(matches!(err, Err(MdbsError::Mtx(_))), "{err:?}");
}

#[test]
fn preferred_state_commits_and_compensates_the_alternative() {
    let mut fed = federation_with_autocommit_delta();
    let report = fed.execute(WITH_COMP).unwrap().into_mtx().unwrap();
    // Preferred state: continental alone. Delta's reservation (which
    // autocommitted) must be compensated.
    assert_eq!(report.achieved_state, Some(0), "{report:?}");
    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("continental").status, dol::TaskStatus::Committed);
    assert_eq!(by_key("delta").status, dol::TaskStatus::Compensated);

    // Delta's lowest seat is FREE again.
    assert_eq!(
        seat(&fed, "svc_delta", "delta", "SELECT sstat FROM f747 WHERE snu = 1"),
        Value::Str("FREE".into())
    );
    // Continental's lowest FREE seat (2) is TAKEN.
    assert_eq!(
        seat(
            &fed,
            "svc_continental",
            "continental",
            "SELECT seatstatus FROM f838 WHERE seatnu = 2"
        ),
        Value::Str("TAKEN".into())
    );
}

#[test]
fn fallback_state_keeps_the_autocommitted_member() {
    let mut fed = federation_with_autocommit_delta();
    // Continental fails → the fallback state `delta` is achieved and delta's
    // autocommitted work is kept, not compensated.
    fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("f838");
    let report = fed.execute(WITH_COMP).unwrap().into_mtx().unwrap();
    assert_eq!(report.achieved_state, Some(1), "{report:?}");
    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("delta").status, dol::TaskStatus::Committed);
    assert_eq!(by_key("continental").status, dol::TaskStatus::Aborted);
    assert_eq!(
        seat(&fed, "svc_delta", "delta", "SELECT sstat FROM f747 WHERE snu = 1"),
        Value::Str("TAKEN".into())
    );
}

#[test]
fn total_failure_compensates_everything_committed() {
    let mut fed = federation_with_autocommit_delta();
    // Both acceptable states are singletons; kill continental and make the
    // acceptable states unreachable for delta too by... killing delta after
    // commit is impossible — instead use a state list that requires both.
    fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("f838");
    let sql = "BEGIN MULTITRANSACTION
        USE continental delta
        LET fltab.snu.sstat BE f838.seatnu.seatstatus f747.snu.sstat
        UPDATE fltab SET sstat = 'TAKEN'
        WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE')
        COMP delta
        UPDATE f747 SET sstat = 'FREE'
        WHERE snu = ( SELECT MIN(snu) FROM f747 WHERE sstat = 'TAKEN' AND passname IS NULL);
        COMMIT
          continental AND delta
        END MULTITRANSACTION";
    let report = fed.execute(sql).unwrap().into_mtx().unwrap();
    assert_eq!(report.achieved_state, None);
    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("delta").status, dol::TaskStatus::Compensated);
    assert_eq!(
        seat(&fed, "svc_delta", "delta", "SELECT sstat FROM f747 WHERE snu = 1"),
        Value::Str("FREE".into())
    );
}
