//! Property test: **cost-based planning is an optimization, not a semantic**.
//!
//! For any data distribution, any mix of fresh / stale / absent statistics
//! and any predicate shape, the costed distributed plan (statistics-driven
//! reducer choice, per-edge semi-join decisions, global join reordering)
//! must return exactly the rows of the statistics-free heuristic plan.
//! Global FROM reordering may permute row order, so both sides are compared
//! as sorted multisets.

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    /// Rows of `avis.t1 (k, a)`.
    t1: Vec<(i64, i64)>,
    /// Rows of `national.t2 (k, b)`.
    t2: Vec<(i64, i64)>,
    /// Whether to ANALYZE t1 / t2 (absent stats fall back per table).
    analyze: [bool; 2],
    /// Rows inserted into t1 *after* ANALYZE, so its snapshot drifts
    /// (and, past the freshness slack, would be dropped as stale).
    post_dml: Vec<(i64, i64)>,
    /// Index into `PREDICATES`.
    pred: usize,
}

/// Residual predicates layered on the `t.k = u.k` equi-join edge.
const PREDICATES: [&str; 5] =
    ["", " AND t.a < 5", " AND u.b = 3", " AND (t.a < 3 OR u.b > 7)", " AND t.a <= u.b"];

fn scenario() -> impl Strategy<Value = Scenario> {
    let row = || (0i64..8, 0i64..10);
    (
        proptest::collection::vec(row(), 0..16),
        proptest::collection::vec(row(), 0..16),
        proptest::array::uniform2(any::<bool>()),
        proptest::collection::vec(row(), 0..4),
        0usize..PREDICATES.len(),
    )
        .prop_map(|(t1, t2, analyze, post_dml, pred)| Scenario {
            t1,
            t2,
            analyze,
            post_dml,
            pred,
        })
}

/// Runs the scenario and returns the result as a sorted multiset of rows.
fn run(s: &Scenario, costed: bool) -> Vec<Vec<Value>> {
    let mut fed = paper_federation();
    fed.cost_planner = costed;
    fed.execute("USE avis national").unwrap();
    fed.execute("CREATE TABLE avis.t1 (k INT, a INT)").unwrap();
    fed.execute("CREATE TABLE national.t2 (k INT, b INT)").unwrap();
    let insert = |fed: &mdbs::Federation, svc: &str, db: &str, t: &str, rows: &[(i64, i64)]| {
        let engine = fed.engine(svc).unwrap();
        let mut engine = engine.lock();
        for (k, v) in rows {
            engine.execute(db, &format!("INSERT INTO {t} VALUES ({k}, {v})")).unwrap();
        }
    };
    insert(&fed, "svc_avis", "avis", "t1", &s.t1);
    insert(&fed, "svc_national", "national", "t2", &s.t2);
    if s.analyze[0] {
        fed.execute("ANALYZE avis.t1").unwrap();
    }
    if s.analyze[1] {
        fed.execute("ANALYZE national.t2").unwrap();
    }
    insert(&fed, "svc_avis", "avis", "t1", &s.post_dml);
    let rs = fed
        .execute(&format!(
            "SELECT t.k, t.a, u.b FROM avis.t1 t, national.t2 u WHERE t.k = u.k{}",
            PREDICATES[s.pred]
        ))
        .unwrap()
        .into_table()
        .unwrap();
    let mut rows = rs.rows;
    rows.sort_by_key(|r| {
        r.iter()
            .map(|v| match v {
                Value::Int(i) => *i,
                other => panic!("unexpected value {other:?}"),
            })
            .collect::<Vec<i64>>()
    });
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn costed_and_heuristic_plans_return_identical_rows(s in scenario()) {
        let costed = run(&s, true);
        let heuristic = run(&s, false);
        prop_assert_eq!(
            costed,
            heuristic,
            "costed plan diverged from the reference plan (scenario {:?})",
            s
        );
    }
}
