//! Property test: **vital-set failure atomicity** (paper §3.2).
//!
//! For any pattern of vital designators and any pattern of injected local
//! failures, a vital multiple update never ends with a *proper subset* of
//! the vital set committed: either every vital subquery commits, or none
//! does. Non-vital subqueries are unconstrained.
//!
//! The §3.3 variant with an autocommit-only member is exercised too:
//! compensation must make the outcome equivalent (the compensated member
//! counts as not-committed).

use dol::TaskStatus;
use ldbs::profile::DbmsProfile;
use mdbs::fixtures::{paper_federation_with, FederationProfiles};
use netsim::Network;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    vital: [bool; 3], // continental, delta, united
    fail: [bool; 3],  // inject failure per database
    continental_2pc: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::array::uniform3(any::<bool>()),
        proptest::array::uniform3(any::<bool>()),
        any::<bool>(),
    )
        .prop_map(|(vital, fail, continental_2pc)| Scenario { vital, fail, continental_2pc })
}

fn run_scenario(s: &Scenario) -> Vec<(String, TaskStatus, bool)> {
    let profiles = FederationProfiles {
        continental: if s.continental_2pc {
            DbmsProfile::oracle_like()
        } else {
            DbmsProfile::autocommit_only()
        },
        ..FederationProfiles::default()
    };
    let mut fed = paper_federation_with(Network::new(), profiles);
    let dbs = ["continental", "delta", "united"];
    let tables = ["flights", "flight", "flight"];
    let services = ["svc_continental", "svc_delta", "svc_united"];
    for i in 0..3 {
        if s.fail[i] {
            fed.engine(services[i]).unwrap().lock().failure_policy_mut().fail_writes_to(tables[i]);
        }
    }
    let scope: Vec<String> = dbs
        .iter()
        .enumerate()
        .map(|(i, db)| if s.vital[i] { format!("{db} VITAL") } else { db.to_string() })
        .collect();
    // Continental being autocommit-only and vital requires a COMP clause.
    let comp = if s.vital[0] && !s.continental_2pc {
        "\nCOMP continental\nUPDATE flights SET rate = rate / 1.1 WHERE source = 'Houston'"
    } else {
        ""
    };
    let msql = format!(
        "USE {}\nUPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'{}",
        scope.join(" "),
        comp
    );
    let report = fed.execute(&msql).unwrap().into_update().unwrap();
    report.outcomes.into_iter().enumerate().map(|(i, o)| (o.key, o.status, s.vital[i])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vital_set_commits_all_or_nothing(s in scenario()) {
        let outcomes = run_scenario(&s);
        let vital_committed: Vec<bool> = outcomes
            .iter()
            .filter(|(_, _, vital)| *vital)
            .map(|(_, status, _)| *status == TaskStatus::Committed)
            .collect();
        if !vital_committed.is_empty() {
            let all = vital_committed.iter().all(|c| *c);
            let none = vital_committed.iter().all(|c| !*c);
            prop_assert!(
                all || none,
                "vital set partially committed: {:?} (scenario {:?})",
                outcomes,
                s
            );
        }
    }

    #[test]
    fn failures_in_vital_set_mean_global_abort(s in scenario()) {
        let outcomes = run_scenario(&s);
        // If some vital database had an injected failure, then no vital
        // database may end committed.
        let some_vital_failed =
            (0..3).any(|i| s.vital[i] && s.fail[i]);
        if some_vital_failed {
            for (key, status, vital) in &outcomes {
                if *vital {
                    prop_assert_ne!(
                        *status,
                        TaskStatus::Committed,
                        "{} committed although the vital set had a failure (scenario {:?})",
                        key,
                        s
                    );
                }
            }
        }
    }

    #[test]
    fn healthy_non_vital_members_always_commit(s in scenario()) {
        let outcomes = run_scenario(&s);
        for (i, (key, status, vital)) in outcomes.iter().enumerate() {
            if !vital && !s.fail[i] {
                prop_assert_eq!(
                    *status,
                    TaskStatus::Committed,
                    "healthy NON VITAL {} did not commit (scenario {:?})",
                    key,
                    s
                );
            }
        }
    }
}
