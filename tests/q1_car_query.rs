//! Experiment Q1 — the paper's §2 car-rental query.
//!
//! One compact MSQL multiple query resolves naming heterogeneity (explicit
//! `LET` variable, implicit `%code`) and schema heterogeneity (`~rate`)
//! across avis and national, producing a multitable of two tables.

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;

#[test]
fn section2_query_produces_a_two_table_multitable() {
    let mut fed = paper_federation();
    let outcome = fed
        .execute(
            "USE avis national
             LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
             SELECT %code, type, ~rate FROM car WHERE status = 'available'",
        )
        .unwrap();
    let mt = outcome.into_multitable().unwrap();
    assert_eq!(mt.tables.len(), 2, "a multitable is a SET of tables, one per database");

    // avis: code, cartype, rate — two available cars.
    let avis = mt.table("avis").unwrap();
    let names: Vec<&str> = avis.columns.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["code", "cartype", "rate"]);
    assert_eq!(avis.rows.len(), 2);
    assert!(avis.rows.iter().any(|r| r[0] == Value::Int(1)));
    assert!(avis.rows.iter().any(|r| r[0] == Value::Int(3)));

    // national: vcode, vty — the optional ~rate column is absent (schema
    // heterogeneity resolved by dropping it, §2).
    let national = mt.table("national").unwrap();
    let names: Vec<&str> = national.columns.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["vcode", "vty"]);
    assert_eq!(national.rows.len(), 2);
}

#[test]
fn scope_persists_across_statements() {
    let mut fed = paper_federation();
    fed.execute("USE avis national").unwrap();
    fed.execute("LET car.status BE cars.carst vehicle.vstat").unwrap();
    let mt = fed
        .execute("SELECT %code FROM car WHERE status = 'rented'")
        .unwrap()
        .into_multitable()
        .unwrap();
    assert_eq!(mt.tables.len(), 2);
    assert_eq!(mt.table("avis").unwrap().rows.len(), 1);
    assert_eq!(mt.table("national").unwrap().rows.len(), 1);
}

#[test]
fn non_pertinent_database_contributes_no_table() {
    let mut fed = paper_federation();
    // `cars` only exists in avis; national silently drops out.
    let mt =
        fed.execute("USE avis national SELECT code FROM cars").unwrap().into_multitable().unwrap();
    assert_eq!(mt.tables.len(), 1);
    assert_eq!(mt.tables[0].database, "avis");
}

#[test]
fn aggregates_run_locally_per_database() {
    let mut fed = paper_federation();
    let mt = fed
        .execute(
            "USE avis national
             LET car.status BE cars.carst vehicle.vstat
             SELECT COUNT(*) AS n FROM car WHERE status = 'available'",
        )
        .unwrap()
        .into_multitable()
        .unwrap();
    assert_eq!(mt.table("avis").unwrap().rows[0][0], Value::Int(2));
    assert_eq!(mt.table("national").unwrap().rows[0][0], Value::Int(2));
}
