//! Experiment Q2 — the §3.2 multiple update with VITAL designators.
//!
//! `USE continental VITAL delta united VITAL` + the fare-raise update. The
//! vital set {continental, united} must commit or abort atomically; delta is
//! free to do whatever it locally decides.

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;
use mdbs::MsqlOutcome;

const UPDATE: &str = "USE continental VITAL delta united VITAL
    UPDATE flight%
    SET rate% = rate% * 1.1
    WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

fn rate(fed: &mdbs::Federation, service: &str, db: &str, sql: &str) -> Value {
    let engine = fed.engine(service).unwrap();
    let mut engine = engine.lock();
    engine.execute(db, sql).unwrap().into_result_set().unwrap().rows[0][0].clone()
}

#[test]
fn all_vital_commit_when_everything_succeeds() {
    let mut fed = paper_federation();
    let report = fed.execute(UPDATE).unwrap().into_update().unwrap();
    assert!(report.success);
    assert_eq!(report.return_code, 0);
    assert_eq!(report.outcomes.len(), 3);
    for o in &report.outcomes {
        assert_eq!(o.status, dol::TaskStatus::Committed, "{o:?}");
        assert_eq!(o.affected, 1, "{o:?}");
    }
    // The heterogeneous schemas were all updated.
    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(100.0 * 1.1)
    );
    assert_eq!(
        rate(&fed, "svc_delta", "delta", "SELECT rate FROM flight WHERE fnu = 10"),
        Value::Float(95.0 * 1.1)
    );
    assert_eq!(
        rate(&fed, "svc_united", "united", "SELECT rates FROM flight WHERE fn = 20"),
        Value::Float(110.0 * 1.1)
    );
}

#[test]
fn vital_failure_rolls_back_the_whole_vital_set() {
    let mut fed = paper_federation();
    // united's flight table refuses writes (simulated local conflict).
    fed.engine("svc_united").unwrap().lock().failure_policy_mut().fail_writes_to("flight");

    let report = fed.execute(UPDATE).unwrap().into_update().unwrap();
    assert!(!report.success);
    assert_eq!(report.return_code, 1);
    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("continental").status, dol::TaskStatus::Aborted);
    assert_eq!(by_key("united").status, dol::TaskStatus::Aborted);
    // delta is NON VITAL: it autocommitted and keeps its update.
    assert_eq!(by_key("delta").status, dol::TaskStatus::Committed);
    // The failing site's local error is surfaced on its outcome; the healthy
    // sites (aborted only to keep the vital set atomic) carry none.
    let united_error = by_key("united").error.as_deref().unwrap();
    assert!(united_error.contains("simulated lock conflict"), "{united_error}");
    assert_eq!(by_key("continental").error, None);
    assert_eq!(by_key("delta").error, None);

    assert_eq!(
        rate(&fed, "svc_continental", "continental", "SELECT rate FROM flights WHERE flnu = 1"),
        Value::Float(100.0),
        "continental must be rolled back"
    );
    assert_eq!(
        rate(&fed, "svc_united", "united", "SELECT rates FROM flight WHERE fn = 20"),
        Value::Float(110.0),
        "united never committed"
    );
    assert_eq!(
        rate(&fed, "svc_delta", "delta", "SELECT rate FROM flight WHERE fnu = 10"),
        Value::Float(95.0 * 1.1),
        "delta's NON VITAL update survives"
    );
}

#[test]
fn non_vital_failure_does_not_affect_the_query() {
    let mut fed = paper_federation();
    fed.engine("svc_delta").unwrap().lock().failure_policy_mut().fail_writes_to("flight");

    let report = fed.execute(UPDATE).unwrap().into_update().unwrap();
    assert!(report.success, "NON VITAL failures have no effect on the commitment (§3.2)");
    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("delta").status, dol::TaskStatus::Aborted);
    assert_eq!(by_key("continental").status, dol::TaskStatus::Committed);
    assert_eq!(by_key("united").status, dol::TaskStatus::Committed);
}

#[test]
fn all_non_vital_is_always_successful() {
    let mut fed = paper_federation();
    fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("flights");
    let report = fed
        .execute(
            "USE continental delta united
             UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'",
        )
        .unwrap()
        .into_update()
        .unwrap();
    assert!(
        report.success,
        "\"If all subqueries are NON VITAL the multiple query is always successful\""
    );
}

#[test]
fn vital_atomicity_under_prepare_failure() {
    let mut fed = paper_federation();
    // continental crashes before voting.
    fed.engine("svc_continental")
        .unwrap()
        .lock()
        .set_failure_policy(ldbs::failure::FailurePolicy::with_probabilities(7, 0.0, 1.0));
    let report = fed.execute(UPDATE).unwrap().into_update().unwrap();
    assert!(!report.success);
    // Nobody in the vital set committed.
    for key in ["continental", "united"] {
        let o = report.outcomes.iter().find(|o| o.key == key).unwrap();
        assert_ne!(o.status, dol::TaskStatus::Committed, "{o:?}");
    }
}

#[test]
fn update_without_scope_is_rejected() {
    let mut fed = paper_federation();
    let err = fed.execute("UPDATE flight% SET rate% = 0");
    assert!(matches!(err, Err(mdbs::MdbsError::EmptyScope)), "{err:?}");
}

#[test]
fn outcome_kind_is_update() {
    let mut fed = paper_federation();
    let out = fed.execute(UPDATE).unwrap();
    assert!(matches!(out, MsqlOutcome::Update(_)));
}
