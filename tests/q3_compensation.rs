//! Experiment Q3 — the §3.3 compensation semantics.
//!
//! "Assuming that the Continental database does not provide 2PC", the vital
//! update gets a COMP clause. The paper enumerates four execution paths:
//!
//! 1. Continental committed ∧ United prepared → commit United → success;
//! 2. Continental committed ∧ United aborted → compensate Continental →
//!    successfully aborted;
//! 3. Continental aborted ∧ United prepared → roll United back →
//!    successfully aborted;
//! 4. both aborted → successfully aborted.
//!
//! All four are reproduced below, plus the refusal case ("our prototype
//! MDBS raises an error condition and refuses to process the query").

use ldbs::profile::DbmsProfile;
use ldbs::value::Value;
use mdbs::fixtures::{paper_federation_with, FederationProfiles};
use mdbs::{Federation, MdbsError};
use netsim::Network;

const UPDATE_WITH_COMP: &str = "USE continental VITAL delta united VITAL
    UPDATE flight%
    SET rate% = rate% * 1.1
    WHERE sour% = 'Houston' AND dest% = 'San Antonio'
    COMP continental
    UPDATE flights
    SET rate = rate / 1.1
    WHERE source = 'Houston' AND destination = 'San Antonio'";

fn federation_without_2pc_continental() -> Federation {
    paper_federation_with(
        Network::new(),
        FederationProfiles {
            continental: DbmsProfile::autocommit_only(),
            ..FederationProfiles::default()
        },
    )
}

fn continental_rate(fed: &Federation) -> f64 {
    let engine = fed.engine("svc_continental").unwrap();
    let mut engine = engine.lock();
    match engine
        .execute("continental", "SELECT rate FROM flights WHERE flnu = 1")
        .unwrap()
        .into_result_set()
        .unwrap()
        .rows[0][0]
    {
        Value::Float(f) => f,
        ref other => panic!("{other:?}"),
    }
}

fn united_rate(fed: &Federation) -> f64 {
    let engine = fed.engine("svc_united").unwrap();
    let mut engine = engine.lock();
    match engine
        .execute("united", "SELECT rates FROM flight WHERE fn = 20")
        .unwrap()
        .into_result_set()
        .unwrap()
        .rows[0][0]
    {
        Value::Float(f) => f,
        ref other => panic!("{other:?}"),
    }
}

#[test]
fn refuses_vital_non_2pc_without_comp() {
    let mut fed = federation_without_2pc_continental();
    let err = fed.execute(
        "USE continental VITAL delta united VITAL
         UPDATE flight% SET rate% = rate% * 1.1
         WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
    );
    assert!(
        matches!(err, Err(MdbsError::VitalWithoutCompensation { ref database }) if database == "continental"),
        "{err:?}"
    );
}

#[test]
fn path1_both_succeed() {
    let mut fed = federation_without_2pc_continental();
    let report = fed.execute(UPDATE_WITH_COMP).unwrap().into_update().unwrap();
    assert!(report.success);
    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("continental").status, dol::TaskStatus::Committed);
    assert_eq!(by_key("united").status, dol::TaskStatus::Committed);
    assert!((continental_rate(&fed) - 110.0).abs() < 1e-9);
    assert!((united_rate(&fed) - 121.0).abs() < 1e-9);
}

#[test]
fn path2_united_aborts_so_continental_is_compensated() {
    let mut fed = federation_without_2pc_continental();
    fed.engine("svc_united").unwrap().lock().failure_policy_mut().fail_writes_to("flight");

    let report = fed.execute(UPDATE_WITH_COMP).unwrap().into_update().unwrap();
    assert!(!report.success);
    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("continental").status, dol::TaskStatus::Compensated);
    assert_eq!(by_key("united").status, dol::TaskStatus::Aborted);
    // Compensation semantically undid the fare raise (up to float rounding —
    // exactly the caveat the paper makes about compensation not restoring
    // the byte-identical state).
    assert!((continental_rate(&fed) - 100.0).abs() < 1e-9);
    assert!((united_rate(&fed) - 110.0).abs() < 1e-9);
}

#[test]
fn path3_continental_aborts_so_united_rolls_back() {
    let mut fed = federation_without_2pc_continental();
    fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("flights");

    let report = fed.execute(UPDATE_WITH_COMP).unwrap().into_update().unwrap();
    assert!(!report.success);
    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("continental").status, dol::TaskStatus::Aborted);
    assert_eq!(by_key("united").status, dol::TaskStatus::Aborted);
    assert!((continental_rate(&fed) - 100.0).abs() < 1e-9);
    assert!((united_rate(&fed) - 110.0).abs() < 1e-9);
}

#[test]
fn path4_both_abort() {
    let mut fed = federation_without_2pc_continental();
    fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("flights");
    fed.engine("svc_united").unwrap().lock().failure_policy_mut().fail_writes_to("flight");

    let report = fed.execute(UPDATE_WITH_COMP).unwrap().into_update().unwrap();
    assert!(!report.success);
    assert!((continental_rate(&fed) - 100.0).abs() < 1e-9);
    assert!((united_rate(&fed) - 110.0).abs() < 1e-9);
}

#[test]
fn comp_for_unknown_database_is_rejected() {
    let mut fed = federation_without_2pc_continental();
    let err = fed.execute(
        "USE continental VITAL
         UPDATE flights SET rate = rate * 1.1
         COMP hertz
         UPDATE flights SET rate = rate / 1.1",
    );
    assert!(matches!(err, Err(MdbsError::BadCompClause(_))), "{err:?}");
}

#[test]
fn comp_is_not_invoked_on_success() {
    // With everything healthy, the compensation must NOT run.
    let mut fed = federation_without_2pc_continental();
    fed.execute(UPDATE_WITH_COMP).unwrap();
    assert!((continental_rate(&fed) - 110.0).abs() < 1e-9);
}
