//! Experiment Q4 — the §3.4 travel-agent multitransaction.
//!
//! Two multiple queries (flight reservation on continental+delta, car
//! reservation on avis+national, both exploiting function replication) and
//! two acceptable termination states in preference order:
//! `continental AND national` then `delta AND avis`.

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;
use mdbs::Federation;

const TRAVEL_AGENT: &str = "BEGIN MULTITRANSACTION
    USE continental delta
    LET fltab.snu.sstat.clname BE
        f838.seatnu.seatstatus.clientname
        f747.snu.sstat.passname
    UPDATE fltab
    SET sstat = 'TAKEN', clname = 'wenders'
    WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
    USE avis national
    LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat
    UPDATE cartab
    SET cstat = 'TAKEN', client = 'wenders'
    WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'available');
    COMMIT
      continental AND national
      delta AND avis
    END MULTITRANSACTION";

fn seat_status(fed: &Federation, service: &str, db: &str, sql: &str) -> Vec<Vec<Value>> {
    let engine = fed.engine(service).unwrap();
    let mut engine = engine.lock();
    engine.execute(db, sql).unwrap().into_result_set().unwrap().rows
}

#[test]
fn preferred_state_continental_and_national() {
    let mut fed = paper_federation();
    let report = fed.execute(TRAVEL_AGENT).unwrap().into_mtx().unwrap();
    assert_eq!(report.achieved_state, Some(0), "{report:?}");
    assert_eq!(report.return_code, 0);

    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("continental").status, dol::TaskStatus::Committed);
    assert_eq!(by_key("national").status, dol::TaskStatus::Committed);
    // The exclusion constraint: delta and avis are rolled back.
    assert_eq!(by_key("delta").status, dol::TaskStatus::Aborted);
    assert_eq!(by_key("avis").status, dol::TaskStatus::Aborted);

    // continental seat 2 (lowest FREE) is taken by wenders.
    let rows = seat_status(
        &fed,
        "svc_continental",
        "continental",
        "SELECT seatstatus, clientname FROM f838 WHERE seatnu = 2",
    );
    assert_eq!(rows[0][0], Value::Str("TAKEN".into()));
    assert_eq!(rows[0][1], Value::Str("wenders".into()));
    // delta seat 1 stays FREE (its reservation was rolled back).
    let rows = seat_status(&fed, "svc_delta", "delta", "SELECT sstat FROM f747 WHERE snu = 1");
    assert_eq!(rows[0][0], Value::Str("FREE".into()));
    // national vehicle 7 taken, avis car 1 still available.
    let rows = seat_status(
        &fed,
        "svc_national",
        "national",
        "SELECT vstat, client FROM vehicle WHERE vcode = 7",
    );
    assert_eq!(rows[0][0], Value::Str("TAKEN".into()));
    let rows = seat_status(&fed, "svc_avis", "avis", "SELECT carst FROM cars WHERE code = 1");
    assert_eq!(rows[0][0], Value::Str("available".into()));
}

#[test]
fn falls_back_to_delta_and_avis() {
    let mut fed = paper_federation();
    // continental's seat table refuses writes → the preferred state is
    // unreachable.
    fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("f838");

    let report = fed.execute(TRAVEL_AGENT).unwrap().into_mtx().unwrap();
    assert_eq!(report.achieved_state, Some(1), "{report:?}");
    assert_eq!(report.return_code, 1);
    let by_key = |k: &str| report.outcomes.iter().find(|o| o.key == k).unwrap();
    assert_eq!(by_key("delta").status, dol::TaskStatus::Committed);
    assert_eq!(by_key("avis").status, dol::TaskStatus::Committed);
    assert_eq!(by_key("continental").status, dol::TaskStatus::Aborted);
    assert_eq!(by_key("national").status, dol::TaskStatus::Aborted);

    // The undesirable cross combinations never commit.
    let rows =
        seat_status(&fed, "svc_delta", "delta", "SELECT sstat, passname FROM f747 WHERE snu = 1");
    assert_eq!(rows[0][0], Value::Str("TAKEN".into()));
    assert_eq!(rows[0][1], Value::Str("wenders".into()));
    let rows =
        seat_status(&fed, "svc_avis", "avis", "SELECT carst, client FROM cars WHERE code = 1");
    assert_eq!(rows[0][0], Value::Str("TAKEN".into()));
}

#[test]
fn no_acceptable_state_fails_and_undoes_everything() {
    let mut fed = paper_federation();
    // Kill one member of each acceptable state.
    fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("f838");
    fed.engine("svc_avis").unwrap().lock().failure_policy_mut().fail_writes_to("cars");

    let report = fed.execute(TRAVEL_AGENT).unwrap().into_mtx().unwrap();
    assert_eq!(report.achieved_state, None, "{report:?}");
    // Everything is rolled back — no partial trip plan survives.
    for o in &report.outcomes {
        assert_ne!(o.status, dol::TaskStatus::Committed, "{o:?}");
    }
    let rows = seat_status(&fed, "svc_delta", "delta", "SELECT sstat FROM f747 WHERE snu = 1");
    assert_eq!(rows[0][0], Value::Str("FREE".into()));
    let rows =
        seat_status(&fed, "svc_national", "national", "SELECT vstat FROM vehicle WHERE vcode = 7");
    assert_eq!(rows[0][0], Value::Str("available".into()));
}

#[test]
fn outcome_is_consistent_with_the_mtx_oracle() {
    // Cross-check the DOL execution against the direct §3.4 rule.
    let mut fed = paper_federation();
    fed.engine("svc_continental").unwrap().lock().failure_policy_mut().fail_writes_to("f838");
    let report = fed.execute(TRAVEL_AGENT).unwrap().into_mtx().unwrap();
    let statuses: std::collections::HashMap<String, dol::TaskStatus> =
        report.outcomes.iter().map(|o| (o.key.clone(), o.status)).collect();
    let states = vec![
        vec!["continental".to_string(), "national".to_string()],
        vec!["delta".to_string(), "avis".to_string()],
    ];
    assert!(mdbs::mtx::is_consistent_outcome(&states, &statuses));
    assert_eq!(mdbs::mtx::realised_state(&states, &statuses), report.achieved_state);
}

#[test]
fn acceptable_state_with_unknown_database_is_rejected() {
    let mut fed = paper_federation();
    let err = fed.execute(
        "BEGIN MULTITRANSACTION
           USE continental delta
           UPDATE f% SET sstat = 'TAKEN' WHERE snu = 1;
           COMMIT hertz
         END MULTITRANSACTION",
    );
    assert!(matches!(err, Err(mdbs::MdbsError::Mtx(_))), "{err:?}");
}
