use mdbs::fixtures::paper_federation;

fn run(pushdown: bool) -> Vec<Vec<ldbs::value::Value>> {
    let mut fed = paper_federation();
    fed.agg_pushdown = pushdown;
    fed.execute("USE avis national").unwrap();
    fed.execute("CREATE TABLE avis.t1 (k INT, g INT, v INT)").unwrap();
    fed.execute("CREATE TABLE national.t2 (k INT, w INT)").unwrap();
    {
        let engine = fed.engine("svc_avis").unwrap();
        let mut engine = engine.lock();
        engine.execute("avis", "INSERT INTO t1 VALUES (1, 0, 3)").unwrap();
        engine.execute("avis", "INSERT INTO t1 VALUES (1, 1, 4)").unwrap();
    }
    // national.t2 left EMPTY
    let outcome = fed.execute("SELECT t.g, COUNT(*) FROM avis.t1 t, national.t2 u GROUP BY t.g").unwrap();
    match outcome {
        mdbs::MsqlOutcome::Table(rs) => rs.rows,
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn review_pure_product_group_by_empty_site() {
    let on = run(true);
    let off = run(false);
    assert_eq!(on, off, "pushdown-on diverged: on={on:?} off={off:?}");
}
