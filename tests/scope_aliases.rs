//! Scope aliasing: `USE (db alias)` — COMP clauses, vital sets and
//! acceptable states all refer to subqueries by the alias (the mechanism
//! §3.4 relies on for key uniqueness inside multitransactions).

use ldbs::profile::DbmsProfile;
use ldbs::value::Value;
use mdbs::fixtures::{paper_federation, paper_federation_with, FederationProfiles};
use netsim::Network;

#[test]
fn vital_set_and_outcomes_use_aliases() {
    let mut fed = paper_federation();
    let report = fed
        .execute(
            "USE (continental cont) VITAL delta (united uni) VITAL
             UPDATE flight% SET rate% = rate% * 1.1
             WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
        )
        .unwrap()
        .into_update()
        .unwrap();
    assert!(report.success);
    let keys: Vec<&str> = report.outcomes.iter().map(|o| o.key.as_str()).collect();
    assert_eq!(keys, vec!["cont", "delta", "uni"]);
}

#[test]
fn comp_clause_may_name_the_alias() {
    let mut fed = paper_federation_with(
        Network::new(),
        FederationProfiles {
            continental: DbmsProfile::autocommit_only(),
            ..FederationProfiles::default()
        },
    );
    fed.engine("svc_united").unwrap().lock().failure_policy_mut().fail_writes_to("flight");
    let report = fed
        .execute(
            "USE (continental cont) VITAL (united uni) VITAL
             UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'
             COMP cont
             UPDATE flights SET rate = rate / 1.1 WHERE source = 'Houston'",
        )
        .unwrap()
        .into_update()
        .unwrap();
    assert!(!report.success);
    let cont = report.outcomes.iter().find(|o| o.key == "cont").unwrap();
    assert_eq!(cont.status, dol::TaskStatus::Compensated);

    let engine = fed.engine("svc_continental").unwrap();
    let mut engine = engine.lock();
    let rate = engine
        .execute("continental", "SELECT rate FROM flights WHERE flnu = 1")
        .unwrap()
        .into_result_set()
        .unwrap()
        .rows[0][0]
        .clone();
    assert_eq!(rate, Value::Float(100.0));
}

#[test]
fn multitransaction_aliases_make_duplicate_databases_legal() {
    // Two component queries both touching continental: aliasing gives them
    // distinct keys, which §3.4 requires.
    let mut fed = paper_federation();
    let report = fed
        .execute(
            "BEGIN MULTITRANSACTION
               USE (continental seatleg)
               UPDATE f838 SET seatstatus = 'TAKEN'
               WHERE seatnu = ( SELECT MIN(seatnu) FROM f838 WHERE seatstatus = 'FREE');
               USE (continental fareleg)
               UPDATE flights SET rate = rate * 1.1 WHERE flnu = 1;
               COMMIT
                 seatleg AND fareleg
             END MULTITRANSACTION",
        )
        .unwrap()
        .into_mtx()
        .unwrap();
    assert_eq!(report.achieved_state, Some(0), "{report:?}");
    let keys: Vec<&str> = report.outcomes.iter().map(|o| o.key.as_str()).collect();
    assert_eq!(keys, vec!["seatleg", "fareleg"]);
}

#[test]
fn duplicate_unaliased_databases_in_multitransaction_are_rejected() {
    let mut fed = paper_federation();
    let err = fed.execute(
        "BEGIN MULTITRANSACTION
           USE continental
           UPDATE f838 SET seatstatus = 'TAKEN' WHERE seatnu = 1;
           USE continental
           UPDATE flights SET rate = rate WHERE flnu = 1;
           COMMIT continental
         END MULTITRANSACTION",
    );
    assert!(matches!(err, Err(mdbs::MdbsError::Mtx(_))), "{err:?}");
}

#[test]
fn use_current_extends_the_scope() {
    let mut fed = paper_federation();
    fed.execute("USE avis").unwrap();
    let mt = fed
        .execute(
            "LET car.status BE cars.carst
                  SELECT %code FROM car WHERE status = 'available'",
        )
        .unwrap()
        .into_multitable()
        .unwrap();
    assert_eq!(mt.tables.len(), 1);

    fed.execute("USE CURRENT national").unwrap();
    assert_eq!(fed.scope().databases.len(), 2);
    // The LET was cleared?? No: USE CURRENT appends without dropping — but
    // the old variable has one binding for two databases now, so redeclare.
    let mt = fed
        .execute(
            "LET car2.status2 BE cars.carst vehicle.vstat
                  SELECT %code FROM car2 WHERE status2 = 'available'",
        )
        .unwrap()
        .into_multitable()
        .unwrap();
    assert_eq!(mt.tables.len(), 2);
}
