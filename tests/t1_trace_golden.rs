//! T1 — golden span trees for the paper's experiments.
//!
//! Every statement executed by a [`mdbs::Federation`] leaves a hierarchical
//! span tree behind (parse → expand/disambiguate/decompose → plangen → one
//! span per DOL task with its LAM round trips). The trees are stamped by a
//! deterministic logical clock and normalized (children sorted, ticks
//! densely renumbered), so two runs of the same scenario render
//! byte-identical text — which this suite pins against committed golden
//! files.
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test t1_trace_golden
//! ```

use ldbs::profile::DbmsProfile;
use mdbs::fixtures::{paper_federation, paper_federation_with, FederationProfiles};
use mdbs::Federation;
use netsim::Network;
use std::fs;
use std::path::PathBuf;

const Q1_CAR_QUERY: &str = "USE avis national
    LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
    SELECT %code, type, ~rate FROM car WHERE status = 'available'";

const Q2_VITAL_UPDATE: &str = "USE continental VITAL delta united VITAL
    UPDATE flight%
    SET rate% = rate% * 1.1
    WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

const Q3_UPDATE_WITH_COMP: &str = "USE continental VITAL delta united VITAL
    UPDATE flight%
    SET rate% = rate% * 1.1
    WHERE sour% = 'Houston' AND dest% = 'San Antonio'
    COMP continental
    UPDATE flights
    SET rate = rate / 1.1
    WHERE source = 'Houston' AND destination = 'San Antonio'";

const Q4_TRAVEL_AGENT: &str = "BEGIN MULTITRANSACTION
    USE continental delta
    LET fltab.snu.sstat.clname BE
        f838.seatnu.seatstatus.clientname
        f747.snu.sstat.passname
    UPDATE fltab
    SET sstat = 'TAKEN', clname = 'wenders'
    WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
    USE avis national
    LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat
    UPDATE cartab
    SET cstat = 'TAKEN', client = 'wenders'
    WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'available');
    COMMIT
      continental AND national
      delta AND avis
    END MULTITRANSACTION";

const CROSS_DB_JOIN: &str = "USE continental delta
    SELECT f.flnu, g.fnu
    FROM continental.flights f, delta.flight g
    WHERE f.source = g.source AND f.destination = g.dest";

const AGGREGATE_PUSHDOWN: &str = "USE continental delta
    SELECT f.source, COUNT(*), MIN(g.rate)
    FROM continental.flights f, delta.flight g
    WHERE f.source = g.source
    GROUP BY f.source";

/// Executes `msql` on a freshly set-up federation (serial task execution,
/// so the span tree is ordered deterministically) and renders the
/// normalized trace.
fn run_trace(setup: &dyn Fn() -> Federation, msql: &str) -> String {
    let mut fed = setup();
    fed.parallel = false;
    fed.execute(msql).expect("golden scenarios execute without a federation-level error");
    fed.last_trace().expect("every statement leaves a trace").render()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.trace"))
}

/// Runs the scenario twice from scratch, asserts the two renders are
/// byte-identical, and compares against the committed golden file (or
/// rewrites it under `UPDATE_GOLDEN=1`).
fn check(name: &str, setup: impl Fn() -> Federation, msql: &str) {
    let first = run_trace(&setup, msql);
    let second = run_trace(&setup, msql);
    assert_eq!(first, second, "trace for `{name}` differs between two identical runs");

    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &first).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden file {path:?} — generate it with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        first, want,
        "golden trace drift for `{name}` — if the change is intended, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test t1_trace_golden"
    );
}

fn without_2pc_continental() -> Federation {
    paper_federation_with(
        Network::new(),
        FederationProfiles {
            continental: DbmsProfile::autocommit_only(),
            ..FederationProfiles::default()
        },
    )
}

#[test]
fn q1_retrieval_trace_is_golden() {
    check("q1_retrieval", paper_federation, Q1_CAR_QUERY);
}

#[test]
fn q2_vital_update_trace_is_golden() {
    check("q2_vital_update", paper_federation, Q2_VITAL_UPDATE);
}

#[test]
fn q3_compensation_trace_is_golden() {
    // §3.3 path 2: united aborts, continental (no 2PC) already committed →
    // its COMP statement runs; the trace shows the compensate span.
    check(
        "q3_compensation",
        || {
            let fed = without_2pc_continental();
            fed.engine("svc_united").unwrap().lock().failure_policy_mut().fail_writes_to("flight");
            fed
        },
        Q3_UPDATE_WITH_COMP,
    );
}

#[test]
fn q4_multitransaction_trace_is_golden() {
    check("q4_multitransaction", paper_federation, Q4_TRAVEL_AGENT);
}

#[test]
fn q4_fallback_state_trace_is_golden() {
    // The preferred state is unreachable → the trace shows the fallback
    // round committing {delta, avis} and aborting the preferred pair.
    check(
        "q4_fallback_state",
        || {
            let fed = paper_federation();
            fed.engine("svc_continental")
                .unwrap()
                .lock()
                .failure_policy_mut()
                .fail_writes_to("f838");
            fed
        },
        Q4_TRAVEL_AGENT,
    );
}

#[test]
fn cross_db_join_trace_is_golden() {
    check("cross_db_join", paper_federation, CROSS_DB_JOIN);
}

#[test]
fn aggregate_pushdown_explain_is_golden() {
    // A decomposable 2-site GROUP BY runs as an aggregate pushdown: each
    // site ships per-group partial states instead of its full partial, and
    // EXPLAIN pins the `pushed=agg` span notes, the `agg-pushdown` join
    // strategy and the shipped-versus-unpushed "aggregate pushdown" table.
    let render = |_: ()| {
        let mut fed = paper_federation();
        fed.parallel = false;
        fed.execute(&format!("EXPLAIN {AGGREGATE_PUSHDOWN}"))
            .expect("EXPLAIN pushed GROUP BY")
            .into_explain()
            .expect("an explain report")
            .render()
    };
    let first = render(());
    let second = render(());
    assert_eq!(first, second, "EXPLAIN output differs between two identical runs");
    assert!(first.contains("pushed=agg"), "partial spans should carry the pushed note:\n{first}");
    assert!(
        first.contains("strategy=agg-pushdown"),
        "the join span should name the pushdown strategy:\n{first}"
    );
    assert!(
        first.contains("aggregate pushdown: agg"),
        "the report should render the pushdown section:\n{first}"
    );

    let path = golden_path("aggregate_pushdown");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &first).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden file {path:?} — generate it with UPDATE_GOLDEN=1")
    });
    assert_eq!(first, want, "EXPLAIN golden drift — regenerate with UPDATE_GOLDEN=1 if intended");
}

#[test]
fn explain_q1_report_is_golden() {
    // The EXPLAIN surface itself is part of the contract: span tree plus
    // the per-LAM cost table, rendered.
    let render = |_: ()| {
        let mut fed = paper_federation();
        fed.parallel = false;
        fed.execute(&format!("EXPLAIN {Q1_CAR_QUERY}"))
            .expect("EXPLAIN Q1")
            .into_explain()
            .expect("an explain report")
            .render()
    };
    let first = render(());
    let second = render(());
    assert_eq!(first, second, "EXPLAIN output differs between two identical runs");

    let path = golden_path("explain_q1");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &first).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden file {path:?} — generate it with UPDATE_GOLDEN=1")
    });
    assert_eq!(first, want, "EXPLAIN golden drift — regenerate with UPDATE_GOLDEN=1 if intended");
}

#[test]
fn explain_indexed_join_report_is_golden() {
    // With a hash index on the reduced side's join column, the shipped
    // semi-join IN filter turns into an index probe; EXPLAIN pins both the
    // `access=probe` span note and the per-database access-path line.
    let render = |_: ()| {
        let mut fed = paper_federation();
        fed.parallel = false;
        fed.execute("CREATE INDEX flight_source ON delta.flight (source) USING HASH")
            .expect("CREATE INDEX on delta.flight");
        fed.execute(&format!("EXPLAIN {CROSS_DB_JOIN}"))
            .expect("EXPLAIN cross-db join")
            .into_explain()
            .expect("an explain report")
            .render()
    };
    let first = render(());
    let second = render(());
    assert_eq!(first, second, "EXPLAIN output differs between two identical runs");
    assert!(
        first.contains("access=probe"),
        "the semi-join-reduced subquery should probe the index:\n{first}"
    );
    assert!(
        first.contains("access path [delta]: probe"),
        "the cost table should carry delta's access-path line:\n{first}"
    );

    let path = golden_path("explain_indexed_join");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &first).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden file {path:?} — generate it with UPDATE_GOLDEN=1")
    });
    assert_eq!(first, want, "EXPLAIN golden drift — regenerate with UPDATE_GOLDEN=1 if intended");
}
