//! Interdatabase triggers (MSQL §2: "definition of interdatabase
//! triggers"): a committed modification in one database fires an MSQL
//! action that may touch other databases.

use ldbs::value::Value;
use mdbs::fixtures::paper_federation;
use mdbs::Federation;

fn count(fed: &Federation, service: &str, db: &str, sql: &str) -> i64 {
    let engine = fed.engine(service).unwrap();
    let mut engine = engine.lock();
    match engine.execute(db, sql).unwrap().into_result_set().unwrap().rows[0][0] {
        Value::Int(n) => n,
        ref other => panic!("{other:?}"),
    }
}

#[test]
fn update_trigger_replicates_into_another_database() {
    let mut fed = paper_federation();
    // An audit table at avis, fed by a trigger on continental's fares.
    fed.execute("USE avis").unwrap();
    fed.execute("CREATE TABLE avis.audit (note CHAR(40))").unwrap();
    fed.execute(
        "CREATE TRIGGER fare_watch ON continental.flights AFTER UPDATE EXECUTE
         USE avis
         INSERT INTO audit VALUES ('continental fares changed')",
    )
    .unwrap();

    fed.execute("USE continental").unwrap();
    fed.execute("UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston'").unwrap();
    assert_eq!(count(&fed, "svc_avis", "avis", "SELECT COUNT(*) FROM audit"), 1);

    // Fires once per qualifying statement.
    fed.execute("UPDATE flights SET rate = rate WHERE flnu = 1").unwrap();
    assert_eq!(count(&fed, "svc_avis", "avis", "SELECT COUNT(*) FROM audit"), 2);
}

#[test]
fn trigger_does_not_fire_on_miss_or_other_events() {
    let mut fed = paper_federation();
    fed.execute("USE avis").unwrap();
    fed.execute("CREATE TABLE avis.audit (note CHAR(40))").unwrap();
    fed.execute(
        "CREATE TRIGGER fare_watch ON continental.flights AFTER UPDATE EXECUTE
         USE avis
         INSERT INTO audit VALUES ('x')",
    )
    .unwrap();
    fed.execute("USE continental").unwrap();
    // Zero rows affected → no fire.
    fed.execute("UPDATE flights SET rate = 1 WHERE source = 'Nowhere'").unwrap();
    assert_eq!(count(&fed, "svc_avis", "avis", "SELECT COUNT(*) FROM audit"), 0);
    // INSERT event ≠ UPDATE trigger.
    fed.execute("INSERT INTO flights VALUES (9, 'A', 'am', 'B', 'pm', 'mon', 1.0)").unwrap();
    assert_eq!(count(&fed, "svc_avis", "avis", "SELECT COUNT(*) FROM audit"), 0);
    // A different table.
    fed.execute("UPDATE f838 SET seatstatus = seatstatus").unwrap();
    assert_eq!(count(&fed, "svc_avis", "avis", "SELECT COUNT(*) FROM audit"), 0);
}

#[test]
fn wildcard_trigger_watches_many_tables() {
    let mut fed = paper_federation();
    fed.execute("USE avis").unwrap();
    fed.execute("CREATE TABLE avis.audit (note CHAR(40))").unwrap();
    fed.execute(
        "CREATE TRIGGER any_continental ON continental.f% AFTER UPDATE EXECUTE
         USE avis
         INSERT INTO audit VALUES ('something changed')",
    )
    .unwrap();
    fed.execute("USE continental").unwrap();
    fed.execute("UPDATE flights SET rate = rate WHERE flnu = 1").unwrap();
    fed.execute("UPDATE f838 SET seatstatus = seatstatus WHERE seatnu = 1").unwrap();
    assert_eq!(count(&fed, "svc_avis", "avis", "SELECT COUNT(*) FROM audit"), 2);
}

#[test]
fn cascading_triggers_are_depth_bounded() {
    let mut fed = paper_federation();
    fed.execute("USE avis").unwrap();
    fed.execute("CREATE TABLE avis.audit (note CHAR(40))").unwrap();
    // A self-feeding trigger: inserting into audit fires another insert.
    fed.execute(
        "CREATE TRIGGER feedback ON avis.audit AFTER INSERT EXECUTE
         USE avis
         INSERT INTO audit VALUES ('echo')",
    )
    .unwrap();
    fed.execute("INSERT INTO audit VALUES ('seed')").unwrap();
    // Depth bound (4) stops the cascade: seed + bounded echoes, not ∞.
    let n = count(&fed, "svc_avis", "avis", "SELECT COUNT(*) FROM audit");
    assert!((2..=5).contains(&n), "cascade depth out of bounds: {n}");
}

#[test]
fn duplicate_and_unknown_trigger_names_are_errors() {
    let mut fed = paper_federation();
    fed.execute(
        "CREATE TRIGGER t1 ON continental.flights AFTER UPDATE EXECUTE
         USE continental SELECT flnu FROM flights",
    )
    .unwrap();
    let err = fed.execute(
        "CREATE TRIGGER t1 ON delta.flight AFTER UPDATE EXECUTE
         USE delta SELECT fnu FROM flight",
    );
    assert!(matches!(err, Err(mdbs::MdbsError::Catalog(_))), "{err:?}");
    fed.execute("DROP TRIGGER t1").unwrap();
    let err = fed.execute("DROP TRIGGER t1");
    assert!(matches!(err, Err(mdbs::MdbsError::Catalog(_))), "{err:?}");
}

#[test]
fn trigger_statement_roundtrips_through_the_printer() {
    let sql = "CREATE TRIGGER fare_watch ON continental.flights AFTER UPDATE EXECUTE
               USE avis
               INSERT INTO audit VALUES ('x')";
    let ast = msql_lang::parse_statement(sql).unwrap();
    let printed = msql_lang::printer::print(&ast);
    let reparsed = msql_lang::parse_statement(&printed).unwrap();
    assert_eq!(ast, reparsed, "printed: {printed}");
}
