//! Differential equivalence harness: the binary columnar wire codec must be
//! observably identical to the text proto everywhere above the transport.
//!
//! The same suite — Q1–Q4, the cross-database join suite, and a seeded
//! fault-injection schedule — runs once under `WireFormat::Text` and once
//! under `WireFormat::Binary`; results, `ExecStats` and the metric registry
//! must match exactly, modulo the byte counters (`net.bytes*`) and the
//! wall-clock `wire.*` latency histograms that exist precisely to show the
//! formats differ on the wire. Golden traces stay pinned to the text
//! default and are exercised unchanged by `t1_trace_golden`/`d1_dol_golden`.

use mdbs::fixtures::{paper_federation_with, FederationProfiles};
use mdbs::{ExecStats, Federation, RetryPolicy, WireFormat};
use netsim::Network;
use std::time::Duration;

const Q1: &str = "USE avis national
    LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
    SELECT %code, type, ~rate FROM car WHERE status = 'available'";

const Q2: &str = "USE continental VITAL delta united VITAL
    UPDATE flight%
    SET rate% = rate% * 1.1
    WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

const Q3: &str = "USE continental VITAL delta united VITAL
    UPDATE flight%
    SET rate% = rate% * 1.1
    WHERE sour% = 'Houston' AND dest% = 'San Antonio'
    COMP continental
    UPDATE flights
    SET rate = rate / 1.1
    WHERE source = 'Houston' AND destination = 'San Antonio'";

const Q4: &str = "BEGIN MULTITRANSACTION
    USE continental delta
    LET fltab.snu.sstat.clname BE
        f838.seatnu.seatstatus.clientname
        f747.snu.sstat.passname
    UPDATE fltab
    SET sstat = 'TAKEN', clname = 'wenders'
    WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
    USE avis national
    LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat
    UPDATE cartab
    SET cstat = 'TAKEN', client = 'wenders'
    WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'available');
    COMMIT
      continental AND national
      delta AND avis
    END MULTITRANSACTION";

const JOINS: &[&str] = &[
    "SELECT f.flnu, g.fnu
     FROM continental.flights f, delta.flight g
     WHERE f.source = g.source AND f.destination = g.dest ORDER BY f.flnu, g.fnu",
    "SELECT f.flnu, c.code FROM continental.flights f, avis.cars c
     WHERE f.flnu = c.code AND c.rate < f.rate ORDER BY f.flnu",
    "SELECT a.flnu, b.fnu, c.code
     FROM continental.flights a, delta.flight b, avis.cars c
     WHERE a.source = b.source AND c.code = 1 ORDER BY a.flnu, b.fnu",
];

/// Everything one suite run observes above the transport. Two runs that
/// differ only in wire format must produce equal `Observed` values.
#[derive(Debug, PartialEq)]
struct Observed {
    q1: String,
    q2: String,
    q3: String,
    q4: String,
    joins: Vec<String>,
    explain_tree: String,
    stats: ExecStats,
    metrics: Vec<String>,
}

/// Metric lines that legitimately differ between formats: the byte-volume
/// counters and the wall-clock serialize/deserialize histograms.
fn format_invariant(line: &str) -> bool {
    !(line.contains("net.bytes") || line.contains(" wire."))
}

fn fresh_federation(format: WireFormat) -> Federation {
    let mut fed = paper_federation_with(Network::with_seed(0x51), FederationProfiles::default());
    fed.parallel = false; // deterministic order ⇒ comparable traces/metrics
    fed.wire_format = format;
    fed
}

fn run_suite(format: WireFormat) -> Observed {
    let mut fed = fresh_federation(format);
    let q1 = format!("{:?}", fed.execute(Q1).unwrap().into_multitable().unwrap());
    let q2 = format!("{:?}", fed.execute(Q2).unwrap().into_update().unwrap());
    let q3 = format!("{:?}", fed.execute(Q3).unwrap().into_update().unwrap());
    let q4 = format!("{:?}", fed.execute(Q4).unwrap().into_mtx().unwrap());
    fed.execute("USE continental delta avis").unwrap();
    let joins = JOINS
        .iter()
        .map(|q| format!("{:?}", fed.execute(q).unwrap().into_table().unwrap()))
        .collect();
    let explain = fed.execute(&format!("EXPLAIN {}", JOINS[0])).unwrap().into_explain().unwrap();
    // The wire summary is *supposed* to differ: present exactly when binary
    // frames shipped.
    match format {
        WireFormat::Text => assert!(explain.wire.is_none(), "{:?}", explain.wire),
        WireFormat::Binary => {
            let wire = explain.wire.as_ref().expect("binary EXPLAIN reports wire bytes");
            assert_eq!(wire.format, "binary");
            assert!(wire.bytes_binary > 0);
        }
    }
    let stats = fed.exec_stats();
    let metrics = fed
        .metrics()
        .render()
        .lines()
        .filter(|l| format_invariant(l))
        .map(str::to_string)
        .collect();
    Observed { q1, q2, q3, q4, joins, explain_tree: explain.tree.render(), stats, metrics }
}

#[test]
fn suite_is_identical_under_text_and_binary() {
    let text = run_suite(WireFormat::Text);
    let binary = run_suite(WireFormat::Binary);
    assert_eq!(text.q1, binary.q1);
    assert_eq!(text.q2, binary.q2);
    assert_eq!(text.q3, binary.q3);
    assert_eq!(text.q4, binary.q4);
    assert_eq!(text.joins, binary.joins);
    assert_eq!(text.explain_tree, binary.explain_tree, "normalized traces diverged");
    assert_eq!(text.stats, binary.stats);
    for (t, b) in text.metrics.iter().zip(binary.metrics.iter()) {
        assert_eq!(t, b, "format-invariant metric diverged");
    }
    assert_eq!(text.metrics.len(), binary.metrics.len());
}

#[test]
fn binary_ships_fewer_bytes_for_the_same_suite() {
    let totals: Vec<u64> = [WireFormat::Text, WireFormat::Binary]
        .iter()
        .map(|&format| {
            let mut fed = fresh_federation(format);
            fed.execute(Q1).unwrap();
            fed.execute("USE continental delta avis").unwrap();
            for q in JOINS {
                fed.execute(q).unwrap();
            }
            let m = fed.metrics_registry();
            match format {
                WireFormat::Text => assert_eq!(m.counter("net.bytes_binary"), 0),
                WireFormat::Binary => {
                    assert!(m.counter("net.bytes_binary") > 0);
                    // Only the bootstrap PINGs travel as text.
                    assert!(m.counter("net.bytes_text") < m.counter("net.bytes_binary"));
                }
            }
            m.counter("net.bytes")
        })
        .collect();
    assert!(
        totals[1] < totals[0],
        "binary shipped {} bytes, text shipped {}",
        totals[1],
        totals[0]
    );
}

/// The seeded fault-injection schedule: every link touching site4/site5
/// drops 30% of messages. Same seed, same serial order ⇒ the same drop
/// schedule hits both formats, and retries must converge to the same
/// result with the same fault accounting.
#[test]
fn seeded_fault_schedule_is_identical_under_both_formats() {
    let sites = ["site4", "site5"];
    let mut observed = Vec::new();
    for format in [WireFormat::Text, WireFormat::Binary] {
        let mut fed =
            paper_federation_with(Network::with_seed(0xA1), FederationProfiles::default());
        fed.parallel = false;
        fed.timeout = Duration::from_millis(150);
        fed.wire_format = format;
        fed.retry = RetryPolicy::retries(5);
        for site in &sites {
            fed.network().set_link_drop_probability("*", site, 0.3);
            fed.network().set_link_drop_probability(site, "*", 0.3);
        }
        let mt = fed.execute(Q1).unwrap().into_multitable().unwrap();
        let dropped = fed.network().stats().dropped;
        assert!(dropped > 0, "the drop injection actually fired ({format:?})");
        observed.push((format!("{mt:?}"), fed.exec_stats(), dropped));
        for site in &sites {
            fed.network().clear_link_drop_probability("*", site);
            fed.network().clear_link_drop_probability(site, "*");
        }
    }
    let (text_mt, text_stats, text_dropped) = &observed[0];
    let (bin_mt, bin_stats, bin_dropped) = &observed[1];
    assert_eq!(text_mt, bin_mt, "fault-injected results diverged");
    assert_eq!(text_stats, bin_stats, "fault accounting diverged");
    assert_eq!(text_dropped, bin_dropped, "drop schedules diverged");
}

/// A mixed-format federation: two sessions with different wire formats
/// coexist on one core because each LAM mirrors the format a request
/// arrived in.
#[test]
fn mixed_format_sessions_coexist() {
    let mut fed = fresh_federation(WireFormat::Binary);
    let mut text_session = fed.session();
    text_session.wire_format = WireFormat::Text;
    let via_binary = format!("{:?}", fed.execute(Q1).unwrap().into_multitable().unwrap());
    text_session.execute("USE avis national").unwrap();
    text_session.execute("LET car.type.status BE cars.cartype.carst vehicle.vty.vstat").unwrap();
    let via_text = format!(
        "{:?}",
        text_session
            .execute("SELECT %code, type, ~rate FROM car WHERE status = 'available'")
            .unwrap()
            .into_multitable()
            .unwrap()
    );
    assert_eq!(via_binary, via_text);
    let m = fed.metrics_registry();
    assert!(m.counter("net.bytes_binary") > 0, "primary session shipped binary");
    assert!(m.counter("net.bytes_text") > 0, "spawned session shipped text");
}
